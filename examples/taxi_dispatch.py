#!/usr/bin/env python3
"""Taxi dispatch: the motivating scenario of the paper's introduction.

Vacant cabs are continuous queries; pedestrians requesting a ride are the
data objects.  Every cab continuously monitors its k closest clients *in
travel time* over the road network, while both cabs and clients move and
traffic conditions change.  The example uses GMA (the shared-execution
algorithm), prints each cab's best pickups every timestamp, and shows how a
traffic jam re-routes assignments even when nobody moved.

Run with::

    python examples/taxi_dispatch.py
"""

from __future__ import annotations

import random

from repro import MonitoringServer, city_network
from repro.mobility.distributions import place_gaussian, place_uniform
from repro.mobility.random_walk import RandomWalkModel
from repro.mobility.traffic import TrafficModel

NUM_CLIENTS = 60
NUM_CABS = 5
TIMESTAMPS = 6
NEAREST_CLIENTS = 3


def main() -> None:
    rng = random.Random(2006)
    network = city_network(target_edges=500, seed=11)
    server = MonitoringServer(network, algorithm="gma")

    # Clients cluster around the city centre (Gaussian), cabs start anywhere.
    client_locations = place_gaussian(network, NUM_CLIENTS, std_fraction=0.2, seed=rng.randint(0, 9999))
    cab_locations = place_uniform(network, NUM_CABS, seed=rng.randint(0, 9999))
    for client_id, location in enumerate(client_locations):
        server.add_object(client_id, location)
    for cab_index, location in enumerate(cab_locations):
        server.add_query(1000 + cab_index, location, k=NEAREST_CLIENTS)

    # Mobility: clients wander slowly, cabs cruise faster.
    client_walk = RandomWalkModel(
        network, dict(enumerate(client_locations)), speed=0.5, agility=0.3, seed=1
    )
    cab_walk = RandomWalkModel(
        network,
        {1000 + i: location for i, location in enumerate(cab_locations)},
        speed=2.0,
        agility=0.8,
        seed=2,
    )
    traffic = TrafficModel(network, edge_agility=0.05, magnitude=0.25, seed=3)

    server.tick()
    print_assignments(server, 0)

    for timestamp in range(1, TIMESTAMPS):
        for client_id, _, new_location in client_walk.step():
            server.move_object(client_id, new_location)
        for cab_id, _, new_location in cab_walk.step():
            server.move_query(cab_id, new_location)
        for edge_id, _, new_weight in traffic.step():
            server.update_edge_weight(edge_id, new_weight)
        report = server.tick()
        print(
            f"\n=== timestamp {timestamp} "
            f"({len(report.changed_queries)} cab result(s) changed, "
            f"{report.elapsed_seconds * 1000:.1f} ms) ==="
        )
        print_assignments(server, timestamp)


def print_assignments(server: MonitoringServer, timestamp: int) -> None:
    """Print each cab's closest clients in travel-cost order."""
    if timestamp == 0:
        print("=== timestamp 0 (initial assignment) ===")
    for cab_id in sorted(server.query_ids()):
        result = server.result_of(cab_id)
        pickups = ", ".join(
            f"client {client_id} ({distance:.0f})" for client_id, distance in result.neighbors
        )
        print(f"cab {cab_id - 1000}: {pickups}")


if __name__ == "__main__":
    main()
