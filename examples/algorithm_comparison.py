#!/usr/bin/env python3
"""Compare OVH, IMA and GMA in lock-step on one workload.

Runs the three monitoring algorithms over the same simulated workload (same
network, objects, queries, and update streams), verifies that they report
identical results at every timestamp, and prints the cost comparison the
paper's evaluation is built around: wall-clock time per timestamp, the
abstract work counters, and the memory footprint.

Run with::

    python examples/algorithm_comparison.py            # scaled default workload
    python examples/algorithm_comparison.py --queries 300 --k 20
"""

from __future__ import annotations

import argparse

from repro.experiments.config import SCALED_DEFAULTS
from repro.experiments.reporting import format_table
from repro.sim.simulator import Simulator


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=SCALED_DEFAULTS.num_objects)
    parser.add_argument("--queries", type=int, default=SCALED_DEFAULTS.num_queries)
    parser.add_argument("--k", type=int, default=SCALED_DEFAULTS.k)
    parser.add_argument("--edges", type=int, default=SCALED_DEFAULTS.network_edges)
    parser.add_argument("--timestamps", type=int, default=5)
    parser.add_argument("--seed", type=int, default=SCALED_DEFAULTS.seed)
    args = parser.parse_args()

    config = SCALED_DEFAULTS.with_overrides(
        num_objects=args.objects,
        num_queries=args.queries,
        k=args.k,
        network_edges=args.edges,
        timestamps=args.timestamps,
        seed=args.seed,
    )
    print("workload:", config.describe())

    simulator = Simulator(config)
    result = simulator.run(algorithms=("OVH", "IMA", "GMA"), validate=True)

    print(
        f"\ncross-checked {config.num_queries} queries x {config.timestamps} timestamps: "
        f"{result.validation_mismatches} result mismatches"
    )

    headers = [
        "algorithm",
        "mean s/ts",
        "speedup vs OVH",
        "objects considered/ts",
        "nodes expanded/ts",
        "memory (KB)",
    ]
    speedups = result.speedup_over("OVH")
    rows = []
    for name, metrics in result.metrics.items():
        summary = metrics.summary()
        rows.append(
            [
                name,
                f"{summary['mean_seconds']:.4f}",
                f"{speedups[name]:.2f}x",
                f"{summary['mean_objects_considered']:.0f}",
                f"{summary['mean_nodes_expanded']:.0f}",
                f"{summary['mean_memory_kb']:.0f}",
            ]
        )
    print()
    print(format_table(headers, rows))

    print(
        "\nNote: the algorithmic-work columns (objects considered, nodes expanded)"
        "\nare the machine-independent view of the paper's CPU-time comparison;"
        "\nwall-clock ratios in pure Python are compressed by interpreter overhead"
        "\nat this scaled-down workload (see EXPERIMENTS.md for the discussion)."
    )


if __name__ == "__main__":
    main()
