#!/usr/bin/env python3
"""Scaling out: the same monitoring workload on 1 vs 2 worker processes.

Builds a seeded workload with the simulator, drives it through a
single-process :class:`~repro.core.server.MonitoringServer` and a sharded
one (``workers=2``), verifies the merged results are identical, and prints
both throughput figures — including the sharded server's critical-path CPU
time, which is what the wall clock converges to when every shard has its
own core.

Run with::

    python examples/sharded_scaleout.py
"""

from __future__ import annotations

import time

from repro.core.sharding import ShardedMonitoringServer
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig

WORKERS = 2

CONFIG = WorkloadConfig(
    num_objects=1_000,
    num_queries=64,
    k=8,
    network_edges=1_500,
    edge_agility=0.10,
    query_agility=0.30,
    timestamps=4,
    seed=7,
)


def drive(workers: int):
    """Run the workload; return (mean tick seconds, max shard cpu, results)."""
    simulator = Simulator(CONFIG)
    server = simulator.make_server("ima", workers=workers)
    try:
        server.tick()  # initial result computation, excluded from timing
        tick_seconds, shard_cpu = [], []
        for timestamp in range(CONFIG.timestamps):
            server.apply_updates(simulator.generate_batch(timestamp))
            start = time.perf_counter()
            server.tick()
            tick_seconds.append(time.perf_counter() - start)
            if isinstance(server, ShardedMonitoringServer):
                shard_cpu.append(server.last_max_shard_cpu_seconds)
        results = {
            query_id: result.neighbors for query_id, result in server.results().items()
        }
        mean = sum(tick_seconds) / len(tick_seconds)
        cpu = sum(shard_cpu) / len(shard_cpu) if shard_cpu else None
        return mean, cpu, results
    finally:
        server.close()


def main() -> None:
    single_mean, _, single_results = drive(workers=1)
    sharded_mean, shard_cpu, sharded_results = drive(workers=WORKERS)

    assert sharded_results == single_results, "sharded results must be identical"
    print(f"{len(single_results)} queries, results identical across both servers\n")
    print(f"single process : {single_mean * 1000:7.1f} ms/tick")
    print(f"{WORKERS} workers (wall): {sharded_mean * 1000:7.1f} ms/tick")
    print(f"{WORKERS} workers (max shard CPU): {shard_cpu * 1000:7.1f} ms/tick")
    print(
        f"\ncritical-path speedup: {single_mean / shard_cpu:.2f}x "
        f"(wall speedup needs >= {WORKERS} idle cores)"
    )


if __name__ == "__main__":
    main()
