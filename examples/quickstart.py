#!/usr/bin/env python3
"""Quickstart: continuous k-NN monitoring on a synthetic city network.

Builds a small road network, registers a handful of data objects and one
continuous 3-NN query with the monitoring server, and processes a few
timestamps during which objects move and an edge gets congested.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import MonitoringServer, NetworkLocation, city_network


def main() -> None:
    # 1. Build a ~300-edge synthetic city and start a server running IMA.
    network = city_network(target_edges=300, seed=7)
    server = MonitoringServer(network, algorithm="ima")
    print(f"network: {network.node_count} nodes, {network.edge_count} edges")

    # 2. Register data objects.  Positions can be given either as network
    #    locations (edge id + fraction) or as raw coordinates that the PMR
    #    quadtree snaps to the nearest edge.
    edge_ids = sorted(network.edge_ids())
    for object_id in range(8):
        server.add_object(object_id, NetworkLocation(edge_ids[object_id * 9 % len(edge_ids)], 0.4))
    box = network.bounding_box()
    server.add_object_at(100, x=box.center.x, y=box.center.y)

    # 3. Install a continuous 3-NN query near the centre of the workspace.
    query_location = server.add_query_at(1, x=box.center.x + 30.0, y=box.center.y - 20.0, k=3)
    print(f"query snapped to edge {query_location.edge_id} at fraction {query_location.fraction:.2f}")

    # 4. First timestamp: the initial result.
    server.tick()
    print("\ninitial 3-NN result:")
    for object_id, distance in server.result_of(1).neighbors:
        print(f"  object {object_id:3d} at network distance {distance:8.1f}")

    # 5. Move some objects, congest a road, and keep monitoring.
    for timestamp in range(1, 4):
        # Two objects drift to new coordinates.
        server.move_object_at(0, x=box.center.x + 40.0 * timestamp, y=box.center.y)
        server.move_object_at(1, x=box.center.x - 35.0 * timestamp, y=box.center.y + 10.0)
        # The query's own street gets more congested every timestamp.
        congested_edge = query_location.edge_id
        server.update_edge_weight(congested_edge, network.edge(congested_edge).weight * 1.2)
        report = server.tick()
        print(
            f"\ntimestamp {timestamp}: processed in {report.elapsed_seconds * 1000:.2f} ms, "
            f"{len(report.changed_queries)} result(s) changed"
        )
        for object_id, distance in server.result_of(1).neighbors:
            print(f"  object {object_id:3d} at network distance {distance:8.1f}")


if __name__ == "__main__":
    main()
