#!/usr/bin/env python3
"""Traffic-aware monitoring: results change even when nothing moves.

A distinguishing property of road-network monitoring (Section 1 of the
paper) is that edge-weight fluctuations alone can invalidate k-NN results —
something that cannot happen in the Euclidean setting.  This example keeps
every object and query perfectly still, lets only the traffic model run, and
reports every timestamp at which some query's nearest facilities change.

Scenario: delivery depots (queries) monitor their 5 closest couriers
(objects) by travel time while rush-hour congestion builds up and dissolves
on a patch of the network (the correlated congestion-wave mode of the
traffic model).

Run with::

    python examples/traffic_aware_monitoring.py
"""

from __future__ import annotations

from repro import MonitoringServer, city_network
from repro.mobility.distributions import place_uniform
from repro.mobility.traffic import TrafficModel

NUM_COURIERS = 120
NUM_DEPOTS = 4
TIMESTAMPS = 10


def main() -> None:
    network = city_network(target_edges=400, seed=23)
    server = MonitoringServer(network, algorithm="ima")

    for courier_id, location in enumerate(place_uniform(network, NUM_COURIERS, seed=5)):
        server.add_object(courier_id, location)
    for depot_index, location in enumerate(place_uniform(network, NUM_DEPOTS, seed=6)):
        server.add_query(900 + depot_index, location, k=5)

    # Correlated congestion: every timestamp ~8 % of the streets in a
    # connected patch become 30 % slower or faster.
    traffic = TrafficModel(
        network, edge_agility=0.08, magnitude=0.3, correlated=True, seed=7
    )

    server.tick()
    previous = {depot: server.result_of(depot).object_ids for depot in server.query_ids()}
    print("initial nearest couriers per depot:")
    for depot in sorted(previous):
        print(f"  depot {depot - 900}: couriers {list(previous[depot])}")

    for timestamp in range(1, TIMESTAMPS):
        for edge_id, _, new_weight in traffic.step():
            server.update_edge_weight(edge_id, new_weight)
        report = server.tick()

        changed_depots = []
        for depot in sorted(server.query_ids()):
            current = server.result_of(depot).object_ids
            if current != previous[depot]:
                changed_depots.append(depot)
            previous[depot] = current

        if changed_depots:
            print(f"\ntimestamp {timestamp}: congestion re-ranked couriers "
                  f"for {len(changed_depots)} depot(s) — nobody moved!")
            for depot in changed_depots:
                neighbors = ", ".join(
                    f"{courier} ({distance:.0f})"
                    for courier, distance in server.result_of(depot).neighbors
                )
                print(f"  depot {depot - 900}: {neighbors}")
        else:
            print(f"timestamp {timestamp}: results unchanged "
                  f"({report.elapsed_seconds * 1000:.1f} ms)")


if __name__ == "__main__":
    main()
