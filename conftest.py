"""Root pytest configuration.

Registers the ``--quick`` flag used by the benchmark suite (see
``benchmarks/``): it shrinks the workloads so the whole core-operations
benchmark finishes in well under a minute, which is what the CI
benchmark-smoke job runs.  Also registers ``--regen-goldens``, which makes
the golden-file suites (``tests/test_realism_goldens.py``) rewrite their
expected outputs instead of asserting against them.  Both flags are
registered here — the root conftest is always an *initial* conftest — so
they are available no matter which test path is passed on the command line.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on the smoke-sized workload (CI benchmark smoke)",
    )
    parser.addoption(
        "--regen-goldens",
        action="store_true",
        default=False,
        help="rewrite golden files instead of asserting against them",
    )
