"""Root pytest configuration.

Registers the ``--quick`` flag used by the benchmark suite (see
``benchmarks/``): it shrinks the workloads so the whole core-operations
benchmark finishes in well under a minute, which is what the CI
benchmark-smoke job runs.  The flag is registered here — the root conftest
is always an *initial* conftest — so it is available no matter which test
path is passed on the command line.
"""


def pytest_addoption(parser):
    parser.addoption(
        "--quick",
        action="store_true",
        default=False,
        help="run benchmarks on the smoke-sized workload (CI benchmark smoke)",
    )
