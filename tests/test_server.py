"""Tests for the MonitoringServer facade (the public user-facing API)."""

from __future__ import annotations

import pytest

from repro.core.server import ALGORITHMS, MonitoringServer
from repro.exceptions import (
    DuplicateObjectError,
    DuplicateQueryError,
    MonitoringError,
    UnknownObjectError,
    UnknownQueryError,
)
from repro.network.graph import NetworkLocation


class TestConstruction:
    def test_algorithm_by_name(self, line_network):
        for name in ("ovh", "IMA", "gma"):
            server = MonitoringServer(line_network, algorithm=name)
            assert server.algorithm_name in ("OVH", "IMA", "GMA")

    def test_unknown_algorithm_raises(self, line_network):
        with pytest.raises(MonitoringError):
            MonitoringServer(line_network, algorithm="quantum")

    def test_algorithm_instance_passthrough(self, line_network):
        from repro.core.ima import ImaMonitor
        from repro.network.edge_table import EdgeTable

        table = EdgeTable(line_network)
        monitor = ImaMonitor(line_network, table)
        server = MonitoringServer(line_network, algorithm=monitor, edge_table=table)
        assert server.monitor is monitor

    def test_registry_contains_three_algorithms(self):
        assert set(ALGORITHMS) == {"ovh", "ima", "gma"}


class TestLifecycle:
    def test_objects_queries_and_tick(self, line_network):
        server = MonitoringServer(line_network, algorithm="ima")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_object(2, NetworkLocation(3, 0.5))
        server.add_query(100, NetworkLocation(1, 0.0), 1)
        report = server.tick()
        assert report.timestamp == 0
        assert server.current_timestamp == 1
        assert server.result_of(100).object_ids == (1,)

    def test_coordinate_based_api_snaps_to_edges(self, line_network):
        server = MonitoringServer(line_network, algorithm="ovh")
        location = server.add_object_at(1, x=150.0, y=20.0)
        assert location.edge_id == 1
        query_location = server.add_query_at(100, x=90.0, y=-5.0, k=1)
        assert query_location.edge_id == 0
        server.tick()
        assert server.result_of(100).object_ids == (1,)

    def test_move_and_remove_object(self, line_network):
        server = MonitoringServer(line_network, algorithm="ima")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_object(2, NetworkLocation(3, 0.9))
        server.add_query(100, NetworkLocation(0, 0.0), 1)
        server.tick()
        assert server.result_of(100).object_ids == (1,)
        server.move_object(1, NetworkLocation(3, 0.5))
        server.tick()
        assert server.result_of(100).object_ids == (1,)
        server.remove_object(1)
        server.tick()
        assert server.result_of(100).object_ids == (2,)
        assert server.object_ids() == {2}

    def test_move_and_remove_query(self, line_network):
        server = MonitoringServer(line_network, algorithm="gma")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_query(100, NetworkLocation(0, 0.0), 1)
        server.tick()
        server.move_query(100, NetworkLocation(3, 0.5))
        server.tick()
        assert server.result_of(100).object_ids == (1,)
        server.remove_query(100)
        server.tick()
        assert server.query_ids() == set()
        with pytest.raises(UnknownQueryError):
            server.result_of(100)

    def test_edge_weight_update_through_server(self, line_network):
        server = MonitoringServer(line_network, algorithm="ima")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_object(2, NetworkLocation(2, 0.5))
        server.add_query(100, NetworkLocation(1, 0.5), 1)
        server.tick()
        assert server.result_of(100).object_ids == (1,)
        # Making edge 0 very heavy flips the nearest neighbor to object 2.
        server.update_edge_weight(0, 1000.0)
        server.tick()
        assert server.result_of(100).object_ids == (2,)
        assert server.network.edge(0).weight == pytest.approx(1000.0)

    def test_duplicate_and_unknown_ids_raise(self, line_network):
        server = MonitoringServer(line_network, algorithm="ima")
        server.add_object(1, NetworkLocation(0, 0.5))
        with pytest.raises(DuplicateObjectError):
            server.add_object(1, NetworkLocation(0, 0.6))
        with pytest.raises(UnknownObjectError):
            server.move_object(9, NetworkLocation(0, 0.5))
        with pytest.raises(UnknownObjectError):
            server.remove_object(9)
        server.add_query(100, NetworkLocation(0, 0.0), 1)
        with pytest.raises(DuplicateQueryError):
            server.add_query(100, NetworkLocation(0, 0.0), 1)
        with pytest.raises(UnknownQueryError):
            server.move_query(999, NetworkLocation(0, 0.0))
        with pytest.raises(UnknownQueryError):
            server.remove_query(999)

    def test_updates_are_buffered_until_tick(self, line_network):
        server = MonitoringServer(line_network, algorithm="ima")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_object(2, NetworkLocation(3, 0.9))
        server.add_query(100, NetworkLocation(0, 0.0), 1)
        server.tick()
        server.move_object(1, NetworkLocation(3, 0.99))
        # Not processed yet: result still names object 1 at its old distance.
        assert server.result_of(100).object_ids == (1,)
        server.tick()
        assert server.result_of(100).object_ids == (2,)

    def test_results_returns_all_queries(self, line_network):
        server = MonitoringServer(line_network, algorithm="ovh")
        server.add_object(1, NetworkLocation(0, 0.5))
        server.add_query(100, NetworkLocation(0, 0.0), 1)
        server.add_query(101, NetworkLocation(3, 0.5), 1)
        server.tick()
        assert set(server.results()) == {100, 101}
