"""Tests for the edge table (object bookkeeping + coordinate snapping)."""

from __future__ import annotations

import pytest

from repro.exceptions import DuplicateObjectError, EdgeNotFoundError, UnknownObjectError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.spatial.geometry import Point


class TestObjectBookkeeping:
    def test_insert_and_lookup(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(0, 0.5))
        assert table.has_object(1)
        assert table.location_of(1) == NetworkLocation(0, 0.5)
        assert table.objects_on(0) == {1}
        assert table.object_count == 1

    def test_duplicate_insert_raises(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(0, 0.5))
        with pytest.raises(DuplicateObjectError):
            table.insert_object(1, NetworkLocation(1, 0.5))

    def test_insert_on_unknown_edge_raises(self, line_network):
        table = EdgeTable(line_network)
        with pytest.raises(EdgeNotFoundError):
            table.insert_object(1, NetworkLocation(99, 0.5))

    def test_remove_returns_last_location(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(0, 0.25))
        assert table.remove_object(1) == NetworkLocation(0, 0.25)
        assert not table.has_object(1)
        assert table.objects_on(0) == set()

    def test_remove_unknown_raises(self, line_network):
        with pytest.raises(UnknownObjectError):
            EdgeTable(line_network).remove_object(1)

    def test_move_updates_both_edges(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(0, 0.5))
        old = table.move_object(1, NetworkLocation(2, 0.75))
        assert old == NetworkLocation(0, 0.5)
        assert table.objects_on(0) == set()
        assert table.objects_on(2) == {1}

    def test_move_unknown_raises(self, line_network):
        with pytest.raises(UnknownObjectError):
            EdgeTable(line_network).move_object(1, NetworkLocation(0, 0.1))

    def test_location_of_unknown_raises(self, line_network):
        with pytest.raises(UnknownObjectError):
            EdgeTable(line_network).location_of(77)

    def test_objects_with_fractions_on(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(1, 0.25))
        table.insert_object(2, NetworkLocation(1, 0.75))
        found = dict(table.objects_with_fractions_on(1))
        assert found == {1: 0.25, 2: 0.75}

    def test_all_objects_and_populated_edges(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(1, NetworkLocation(0, 0.2))
        table.insert_object(2, NetworkLocation(3, 0.8))
        assert dict(table.all_objects()) == {
            1: NetworkLocation(0, 0.2),
            2: NetworkLocation(3, 0.8),
        }
        assert set(table.populated_edges()) == {0, 3}

    def test_consistency_check(self, populated_city):
        _, table, _ = populated_city
        assert table.consistency_check()


class TestSnapping:
    def test_snap_point_to_nearest_edge(self, line_network):
        table = EdgeTable(line_network)
        # The line network runs along y=0 from x=0 to x=400.
        location = table.snap_point(Point(150.0, 12.0))
        assert location.edge_id == 1
        assert location.fraction == pytest.approx(0.5)

    def test_snap_point_clamps_to_edge_ends(self, line_network):
        table = EdgeTable(line_network)
        location = table.snap_point(Point(-50.0, 0.0))
        assert location.edge_id == 0
        assert location.fraction == pytest.approx(0.0)

    def test_snap_without_index_raises(self, line_network):
        table = EdgeTable(line_network, build_spatial_index=False)
        with pytest.raises(EdgeNotFoundError):
            table.snap_point(Point(1.0, 1.0))

    def test_rebuild_spatial_index(self, line_network):
        table = EdgeTable(line_network, build_spatial_index=False)
        index = table.rebuild_spatial_index()
        assert len(index) == line_network.edge_count
        assert table.spatial_index is index
