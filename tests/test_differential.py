"""Differential and property-based integration tests.

These are the highest-value correctness tests of the repository: the three
monitoring algorithms are run in lock-step on randomized dynamic scenarios
(objects, queries and edge weights all changing every timestamp) and their
results are compared against each other and against the quadratic
brute-force oracle at every timestamp.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.results import results_equal
from repro.network.builders import city_network
from repro.network.distance import brute_force_knn
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig


def _run_lockstep_scenario(seed, num_objects=50, num_queries=6, timestamps=12,
                           network_edges=120, k_choices=(1, 2, 4)):
    """Drive all three monitors over a random scenario; return mismatch count."""
    rng = random.Random(seed)
    network = city_network(network_edges, seed=seed + 1)
    table = EdgeTable(network, build_spatial_index=False)
    edges = list(network.edge_ids())

    def random_location():
        return NetworkLocation(rng.choice(edges), rng.random())

    objects = {i: random_location() for i in range(num_objects)}
    for object_id, location in objects.items():
        table.insert_object(object_id, location)

    monitors = [OvhMonitor(network, table), ImaMonitor(network, table), GmaMonitor(network, table)]
    queries = {1000 + q: (random_location(), rng.choice(k_choices)) for q in range(num_queries)}
    for monitor in monitors:
        for query_id, (location, k) in queries.items():
            monitor.register_query(query_id, location, k)

    mismatches = 0
    next_object_id = num_objects
    for timestamp in range(timestamps):
        batch = UpdateBatch(timestamp=timestamp)
        # ~10 % of the objects move.
        for object_id in rng.sample(sorted(objects), max(1, num_objects // 10)):
            new_location = random_location()
            batch.object_updates.append(ObjectUpdate(object_id, objects[object_id], new_location))
            objects[object_id] = new_location
        # Occasionally an object appears or disappears.
        if rng.random() < 0.4:
            location = random_location()
            objects[next_object_id] = location
            batch.object_updates.append(ObjectUpdate(next_object_id, None, location))
            next_object_id += 1
        if rng.random() < 0.3 and len(objects) > 5:
            victim = rng.choice(sorted(objects))
            batch.object_updates.append(ObjectUpdate(victim, objects.pop(victim), None))
        # ~5 % of the edges change weight by +-10 %.
        for edge_id in rng.sample(edges, max(1, len(edges) // 20)):
            weight = network.edge(edge_id).weight
            factor = 1.1 if rng.random() < 0.5 else 0.9
            batch.edge_updates.append(EdgeWeightUpdate(edge_id, weight, weight * factor))
        # A third of the queries move.
        for query_id in rng.sample(sorted(queries), max(1, num_queries // 3)):
            location, k = queries[query_id]
            new_location = random_location()
            batch.query_updates.append(QueryUpdate(query_id, location, new_location))
            queries[query_id] = (new_location, k)

        apply_batch(network, table, batch.normalized())
        for monitor in monitors:
            monitor.process_batch(batch)

        for query_id, (location, k) in queries.items():
            truth = brute_force_knn(network, table, location, k)
            for monitor in monitors:
                reported = list(monitor.result_of(query_id).neighbors)
                if not results_equal(truth, reported):
                    mismatches += 1
    return mismatches


class TestLockstepAgainstBruteForce:
    @pytest.mark.parametrize("seed", [3, 17, 29, 41])
    def test_all_algorithms_match_brute_force(self, seed):
        assert _run_lockstep_scenario(seed) == 0

    def test_high_churn_scenario(self):
        # More aggressive dynamics: larger k, more movement per timestamp.
        assert (
            _run_lockstep_scenario(
                seed=77, num_objects=80, num_queries=8, timestamps=8, k_choices=(5, 8)
            )
            == 0
        )

    def test_static_objects_with_weight_fluctuations_only(self):
        rng = random.Random(123)
        network = city_network(100, seed=8)
        table = EdgeTable(network, build_spatial_index=False)
        edges = list(network.edge_ids())
        for object_id in range(40):
            table.insert_object(object_id, NetworkLocation(rng.choice(edges), rng.random()))
        monitors = [OvhMonitor(network, table), ImaMonitor(network, table), GmaMonitor(network, table)]
        query_location = NetworkLocation(rng.choice(edges), 0.5)
        for monitor in monitors:
            monitor.register_query(1, query_location, 4)
        for timestamp in range(15):
            batch = UpdateBatch(timestamp=timestamp)
            for edge_id in rng.sample(edges, 8):
                weight = network.edge(edge_id).weight
                factor = 1.1 if rng.random() < 0.5 else 0.9
                batch.edge_updates.append(EdgeWeightUpdate(edge_id, weight, weight * factor))
            apply_batch(network, table, batch.normalized())
            truth_free = brute_force_knn(network, table, query_location, 4)
            for monitor in monitors:
                monitor.process_batch(batch)
                assert results_equal(truth_free, list(monitor.result_of(1).neighbors))


class TestSimulatorValidation:
    @pytest.mark.parametrize("seed", [2, 9])
    def test_simulator_lockstep_validation_has_no_mismatches(self, seed):
        config = WorkloadConfig(
            num_objects=250,
            num_queries=25,
            k=5,
            network_edges=250,
            timestamps=4,
            seed=seed,
        )
        result = Simulator(config).run(validate=True)
        assert result.validation_mismatches == 0


@settings(
    max_examples=12,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    seed=st.integers(0, 100_000),
    k=st.integers(1, 5),
    object_agility=st.sampled_from([0.0, 0.1, 0.3]),
    edge_agility=st.sampled_from([0.0, 0.05, 0.15]),
)
def test_property_monitors_agree_on_random_workloads(seed, k, object_agility, edge_agility):
    """IMA and GMA always report the same distance profile as OVH."""
    config = WorkloadConfig(
        num_objects=120,
        num_queries=10,
        k=k,
        network_edges=120,
        timestamps=3,
        object_agility=object_agility,
        edge_agility=edge_agility,
        seed=seed,
    )
    result = Simulator(config).run(validate=True)
    assert result.validation_mismatches == 0
