"""Behavioural tests of the three monitors on small, hand-checkable scenarios.

The line-network scenarios have distances that can be verified by hand,
which pins down the semantics of each update type (the larger randomized
differential tests live in ``test_differential.py``).
"""

from __future__ import annotations

import pytest

from repro.core.events import ObjectUpdate, QueryUpdate, UpdateBatch, apply_batch
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.exceptions import DuplicateQueryError, InvalidQueryError, UnknownQueryError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation

ALL_MONITORS = [OvhMonitor, ImaMonitor, GmaMonitor]


def _build(monitor_class, network, table):
    return monitor_class(network, table)


@pytest.fixture
def line_setup(line_network):
    """Line network with three objects; returns (network, table)."""
    table = EdgeTable(line_network)
    table.insert_object(0, NetworkLocation(0, 0.5))   # x = 50
    table.insert_object(1, NetworkLocation(2, 0.25))  # x = 225
    table.insert_object(2, NetworkLocation(3, 0.9))   # x = 390
    return line_network, table


@pytest.mark.parametrize("monitor_class", ALL_MONITORS)
class TestRegistration:
    def test_initial_result(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        result = monitor.register_query(100, NetworkLocation(1, 0.0), 2)  # x = 100
        assert result.object_ids == (0, 1)
        assert result.neighbors[0][1] == pytest.approx(50.0)
        assert result.neighbors[1][1] == pytest.approx(125.0)

    def test_duplicate_registration_raises(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        with pytest.raises(DuplicateQueryError):
            monitor.register_query(100, NetworkLocation(1, 0.0), 2)

    def test_invalid_k_raises(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        with pytest.raises(InvalidQueryError):
            monitor.register_query(100, NetworkLocation(1, 0.0), 0)

    def test_unregister_removes_query(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        monitor.unregister_query(100)
        assert monitor.query_count == 0
        with pytest.raises(UnknownQueryError):
            monitor.result_of(100)

    def test_unregister_unknown_raises(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        with pytest.raises(UnknownQueryError):
            monitor.unregister_query(42)

    def test_results_snapshot(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        monitor.register_query(101, NetworkLocation(3, 0.5), 1)
        snapshot = monitor.results()
        assert set(snapshot) == {100, 101}


@pytest.mark.parametrize("monitor_class", ALL_MONITORS)
class TestObjectUpdates:
    def test_incoming_object_replaces_neighbor(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        # Object 2 jumps right next to the query (x = 110).
        batch = UpdateBatch(timestamp=1)
        batch.add_object_move(2, NetworkLocation(3, 0.9), NetworkLocation(1, 0.1))
        apply_batch(network, table, batch)
        report = monitor.process_batch(batch)
        result = monitor.result_of(100)
        assert result.object_ids == (2,)
        assert result.radius == pytest.approx(10.0)
        assert 100 in report.changed_queries

    def test_outgoing_neighbor_triggers_replacement(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        # The nearest object 0 moves far away; object 1 becomes the answer.
        batch = UpdateBatch(timestamp=1)
        batch.add_object_move(0, NetworkLocation(0, 0.5), NetworkLocation(3, 0.99))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        assert result.object_ids == (1,)
        assert result.radius == pytest.approx(125.0)

    def test_irrelevant_update_keeps_result(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        before = monitor.result_of(100)
        # Object 2 wiggles at the far end of the network.
        batch = UpdateBatch(timestamp=1)
        batch.add_object_move(2, NetworkLocation(3, 0.9), NetworkLocation(3, 0.95))
        apply_batch(network, table, batch)
        report = monitor.process_batch(batch)
        after = monitor.result_of(100)
        assert after.neighbors == before.neighbors
        assert 100 not in report.changed_queries

    def test_object_insertion_becomes_neighbor(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        batch = UpdateBatch(timestamp=1)
        batch.object_updates.append(ObjectUpdate(9, None, NetworkLocation(1, 0.05)))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        assert monitor.result_of(100).object_ids == (9,)

    def test_object_deletion_of_neighbor(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        batch = UpdateBatch(timestamp=1)
        batch.object_updates.append(ObjectUpdate(0, NetworkLocation(0, 0.5), None))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        assert monitor.result_of(100).object_ids == (1,)


@pytest.mark.parametrize("monitor_class", ALL_MONITORS)
class TestQueryAndEdgeUpdates:
    def test_query_movement_changes_result(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        # The query moves to x = 360, close to object 2 at x = 390.
        batch = UpdateBatch(timestamp=1)
        batch.add_query_move(100, NetworkLocation(1, 0.0), NetworkLocation(3, 0.6))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        assert result.object_ids == (2,)
        assert result.radius == pytest.approx(30.0)

    def test_edge_weight_increase_changes_nearest(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        # Query at x = 200 (node 2 end of edge 1): object 0 at 150, object 1 at 25.
        monitor.register_query(100, NetworkLocation(1, 1.0), 2)
        before = monitor.result_of(100)
        assert before.object_ids == (1, 0)
        # Edge 1 becomes 4x heavier: object 0 (beyond that edge) moves from
        # distance 150 to 450 and drops out in favour of object 2 at 190;
        # object 1 (on edge 2, untouched) stays at distance 25.
        batch = UpdateBatch(timestamp=1)
        batch.add_edge_change(1, network.edge(1).weight, 400.0)
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        after = monitor.result_of(100)
        assert after.object_ids == (1, 2)
        assert after.neighbors[0][1] == pytest.approx(25.0)
        assert after.neighbors[1][1] == pytest.approx(190.0)  # 100 to node 3 + 90

    def test_edge_weight_decrease_brings_object_closer(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        # Query at node-2 end of edge 1 (x=200). 1-NN is object 1 at 25.
        monitor.register_query(100, NetworkLocation(1, 1.0), 1)
        # Shrinking edge 3 pulls object 2 (at fraction 0.9 of edge 3) closer:
        # distance becomes 100 (edge 2) + 0.9 * 10 = 109, still > 25, so no
        # change; shrink edge 2 instead: object 1 distance becomes 2.5.
        batch = UpdateBatch(timestamp=1)
        batch.add_edge_change(2, network.edge(2).weight, 10.0)
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        assert result.object_ids == (1,)
        assert result.radius == pytest.approx(2.5)

    def test_query_termination_in_batch(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        batch = UpdateBatch(timestamp=1)
        batch.query_updates.append(QueryUpdate(100, NetworkLocation(1, 0.0), None))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        assert monitor.query_count == 0

    def test_query_installation_in_batch(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        batch = UpdateBatch(timestamp=1)
        batch.query_updates.append(QueryUpdate(200, None, NetworkLocation(0, 0.0), k=2))
        apply_batch(network, table, batch)
        report = monitor.process_batch(batch)
        assert 200 in report.changed_queries
        assert monitor.result_of(200).object_ids == (0, 1)

    def test_memory_footprint_positive(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        assert monitor.memory_footprint_bytes() > 0

    def test_timestep_reports_accumulate(self, line_setup, monitor_class):
        network, table = line_setup
        monitor = _build(monitor_class, network, table)
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        for timestamp in range(3):
            batch = UpdateBatch(timestamp=timestamp)
            monitor.process_batch(batch)
        assert len(monitor.timestep_reports) == 3
        assert [report.timestamp for report in monitor.timestep_reports] == [0, 1, 2]
