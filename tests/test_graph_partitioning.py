"""Graph-partitioned sharding: partitioner, halo exchange, and equivalence.

Covers the metis-lite BFS partitioner (:func:`grow_partitions` /
:func:`partition_block`), the seeded-expansion primitive the cross-shard
protocol is built on, and the ``partitioning="graph"`` mode of
:class:`ShardedMonitoringServer` — including boundary-heavy workloads
pinned on cut edges, the escalation lifecycle, mid-run topology bumps, the
per-worker RSS probe, and the oracle-backed preset matrix through
``run_differential_scenario(partitioning="graph")``.
"""

from __future__ import annotations

import pytest

from repro import (
    EdgeTable,
    MonitoringServer,
    NetworkLocation,
    city_network,
    csr_snapshot,
)
from repro.core.search import expand_knn
from repro.core.sharding import ShardedMonitoringServer
from repro.network.csr import grow_partitions, partition_block
from repro.network.kernels import KERNEL_CSR, KERNEL_DIAL, KERNEL_NATIVE
from repro.testing import run_differential_scenario

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
def test_grow_partitions_covers_every_node_without_empty_parts():
    network = city_network(150, seed=3)
    csr = csr_snapshot(network)
    for parts in (1, 2, 3, 5):
        assignment = grow_partitions(csr, parts)
        assert set(assignment) == set(network.node_ids())
        populated = set(assignment.values())
        assert populated == set(range(parts))


def test_grow_partitions_is_deterministic_across_rebuilds():
    assignments = []
    for _ in range(2):
        network = city_network(120, seed=9)
        assignments.append(grow_partitions(csr_snapshot(network), 4))
    assert assignments[0] == assignments[1]


def test_grow_partitions_clamps_parts_to_node_count():
    network = city_network(6, seed=4)
    csr = csr_snapshot(network)
    assignment = grow_partitions(csr, 10_000)
    # Every part that exists is a singleton; ids stay 0-based contiguous.
    parts = set(assignment.values())
    assert parts == set(range(len(parts)))
    assert len(parts) == len(list(network.node_ids()))


def test_partition_block_splits_block_halo_and_local_edges():
    network = city_network(150, seed=5)
    csr = csr_snapshot(network)
    assignment = grow_partitions(csr, 3)
    seen_nodes = set()
    for part in range(3):
        block, halo, local_edges = partition_block(csr, assignment, part)
        block_set, halo_set = set(block), set(halo)
        assert not block_set & halo_set
        assert all(assignment[node] == part for node in block)
        assert all(assignment[node] != part for node in halo)
        seen_nodes |= block_set
        local_set = set(local_edges)
        for edge_id in network.edge_ids():
            edge = network.edge(edge_id)
            touches = (
                assignment[edge.start] == part or assignment[edge.end] == part
            )
            assert (edge_id in local_set) == touches
            if edge_id in local_set:
                # Out-of-block endpoints of local edges are exactly the halo.
                for endpoint in (edge.start, edge.end):
                    if assignment[endpoint] != part:
                        assert endpoint in halo_set
    assert seen_nodes == set(network.node_ids())


def test_cut_edges_are_local_to_both_sides():
    network = city_network(150, seed=5)
    csr = csr_snapshot(network)
    assignment = grow_partitions(csr, 3)
    cut_edges = [
        edge_id
        for edge_id in network.edge_ids()
        if assignment[network.edge(edge_id).start]
        != assignment[network.edge(edge_id).end]
    ]
    assert cut_edges, "a 3-way partition of a city grid must cut some edges"
    blocks = [partition_block(csr, assignment, part) for part in range(3)]
    for edge_id in cut_edges:
        edge = network.edge(edge_id)
        for endpoint in (edge.start, edge.end):
            _, _, local_edges = blocks[assignment[endpoint]]
            assert edge_id in local_edges


# ----------------------------------------------------------------------
# seeded expansion (the cross-shard resume primitive)
# ----------------------------------------------------------------------
def test_seeded_expansion_matches_source_node_expansion():
    network = city_network(100, seed=6)
    edge_table = EdgeTable(network, build_spatial_index=False)
    edge_ids = sorted(network.edge_ids())
    for object_id in range(16):
        edge_id = edge_ids[(object_id * 7) % len(edge_ids)]
        edge_table.insert_object(
            object_id, NetworkLocation(edge_id, (object_id % 5) / 5.0)
        )
    source = min(network.node_ids())
    plain = expand_knn(network, edge_table, 4, source_node=source)
    seeded = expand_knn(
        network, edge_table, 4, seed_nodes=[(source, 0.0)]
    )
    assert seeded.neighbors == plain.neighbors
    assert seeded.radius == plain.radius


# ----------------------------------------------------------------------
# graph-mode server
# ----------------------------------------------------------------------
def _populate(server, network, queries=6, k=3):
    box = network.bounding_box()
    for object_id in range(24):
        server.add_object_at(
            object_id,
            x=box.min_x + (box.max_x - box.min_x) * ((object_id * 37) % 100) / 100.0,
            y=box.min_y + (box.max_y - box.min_y) * ((object_id * 61) % 100) / 100.0,
        )
    for index in range(queries):
        server.add_query_at(
            1_000_000 + index,
            x=box.min_x + (box.max_x - box.min_x) * ((index * 29) % 100) / 100.0,
            y=box.min_y + (box.max_y - box.min_y) * ((index * 53) % 100) / 100.0,
            k=k,
        )


def test_graph_server_exposes_partition_and_mode():
    network = city_network(150, seed=7)
    expected = grow_partitions(csr_snapshot(network), 3)
    with MonitoringServer(
        network, algorithm="ima", workers=3, partitioning="graph"
    ) as server:
        assert isinstance(server, ShardedMonitoringServer)
        assert server.partitioning == "graph"
        assert server.partition_assignment() == expected
        assert server.shards == len(set(expected.values()))
        assert isinstance(server.boundary_query_ids(), frozenset)
        assert isinstance(server.divergent_query_ids(), frozenset)


def test_graph_server_single_worker_degenerates_to_one_block():
    single_net = city_network(100, seed=8)
    graph_net = city_network(100, seed=8)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(
        graph_net, algorithm="ima", workers=1, partitioning="graph"
    ) as graph:
        _populate(single, single_net)
        _populate(graph, graph_net)
        single.tick()
        graph.tick()
        # One part means an empty halo: nothing can escalate.
        assert not graph.boundary_query_ids()
        for query_id, expected in single.results().items():
            assert graph.result_of(query_id).neighbors == expected.neighbors


def _cut_locations(network, count):
    """Query locations pinned on partition-cut edges (boundary-heavy)."""
    assignment = grow_partitions(csr_snapshot(network), 3)
    locations = []
    for edge_id in sorted(network.edge_ids()):
        edge = network.edge(edge_id)
        if assignment[edge.start] != assignment[edge.end]:
            locations.append(NetworkLocation(edge_id, 0.5))
            if len(locations) == count:
                break
    assert len(locations) == count
    return locations


def test_boundary_heavy_workload_matches_single_process():
    """Queries pinned on cut edges escalate yet stay oracle-equal.

    Every query sits astride a partition cut, so the containment probe
    must escalate all of them to coordinator-side boundary evaluation —
    the worst case for the cross-shard protocol.  Non-divergent answers
    must stay byte-identical to the single-process server's.
    """
    single_net = city_network(150, seed=12)
    graph_net = city_network(150, seed=12)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(
        graph_net, algorithm="ima", workers=3, partitioning="graph"
    ) as graph:
        for server, network in ((single, single_net), (graph, graph_net)):
            box = network.bounding_box()
            for object_id in range(24):
                server.add_object_at(
                    object_id,
                    x=box.min_x
                    + (box.max_x - box.min_x) * ((object_id * 37) % 100) / 100.0,
                    y=box.min_y
                    + (box.max_y - box.min_y) * ((object_id * 61) % 100) / 100.0,
                )
            for index, location in enumerate(_cut_locations(network, 6)):
                server.add_query(1_000_000 + index, location, k=4)
            server.tick()
        assert graph.boundary_query_ids(), "cut-pinned queries must escalate"
        # Drive movement + weight churn through both servers identically.
        for round_index in range(3):
            for server, network in ((single, single_net), (graph, graph_net)):
                box = network.bounding_box()
                for object_id in range(0, 24, 3):
                    server.move_object_at(
                        object_id,
                        x=box.min_x
                        + (box.max_x - box.min_x)
                        * ((object_id * 13 + round_index * 41) % 100)
                        / 100.0,
                        y=box.min_y
                        + (box.max_y - box.min_y)
                        * ((object_id * 17 + round_index * 59) % 100)
                        / 100.0,
                    )
                edge_id = sorted(network.edge_ids())[round_index * 7]
                server.update_edge_weight(
                    edge_id, network.edge(edge_id).base_weight * (1.5 + round_index)
                )
                server.tick()
            divergent = graph.divergent_query_ids()
            for query_id, expected in single.results().items():
                actual = graph.result_of(query_id)
                if query_id in divergent:
                    assert [d for _, d in actual.neighbors] == pytest.approx(
                        [d for _, d in expected.neighbors]
                    )
                else:
                    assert actual.neighbors == expected.neighbors, query_id


def test_escalation_lifecycle_boundary_then_terminate():
    network = city_network(150, seed=12)
    with MonitoringServer(
        network, algorithm="gma", workers=3, partitioning="graph"
    ) as server:
        box = network.bounding_box()
        for object_id in range(24):
            server.add_object_at(
                object_id,
                x=box.min_x + (box.max_x - box.min_x) * ((object_id * 37) % 100) / 100.0,
                y=box.min_y + (box.max_y - box.min_y) * ((object_id * 61) % 100) / 100.0,
            )
        location = _cut_locations(network, 1)[0]
        server.add_query(1_000_000, location, k=4)
        server.tick()
        assert 1_000_000 in server.boundary_query_ids()
        # Escalation marks the query divergent conservatively (the strict
        # byte-identity carve-out), and the mark is sticky for the query's
        # lifetime even after termination.
        assert 1_000_000 in server.divergent_query_ids()
        server.remove_query(1_000_000)
        server.tick()
        assert 1_000_000 not in server.boundary_query_ids()
        assert 1_000_000 in server.divergent_query_ids()
        with pytest.raises(Exception):
            server.result_of(1_000_000)


def test_graph_server_topology_resync():
    single_net = city_network(150, seed=14)
    graph_net = city_network(150, seed=14)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(
        graph_net, algorithm="ima", workers=3, partitioning="graph"
    ) as graph:
        _populate(single, single_net)
        _populate(graph, graph_net)
        single.tick()
        graph.tick()
        before = graph.partition_assignment()
        for net, server in ((single_net, single), (graph_net, graph)):
            node_id = max(net.node_ids()) + 1
            anchor = net.node(next(iter(net.node_ids())))
            net.add_node(node_id, anchor.x + 3.0, anchor.y + 3.0)
            net.add_edge(max(net.edge_ids()) + 1, anchor.node_id, node_id, 25.0)
            server.move_object_at(2, x=anchor.x, y=anchor.y)
            server.tick()
        after = graph.partition_assignment()
        assert set(after) == set(before) | {max(graph_net.node_ids())}
        divergent = graph.divergent_query_ids()
        for query_id, expected in single.results().items():
            if query_id not in divergent:
                assert graph.result_of(query_id).neighbors == expected.neighbors


def test_worker_peak_rss_reports_every_shard():
    network = city_network(100, seed=15)
    with MonitoringServer(
        network, algorithm="ima", workers=3, partitioning="graph"
    ) as server:
        _populate(server, network)
        server.tick()
        sizes = server.worker_peak_rss()
        assert len(sizes) == server.shards
        assert all(isinstance(size, int) and size >= 0 for size in sizes)
        # Linux/macOS both report a real positive peak for a live worker.
        assert max(sizes) > 0


def test_graph_snapshot_restore_preserves_results():
    from repro.core.server import restore_server

    network = city_network(120, seed=16)
    with MonitoringServer(
        network, algorithm="ima", workers=3, partitioning="graph"
    ) as server:
        _populate(server, network)
        server.tick()
        expected = {
            query_id: result.neighbors
            for query_id, result in server.results().items()
        }
        boundary = server.boundary_query_ids()
        blob = server.snapshot_state()
    restored = restore_server(blob)
    try:
        assert restored.partitioning == "graph"
        assert restored.boundary_query_ids() == boundary
        for query_id, neighbors in expected.items():
            assert restored.result_of(query_id).neighbors == neighbors
    finally:
        restored.close()


def test_load_initial_state_sees_boundary_queries():
    """Durable genesis extraction must not lose coordinator-owned queries."""
    from repro.core.server import MonitoringServer as Server
    from repro.service.durable import DurableMonitoringServer, load_initial_state

    import tempfile

    network = city_network(150, seed=12)
    with tempfile.TemporaryDirectory() as data_dir:
        inner = Server(network, algorithm="ima", workers=3, partitioning="graph")
        box = network.bounding_box()
        for object_id in range(12):
            inner.add_object_at(
                object_id,
                x=box.min_x
                + (box.max_x - box.min_x) * ((object_id * 37) % 100) / 100.0,
                y=box.min_y
                + (box.max_y - box.min_y) * ((object_id * 61) % 100) / 100.0,
            )
        location = _cut_locations(network, 1)[0]
        inner.add_query(1_000_000, location, k=3)
        inner.tick()
        assert 1_000_000 in inner.boundary_query_ids()
        # The genesis checkpoint is the wrapped server's state at wrap
        # time: the boundary query lives in no shard blob, only in the
        # coordinator maps load_initial_state must read.
        durable = DurableMonitoringServer(inner, data_dir, checkpoint_every=1)
        try:
            durable.tick()
        finally:
            durable.close()
        initial = load_initial_state(data_dir)
        assert 1_000_000 in initial.queries


# ----------------------------------------------------------------------
# oracle-backed preset matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ["ima", "gma"])
@pytest.mark.parametrize("kernel", [KERNEL_CSR, KERNEL_DIAL, KERNEL_NATIVE])
def test_graph_partitioned_presets_match_oracle(algorithm, kernel):
    """IMA/GMA × every kernel through the graph-partitioned harness leg."""
    report = run_differential_scenario(
        "mixed-stress",
        seed=20_060_912,
        algorithms=(),
        workers=3,
        server_algorithm=algorithm,
        server_kernel=kernel,
        partitioning="graph",
        timestamps=5,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_graph_partitioned_mixed_queries_match_oracle():
    """All three query kinds cross the shard protocol (aggregates too)."""
    report = run_differential_scenario(
        "popular-venue",
        seed=20_060_913,
        algorithms=(),
        workers=3,
        query_types="mixed",
        partitioning="graph",
        timestamps=5,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_graph_partitioned_closure_churn_matches_oracle():
    """Closure-grade weight spikes (including on cut edges) stay exact."""
    report = run_differential_scenario(
        "gridlock-closures",
        seed=20_060_914,
        algorithms=(),
        workers=3,
        partitioning="graph",
        timestamps=5,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_harness_rejects_graph_without_workers():
    from repro.exceptions import SimulationError

    with pytest.raises(SimulationError, match="requires workers"):
        run_differential_scenario(
            "uniform-drift", seed=1, partitioning="graph", timestamps=1
        )
