"""Unit tests for the CI benchmark gate (``scripts/check_bench.py``).

The gate is plain stdlib and lives outside the package, so it is loaded
here straight from its file path.  Covered: the self-calibrated compare
(pass / regression / missing / extra verdicts) and the markdown diff
table, which must reach stdout *and* ``$GITHUB_STEP_SUMMARY`` on both
pass and fail.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

_SCRIPT = pathlib.Path(__file__).resolve().parent.parent / "scripts" / "check_bench.py"
_spec = importlib.util.spec_from_file_location("check_bench", _SCRIPT)
check_bench = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_bench)


def _results_file(tmp_path, medians, name="results.json"):
    """Write a minimal pytest-benchmark JSON with the given medians."""
    payload = {
        "benchmarks": [
            {"fullname": fullname, "stats": {"median": median}}
            for fullname, median in medians.items()
        ]
    }
    path = tmp_path / name
    path.write_text(json.dumps(payload), encoding="utf-8")
    return path


def _baseline_file(tmp_path, medians):
    path = tmp_path / "baseline.json"
    check_bench.write_baseline(path, medians, source="test")
    return path


def test_compare_within_tolerance_passes():
    """A uniform machine-speed shift is absorbed by the calibration."""
    baseline = {"benchmarks": {"a": {"median": 0.010}, "b": {"median": 0.020}}}
    failures, factor, rows = check_bench.compare(
        {"a": 0.020, "b": 0.040}, baseline, tolerance=0.30
    )
    assert failures == 0
    assert factor == pytest.approx(2.0)
    assert [row["verdict"] for row in rows] == ["ok", "ok"]


def test_compare_flags_relative_regression():
    """One benchmark 2x over its calibrated baseline fails, the rest pass."""
    baseline = {
        "benchmarks": {
            "a": {"median": 0.010},
            "b": {"median": 0.010},
            "c": {"median": 0.010},
        }
    }
    failures, _factor, rows = check_bench.compare(
        {"a": 0.010, "b": 0.010, "c": 0.020}, baseline, tolerance=0.30
    )
    assert failures == 1
    verdicts = {row["name"]: row["verdict"] for row in rows}
    assert verdicts["c"].startswith("FAIL")
    assert verdicts["a"] == "ok"


def test_compare_reports_missing_and_extra():
    """Baseline/run set drift shows up as dedicated rows; missing fails."""
    baseline = {"benchmarks": {"a": {"median": 0.010}, "gone": {"median": 0.010}}}
    failures, _factor, rows = check_bench.compare(
        {"a": 0.010, "fresh": 0.010}, baseline, tolerance=0.30
    )
    assert failures == 1  # "gone" missing from the run
    verdicts = {row["name"]: row["verdict"] for row in rows}
    assert "missing" in verdicts["gone"]
    assert "new benchmark" in verdicts["fresh"]
    missing_row = next(row for row in rows if row["name"] == "gone")
    assert missing_row["current_ms"] is None and missing_row["delta"] is None


def test_markdown_table_lists_every_benchmark():
    """The rendered table carries one row per benchmark plus the verdict."""
    baseline = {"benchmarks": {"a": {"median": 0.010}, "b": {"median": 0.010}}}
    failures, factor, rows = check_bench.compare(
        {"a": 0.010, "b": 0.030}, baseline, tolerance=0.30
    )
    table = check_bench.render_markdown(
        factor, rows, failures, tolerance=0.30, baseline_name="BENCH_baseline.json"
    )
    assert "### Benchmark gate: FAIL (1 benchmark(s))" in table
    assert "`BENCH_baseline.json`" in table
    assert "| benchmark | current (ms) | calibrated baseline (ms) | delta | verdict |" in table
    assert "| `a` |" in table and "| `b` |" in table
    assert "FAIL" in table


def test_main_pass_emits_table_to_stdout_and_step_summary(tmp_path, capsys, monkeypatch):
    """On pass, the diff table reaches stdout and $GITHUB_STEP_SUMMARY."""
    results = _results_file(tmp_path, {"a": 0.010, "b": 0.020})
    baseline = _baseline_file(tmp_path, {"a": 0.010, "b": 0.020})
    summary = tmp_path / "step_summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    exit_code = check_bench.main([str(results), "--baseline", str(baseline)])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "### Benchmark gate: PASS" in out
    assert "benchmark gate passed" in out
    assert "### Benchmark gate: PASS" in summary.read_text(encoding="utf-8")


def test_main_fail_emits_table_to_stdout_and_step_summary(tmp_path, capsys, monkeypatch):
    """On fail, the table still lands in both sinks and the exit code is 1."""
    results = _results_file(tmp_path, {"a": 0.010, "b": 0.010, "c": 0.050})
    baseline = _baseline_file(tmp_path, {"a": 0.010, "b": 0.010, "c": 0.010})
    summary = tmp_path / "step_summary.md"
    monkeypatch.setenv("GITHUB_STEP_SUMMARY", str(summary))
    exit_code = check_bench.main([str(results), "--baseline", str(baseline)])
    assert exit_code == 1
    out = capsys.readouterr().out
    assert "### Benchmark gate: FAIL" in out
    assert "regressed beyond tolerance" in out
    assert "### Benchmark gate: FAIL" in summary.read_text(encoding="utf-8")


def test_main_without_step_summary_still_prints(tmp_path, capsys, monkeypatch):
    """No $GITHUB_STEP_SUMMARY (local runs): stdout alone gets the table."""
    results = _results_file(tmp_path, {"a": 0.010})
    baseline = _baseline_file(tmp_path, {"a": 0.010})
    monkeypatch.delenv("GITHUB_STEP_SUMMARY", raising=False)
    exit_code = check_bench.main([str(results), "--baseline", str(baseline)])
    assert exit_code == 0
    assert "### Benchmark gate: PASS" in capsys.readouterr().out


def test_update_rewrites_baseline(tmp_path, capsys):
    """--update rewrites the baseline file from the results medians."""
    results = _results_file(tmp_path, {"a": 0.0125})
    baseline = tmp_path / "baseline.json"
    exit_code = check_bench.main(
        [str(results), "--baseline", str(baseline), "--update"]
    )
    assert exit_code == 0
    payload = json.loads(baseline.read_text(encoding="utf-8"))
    assert payload["benchmarks"]["a"]["median"] == pytest.approx(0.0125)
    assert "baseline rewritten" in capsys.readouterr().out
