"""Unit and property-based tests for the indexed min-heap."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import IndexedMinHeap, LazyMinHeap


class TestIndexedMinHeapBasics:
    def test_empty_heap_has_zero_length(self):
        assert len(IndexedMinHeap()) == 0

    def test_empty_heap_is_falsy(self):
        assert not IndexedMinHeap()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().pop()

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            IndexedMinHeap().peek()

    def test_min_key_of_empty_heap_is_infinite(self):
        assert IndexedMinHeap().min_key() == float("inf")

    def test_push_and_pop_single_item(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        assert heap.pop() == ("a", 3.0)
        assert len(heap) == 0

    def test_pop_returns_items_in_key_order(self):
        heap = IndexedMinHeap()
        for item, key in [("a", 5.0), ("b", 1.0), ("c", 3.0)]:
            heap.push(item, key)
        assert [heap.pop()[0] for _ in range(3)] == ["b", "c", "a"]

    def test_contains_reflects_membership(self):
        heap = IndexedMinHeap()
        heap.push(7, 1.0)
        assert 7 in heap
        assert 8 not in heap
        heap.pop()
        assert 7 not in heap

    def test_key_of_returns_current_key(self):
        heap = IndexedMinHeap()
        heap.push("x", 4.5)
        assert heap.key_of("x") == 4.5

    def test_key_of_missing_item_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().key_of("missing")

    def test_peek_does_not_remove(self):
        heap = IndexedMinHeap()
        heap.push("a", 2.0)
        assert heap.peek() == ("a", 2.0)
        assert len(heap) == 1


class TestIndexedMinHeapRelaxation:
    def test_push_existing_item_with_smaller_key_decreases(self):
        heap = IndexedMinHeap()
        heap.push("a", 5.0)
        changed = heap.push("a", 2.0)
        assert changed
        assert heap.key_of("a") == 2.0
        assert len(heap) == 1

    def test_push_existing_item_with_larger_key_is_ignored(self):
        heap = IndexedMinHeap()
        heap.push("a", 2.0)
        changed = heap.push("a", 5.0)
        assert not changed
        assert heap.key_of("a") == 2.0

    def test_push_allow_increase_raises_key(self):
        heap = IndexedMinHeap()
        heap.push("a", 2.0)
        heap.push("b", 3.0)
        changed = heap.push("a", 9.0, allow_increase=True)
        assert changed
        assert heap.pop() == ("b", 3.0)

    def test_decrease_key_reorders_heap(self):
        heap = IndexedMinHeap()
        heap.push("a", 10.0)
        heap.push("b", 5.0)
        heap.decrease_key("a", 1.0)
        assert heap.pop() == ("a", 1.0)

    def test_decrease_key_with_larger_value_is_noop(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        assert not heap.decrease_key("a", 5.0)
        assert heap.key_of("a") == 1.0

    def test_decrease_key_missing_item_raises(self):
        with pytest.raises(KeyError):
            IndexedMinHeap().decrease_key("nope", 1.0)


class TestIndexedMinHeapRemoval:
    def test_remove_returns_key_and_deletes(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.push("b", 2.0)
        assert heap.remove("a") == 1.0
        assert "a" not in heap
        assert heap.pop() == ("b", 2.0)

    def test_remove_middle_item_keeps_heap_valid(self):
        heap = IndexedMinHeap()
        for i in range(20):
            heap.push(i, float(20 - i))
        heap.remove(10)
        assert heap.is_valid()
        assert len(heap) == 19

    def test_discard_missing_item_is_silent(self):
        heap = IndexedMinHeap()
        heap.discard("ghost")
        assert len(heap) == 0

    def test_clear_empties_heap(self):
        heap = IndexedMinHeap()
        heap.push("a", 1.0)
        heap.clear()
        assert len(heap) == 0
        assert "a" not in heap

    def test_items_sorted_orders_by_key(self):
        heap = IndexedMinHeap()
        heap.push("a", 3.0)
        heap.push("b", 1.0)
        assert heap.items_sorted() == [("b", 1.0), ("a", 3.0)]


class TestHeapAgainstSortingOracle:
    def test_random_sequence_pops_sorted(self):
        rng = random.Random(5)
        heap = IndexedMinHeap()
        expected = {}
        for item in range(200):
            key = rng.uniform(0, 100)
            heap.push(item, key)
            expected[item] = key
        # Random relaxations.
        for item in rng.sample(range(200), 80):
            new_key = expected[item] * rng.uniform(0.1, 1.0)
            heap.push(item, new_key)
            expected[item] = min(expected[item], new_key)
        popped = [heap.pop() for _ in range(len(heap))]
        keys = [key for _, key in popped]
        assert keys == sorted(keys)
        assert {item: key for item, key in popped} == expected

    def test_matches_lazy_heap_semantics(self):
        rng = random.Random(11)
        indexed = IndexedMinHeap()
        lazy = LazyMinHeap()
        for _ in range(300):
            item = rng.randrange(60)
            key = rng.uniform(0, 50)
            indexed.push(item, key)
            lazy.push(item, key)
        while indexed:
            assert indexed.pop() == lazy.pop()
        assert not lazy


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=30), st.floats(0, 1000)),
        min_size=1,
        max_size=120,
    )
)
def test_property_heap_invariant_and_min_extraction(operations):
    """After arbitrary pushes, pops come out in non-decreasing key order."""
    heap = IndexedMinHeap()
    best = {}
    for item, key in operations:
        heap.push(item, key)
        if item not in best or key < best[item]:
            best[item] = key
    assert heap.is_valid()
    previous = -1.0
    popped = {}
    while heap:
        item, key = heap.pop()
        assert key >= previous
        previous = key
        popped[item] = key
    assert popped == best


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.tuples(st.integers(0, 15), st.floats(0, 100)), min_size=1, max_size=60),
    st.sets(st.integers(0, 15)),
)
def test_property_removals_preserve_invariant(pushes, removals):
    """Removing arbitrary items keeps the heap structurally valid."""
    heap = IndexedMinHeap()
    for item, key in pushes:
        heap.push(item, key)
    for item in removals:
        heap.discard(item)
        assert item not in heap
    assert heap.is_valid()
