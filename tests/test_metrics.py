"""Tests for the simulation metrics containers."""

from __future__ import annotations

import pytest

from repro.sim.metrics import AlgorithmMetrics, SimulationResult


def _metrics(name: str, seconds, memory=None, counters=None) -> AlgorithmMetrics:
    metrics = AlgorithmMetrics(algorithm=name)
    metrics.seconds_per_timestamp = list(seconds)
    metrics.memory_bytes_per_timestamp = list(memory or [])
    metrics.counters_per_timestamp = list(counters or [])
    metrics.changed_queries_per_timestamp = [1] * len(metrics.seconds_per_timestamp)
    return metrics


class TestAlgorithmMetrics:
    def test_mean_and_total_seconds(self):
        metrics = _metrics("IMA", [0.1, 0.2, 0.3])
        assert metrics.timestamps == 3
        assert metrics.mean_seconds() == pytest.approx(0.2)
        assert metrics.total_seconds() == pytest.approx(0.6)

    def test_empty_metrics_are_zero(self):
        metrics = _metrics("IMA", [])
        assert metrics.mean_seconds() == 0.0
        assert metrics.mean_memory_kb() == 0.0
        assert metrics.mean_counter("nodes_expanded") == 0.0

    def test_memory_aggregates_in_kb(self):
        metrics = _metrics("GMA", [0.1], memory=[2048, 4096])
        assert metrics.mean_memory_kb() == pytest.approx(3.0)
        assert metrics.peak_memory_kb() == pytest.approx(4.0)

    def test_mean_counter(self):
        metrics = _metrics(
            "OVH", [0.1, 0.1], counters=[{"nodes_expanded": 10}, {"nodes_expanded": 30}]
        )
        assert metrics.mean_counter("nodes_expanded") == pytest.approx(20.0)
        assert metrics.mean_counter("missing") == 0.0

    def test_summary_contains_all_fields(self):
        metrics = _metrics("OVH", [0.1], memory=[1024], counters=[{"searches": 5}])
        summary = metrics.summary()
        assert summary["algorithm"] == "OVH"
        assert summary["mean_searches"] == pytest.approx(5.0)
        assert summary["mean_memory_kb"] == pytest.approx(1.0)
        assert summary["mean_changed_queries"] == pytest.approx(1.0)


class TestSimulationResult:
    def _result(self) -> SimulationResult:
        return SimulationResult(
            config_description={"k": 5},
            metrics={
                "OVH": _metrics("OVH", [0.4, 0.6]),
                "IMA": _metrics("IMA", [0.2, 0.3]),
            },
        )

    def test_accessors(self):
        result = self._result()
        assert result.algorithms() == ["OVH", "IMA"]
        assert result.metrics_of("IMA").algorithm == "IMA"
        assert result.mean_seconds_table()["OVH"] == pytest.approx(0.5)

    def test_speedup_over_baseline(self):
        result = self._result()
        speedups = result.speedup_over("OVH")
        assert speedups["OVH"] == pytest.approx(1.0)
        assert speedups["IMA"] == pytest.approx(2.0)

    def test_speedup_with_zero_time_is_infinite(self):
        result = SimulationResult(
            config_description={},
            metrics={"OVH": _metrics("OVH", [0.5]), "IMA": _metrics("IMA", [0.0])},
        )
        assert result.speedup_over("OVH")["IMA"] == float("inf")
