"""Oracle differential coverage for the realism presets.

The fuzz suite already rotates the ``rush-hour`` / ``gridlock-closures``
presets through its seed matrix; this file pins the ISSUE-8 acceptance
matrix explicitly — IMA/GMA x csr/dial kernels x 1/2 workers — with fixed
seeds so it runs deterministically in every plain pytest invocation.  The
closure preset drives the closed-road sentinel
(:data:`~repro.network.graph.CLOSED_EDGE_WEIGHT`) through the whole stack:
monitors, batched servers, sharded merge, and both kernels must agree with
the brute-force oracle byte-for-byte while edges close and reopen.

Also covers an imported synthetic city as the differential substrate, so
the importer output (not just ``city_network`` grids) is proven
monitoring-clean end to end.
"""

from __future__ import annotations

import pytest

from repro.realism import synthetic_city_network
from repro.testing.harness import (
    DEFAULT_ALGORITHMS,
    DIAL_ALGORITHMS,
    run_differential_scenario,
)

PRESETS = ("rush-hour", "gridlock-closures")
KERNEL_ALGORITHMS = {"csr": ("IMA", "GMA"), "dial": DIAL_ALGORITHMS[:2]}


@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("kernel", sorted(KERNEL_ALGORITHMS))
@pytest.mark.parametrize("preset", PRESETS)
def test_realism_presets_match_oracle(preset, kernel, workers):
    """The acceptance matrix: preset x kernel x worker count vs the oracle."""
    report = run_differential_scenario(
        preset,
        seed=17 + workers,
        algorithms=KERNEL_ALGORITHMS[kernel],
        workers=workers,
        server_kernel=kernel,
    )
    assert report.ok, report.failures[:3]


def test_gridlock_closures_on_imported_city():
    """Closures on an *imported* network: the realism pipeline end to end."""
    result = synthetic_city_network(target_edges=150, seed=5)
    report = run_differential_scenario(
        "gridlock-closures",
        seed=23,
        network=result.network,
        algorithms=DEFAULT_ALGORITHMS,
    )
    assert report.ok, report.failures[:3]


def test_rush_hour_mixed_query_types():
    """Range and aggregate queries also survive wave/incident streams."""
    report = run_differential_scenario(
        "rush-hour",
        seed=31,
        algorithms=("IMA", "GMA"),
        query_types="mixed",
    )
    assert report.ok, report.failures[:3]
