"""Tests for the workload config, simulator, datasets and experiment harness."""

from __future__ import annotations

import pytest

from repro.exceptions import ExperimentError, SimulationError
from repro.experiments.config import SCALED_DEFAULTS, SMOKE_DEFAULTS, scale_cardinality, table2_rows
from repro.experiments.figures import EXPERIMENTS, get_experiment, list_experiments
from repro.experiments.reporting import format_experiment, format_table, format_table2
from repro.experiments.runner import run_experiment, run_point
from repro.experiments.cli import main as cli_main
from repro.sim.simulator import QUERY_ID_BASE, Simulator
from repro.sim.workload import PAPER_DEFAULTS, WorkloadConfig


class TestWorkloadConfig:
    def test_defaults_are_valid(self):
        config = WorkloadConfig()
        assert config.num_objects > 0
        assert config.describe()["k"] == config.k

    def test_invalid_values_rejected(self):
        with pytest.raises(ValueError):
            WorkloadConfig(num_objects=0)
        with pytest.raises(ValueError):
            WorkloadConfig(edge_agility=1.5)
        with pytest.raises(SimulationError):
            WorkloadConfig(object_distribution="weird")
        with pytest.raises(SimulationError):
            WorkloadConfig(mobility_model="teleport")

    def test_with_overrides_returns_new_config(self):
        config = WorkloadConfig()
        other = config.with_overrides(k=3)
        assert other.k == 3
        assert config.k != 3 or config.k == 3  # original unchanged object
        assert other is not config

    def test_paper_scale_matches_table2(self):
        config = WorkloadConfig.paper_scale()
        assert config.num_objects == PAPER_DEFAULTS["num_objects"]
        assert config.k == PAPER_DEFAULTS["k"]
        assert config.network_edges == PAPER_DEFAULTS["network_edges"]


class TestSimulator:
    @pytest.fixture(scope="class")
    def tiny_config(self):
        return WorkloadConfig(
            num_objects=120, num_queries=12, k=3, network_edges=120, timestamps=3, seed=5
        )

    def test_build_places_objects_and_queries(self, tiny_config):
        simulator = Simulator(tiny_config)
        assert simulator.edge_table.object_count == 120
        assert len(simulator.query_locations()) == 12
        assert min(simulator.query_locations()) >= QUERY_ID_BASE

    def test_generate_batch_respects_agilities(self, tiny_config):
        simulator = Simulator(tiny_config)
        batch = simulator.generate_batch(0)
        assert len(batch.object_updates) <= 120
        assert len(batch.query_updates) <= 12
        assert len(batch.edge_updates) <= simulator.network.edge_count

    def test_run_produces_metrics_for_all_algorithms(self, tiny_config):
        result = Simulator(tiny_config).run(validate=True)
        assert set(result.metrics) == {"OVH", "IMA", "GMA"}
        assert result.validation_mismatches == 0
        for metrics in result.metrics.values():
            assert metrics.timestamps == 3
            assert metrics.mean_seconds() >= 0.0
            assert metrics.mean_memory_kb() > 0.0
        assert result.speedup_over("OVH")["OVH"] == pytest.approx(1.0)

    def test_run_is_reproducible_across_instances(self, tiny_config):
        first = Simulator(tiny_config)
        second = Simulator(tiny_config)
        batch_a = first.generate_batch(0)
        batch_b = second.generate_batch(0)
        assert len(batch_a.object_updates) == len(batch_b.object_updates)
        assert [u.object_id for u in batch_a.object_updates] == [
            u.object_id for u in batch_b.object_updates
        ]

    def test_unknown_algorithm_rejected(self, tiny_config):
        with pytest.raises(SimulationError):
            Simulator(tiny_config).build_monitors(["FANCY"])

    def test_brinkhoff_mobility_model(self):
        config = WorkloadConfig(
            num_objects=80,
            num_queries=8,
            k=2,
            network_edges=100,
            timestamps=2,
            mobility_model="brinkhoff",
            seed=9,
        )
        result = Simulator(config).run(algorithms=("OVH", "GMA"), validate=True)
        assert result.validation_mismatches == 0


class TestExperimentRegistry:
    def test_every_figure_of_the_paper_is_registered(self):
        expected = {
            "fig13a", "fig13b", "fig14a", "fig14b", "fig15a", "fig15b",
            "fig16a", "fig16b", "fig17a", "fig17b", "fig18a", "fig18b",
            "fig19a", "fig19b",
        }
        assert expected == set(EXPERIMENTS)

    def test_every_experiment_has_points_and_shape(self):
        for experiment in list_experiments():
            assert len(experiment.points) >= 4
            assert experiment.metric in ("cpu", "memory")
            assert experiment.expected_shape

    def test_get_experiment_unknown_id_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99z")

    def test_scale_cardinality(self):
        assert scale_cardinality(100_000, scale=25) == 4000
        assert scale_cardinality(10, scale=1000) == 1

    def test_table2_lists_all_parameters(self):
        parameters = {row["parameter"] for row in table2_rows()}
        assert any("objects" in p for p in parameters)
        assert any("agility" in p.lower() for p in parameters)
        assert len(parameters) >= 10


class TestRunnerAndReporting:
    def test_run_point_smoke(self):
        result = run_point(SMOKE_DEFAULTS, ("OVH", "IMA"), validate=True)
        assert result.validation_mismatches == 0
        assert set(result.metrics) == {"OVH", "IMA"}

    def test_run_experiment_produces_row_per_point(self):
        experiment = get_experiment("fig15b")
        # Shrink the sweep drastically for test speed: reuse only the runner
        # machinery with one timestamp.
        result = run_experiment(experiment, algorithms=("OVH",), timestamps=1)
        assert len(result.rows) == len(experiment.points)
        assert all("OVH" in row.cpu_seconds for row in result.rows)
        report = format_experiment(result)
        assert "Figure 15(b)" in report
        assert "OVH" in report

    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_table2_mentions_scaled_defaults(self):
        text = format_table2()
        assert "Scaled default" in text
        assert str(SCALED_DEFAULTS.network_edges) in text

    def test_cli_list_and_table2(self, capsys):
        assert cli_main(["list"]) == 0
        assert "fig13a" in capsys.readouterr().out
        assert cli_main(["table2"]) == 0
        assert "Table 2" in capsys.readouterr().out

    def test_cli_run_single_experiment(self, capsys):
        assert cli_main(["run", "fig15b", "--timestamps", "1", "--algorithms", "OVH"]) == 0
        out = capsys.readouterr().out
        assert "Figure 15(b)" in out
