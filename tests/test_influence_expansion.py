"""Tests for the influence index and the expansion-tree state."""

from __future__ import annotations

import pytest

from repro.core.expansion import (
    ExpansionState,
    compute_influence_map,
    object_distance_via_state,
)
from repro.core.influence import InfluenceIndex
from repro.network.graph import NetworkLocation
from repro.utils.intervals import point_in_spans


class TestInfluenceIndex:
    def test_set_and_query(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        assert index.subscribers_on_edge(10) == {1}
        assert index.subscribers_at_point(10, 3.0) == {1}
        assert index.subscribers_at_point(10, 7.0) == set()
        assert index.edges_of_subscriber(1) == {10}

    def test_empty_intervals_remove_entry(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        index.set_influence(1, 10, ())
        assert index.subscribers_on_edge(10) == set()
        assert not index.has_subscriber(1)

    def test_replace_subscriber_clears_old_entries(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        index.replace_subscriber(1, {11: ((0.0, 2.0),)})
        assert index.subscribers_on_edge(10) == set()
        assert index.subscribers_on_edge(11) == {1}

    def test_clear_subscriber(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        index.set_influence(1, 11, ((0.0, 5.0),))
        index.clear_subscriber(1)
        assert len(index) == 0

    def test_remove_influence_single_entry(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        index.set_influence(2, 10, ((0.0, 5.0),))
        index.remove_influence(1, 10)
        assert index.subscribers_on_edge(10) == {2}

    def test_contains_point_and_interval_of(self):
        index = InfluenceIndex()
        index.set_influence(3, 20, ((1.0, 2.0), (5.0, 6.0)))
        assert index.contains_point(3, 20, 1.5)
        assert not index.contains_point(3, 20, 3.0)
        assert index.interval_of(3, 20) == ((1.0, 2.0), (5.0, 6.0))
        assert index.interval_of(3, 99) is None

    def test_accounting(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 1.0), (2.0, 3.0)))
        index.set_influence(2, 10, ((0.0, 1.0),))
        index.set_influence(1, 11, ((0.0, 1.0),))
        assert len(index) == 3
        assert index.edge_count() == 2
        assert index.subscriber_count() == 2
        assert index.interval_count() == 4
        assert len(list(index.iter_entries())) == 3

    def test_point_query_uses_generous_tolerance(self):
        index = InfluenceIndex()
        index.set_influence(1, 10, ((0.0, 5.0),))
        assert index.subscribers_at_point(10, 5.0000001) == {1}


class TestExpansionState:
    def _simple_state(self) -> ExpansionState:
        # Tree: 1 and 2 reached from the query (parent None); 3 below 1;
        # 4 below 3.
        return ExpansionState(
            node_dist={1: 10.0, 2: 15.0, 3: 25.0, 4: 40.0},
            parent={1: None, 2: None, 3: 1, 4: 3},
        )

    def test_distance_lookup(self):
        state = self._simple_state()
        assert state.distance(3) == 25.0
        assert state.distance(99) == float("inf")

    def test_children_map_and_root_children(self):
        state = self._simple_state()
        children = state.children_map()
        assert set(children[None]) == {1, 2}
        assert children[1] == [3]
        assert set(state.root_children()) == {1, 2}

    def test_subtree_nodes(self):
        state = self._simple_state()
        assert state.subtree_nodes(1) == {1, 3, 4}
        assert state.subtree_nodes(2) == {2}
        assert state.subtree_nodes(99) == set()

    def test_prune_subtree(self):
        state = self._simple_state()
        removed = state.prune_subtree(3)
        assert removed == {3, 4}
        assert set(state.node_dist) == {1, 2}

    def test_shift_subtree(self):
        state = self._simple_state()
        state.shift_subtree(3, -5.0)
        assert state.node_dist[3] == 20.0
        assert state.node_dist[4] == 35.0
        assert state.node_dist[1] == 10.0

    def test_keep_only_reparents_orphans(self):
        state = self._simple_state()
        state.keep_only({1, 4})
        assert set(state.node_dist) == {1, 4}
        assert state.parent[4] is None

    def test_shrink_to_radius(self):
        state = self._simple_state()
        removed = state.shrink_to_radius(20.0)
        assert removed == 2
        assert set(state.node_dist) == {1, 2}

    def test_reroot_subtree(self):
        state = self._simple_state()
        state.reroot_subtree(3, 2.0)
        # Only 3 and 4 survive, with distances re-offset so that d(3) = 2.
        assert set(state.node_dist) == {3, 4}
        assert state.node_dist[3] == pytest.approx(2.0)
        assert state.node_dist[4] == pytest.approx(17.0)
        assert state.parent[3] is None

    def test_reroot_at_missing_node_clears(self):
        state = self._simple_state()
        state.reroot_subtree(77, 0.0)
        assert len(state) == 0

    def test_footprint_scales_with_nodes(self):
        assert self._simple_state().footprint_bytes() == 4 * 24


class TestInfluenceMapAndObjectDistance:
    def test_influence_map_on_line(self, line_network):
        # Query in the middle of edge 1 (x = 150), radius 120.
        state = ExpansionState(node_dist={1: 50.0, 2: 50.0}, parent={1: None, 2: None})
        location = NetworkLocation(1, 0.5)
        influences = compute_influence_map(line_network, state, 120.0, location)
        # Edge 1 fully covered; edges 0 and 2 partially (70 units deep).
        assert set(influences) == {0, 1, 2}
        assert point_in_spans(influences[0], 50.0)
        assert not point_in_spans(influences[0], 20.0)
        assert point_in_spans(influences[2], 60.0)
        assert not point_in_spans(influences[2], 90.0)

    def test_influence_map_with_infinite_radius(self, line_network):
        state = ExpansionState(node_dist={0: 0.0}, parent={0: None})
        influences = compute_influence_map(
            line_network, state, float("inf"), NetworkLocation(0, 0.0)
        )
        assert point_in_spans(influences[0], 99.0)

    def test_object_distance_via_state_min_formula(self, line_network):
        state = ExpansionState(node_dist={1: 50.0, 2: 50.0}, parent={1: None, 2: None})
        query = NetworkLocation(1, 0.5)
        # Object on edge 2 at fraction 0.25 -> 25 beyond node 2.
        distance = object_distance_via_state(
            line_network, state, NetworkLocation(2, 0.25), query
        )
        assert distance == pytest.approx(75.0)

    def test_object_distance_same_edge_direct(self, line_network):
        state = ExpansionState()
        query = NetworkLocation(1, 0.5)
        distance = object_distance_via_state(
            line_network, state, NetworkLocation(1, 0.9), query
        )
        assert distance == pytest.approx(40.0)

    def test_object_distance_unreachable_without_state(self, line_network):
        state = ExpansionState()
        distance = object_distance_via_state(
            line_network, state, NetworkLocation(3, 0.5), NetworkLocation(0, 0.5)
        )
        assert distance == float("inf")
