"""Tests for the network expansion engine (the Figure-2 search)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.results import results_equal
from repro.core.search import SearchCounters, expand_knn
from repro.exceptions import InvalidQueryError
from repro.network.builders import city_network
from repro.network.distance import brute_force_knn
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation


class TestBasicSearch:
    def test_requires_a_source(self, populated_line):
        network, table = populated_line
        with pytest.raises(InvalidQueryError):
            expand_knn(network, table, 1)

    def test_requires_positive_k(self, populated_line):
        network, table = populated_line
        with pytest.raises(InvalidQueryError):
            expand_knn(network, table, 0, query_location=NetworkLocation(0, 0.0))

    def test_single_nearest_neighbor_on_line(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(network, table, 1, query_location=NetworkLocation(0, 0.0))
        assert outcome.neighbors == [(0, pytest.approx(50.0))]
        assert outcome.radius == pytest.approx(50.0)

    def test_multiple_neighbors_sorted(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(network, table, 3, query_location=NetworkLocation(0, 0.0))
        assert outcome.object_ids == (0, 1, 2)
        distances = [d for _, d in outcome.neighbors]
        assert distances == sorted(distances)

    def test_source_node_search(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(network, table, 2, source_node=4)
        # From node 4 (x=400): object 2 at x=390 -> 10; object 1 at 225 -> 175.
        assert outcome.neighbors[0] == (2, pytest.approx(10.0))
        assert outcome.neighbors[1] == (1, pytest.approx(175.0))

    def test_fewer_objects_than_k_gives_infinite_radius(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(network, table, 10, query_location=NetworkLocation(0, 0.0))
        assert len(outcome.neighbors) == 3
        assert outcome.radius == float("inf")

    def test_excluded_objects_are_ignored(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(
            network,
            table,
            1,
            query_location=NetworkLocation(0, 0.0),
            excluded_objects={0},
        )
        assert outcome.object_ids == (1,)

    def test_counters_accumulate(self, populated_line):
        network, table = populated_line
        counters = SearchCounters()
        expand_knn(network, table, 2, query_location=NetworkLocation(0, 0.0), counters=counters)
        assert counters.searches == 1
        assert counters.nodes_expanded > 0
        assert counters.objects_considered > 0
        snapshot = counters.snapshot()
        counters.merge(SearchCounters(searches=1))
        assert counters.searches == snapshot["searches"] + 1
        counters.reset()
        assert counters.searches == 0

    def test_expansion_state_contains_exact_distances(self, populated_line):
        network, table = populated_line
        outcome = expand_knn(network, table, 3, query_location=NetworkLocation(0, 0.0))
        # Node 1 is at x=100, node 2 at 200, ... from the query at x=0.
        for node_id, distance in outcome.state.node_dist.items():
            assert distance == pytest.approx(node_id * 100.0)


class TestSeededSearch:
    def test_candidates_do_not_change_the_result(self, populated_city):
        network, table, _ = populated_city
        rng = random.Random(0)
        edges = list(network.edge_ids())
        for _ in range(10):
            query = NetworkLocation(rng.choice(edges), rng.random())
            plain = expand_knn(network, table, 5, query_location=query)
            # Seed with loose upper bounds for a few arbitrary objects.
            seeded = expand_knn(
                network,
                table,
                5,
                query_location=query,
                candidates=[(object_id, 1e6) for object_id in range(10)],
            )
            assert results_equal(plain.neighbors, seeded.neighbors)

    def test_preverified_resume_matches_fresh_search(self, populated_city):
        network, table, _ = populated_city
        rng = random.Random(1)
        edges = list(network.edge_ids())
        for _ in range(10):
            query = NetworkLocation(rng.choice(edges), rng.random())
            fresh = expand_knn(network, table, 4, query_location=query)
            resumed = expand_knn(
                network,
                table,
                4,
                query_location=query,
                preverified=fresh.state.node_dist,
                preverified_parent=fresh.state.parent,
            )
            assert results_equal(fresh.neighbors, resumed.neighbors)

    def test_coverage_radius_with_complete_candidates_matches(self, populated_city):
        network, table, _ = populated_city
        rng = random.Random(2)
        edges = list(network.edge_ids())
        for _ in range(10):
            query = NetworkLocation(rng.choice(edges), rng.random())
            fresh = expand_knn(network, table, 4, query_location=query)
            resumed = expand_knn(
                network,
                table,
                4,
                query_location=query,
                preverified=fresh.state.node_dist,
                preverified_parent=fresh.state.parent,
                candidates=fresh.neighbors,
                coverage_radius=fresh.radius,
            )
            assert results_equal(fresh.neighbors, resumed.neighbors)

    def test_barrier_truncation_with_monitored_neighbors_is_exact(self, populated_city):
        network, table, _ = populated_city
        rng = random.Random(3)
        edges = list(network.edge_ids())
        k = 4
        intersections = [n for n in network.node_ids() if network.degree(n) >= 3]
        for _ in range(8):
            query = NetworkLocation(rng.choice(edges), rng.random())
            barrier_nodes = rng.sample(intersections, min(3, len(intersections)))
            barriers = {}
            for node_id in barrier_nodes:
                node_outcome = expand_knn(network, table, k, source_node=node_id)
                barriers[node_id] = node_outcome.neighbors
            truth = brute_force_knn(network, table, query, k)
            truncated = expand_knn(
                network, table, k, query_location=query, barrier_candidates=barriers
            )
            assert results_equal(truth, truncated.neighbors)


class TestAgainstBruteForce:
    @pytest.mark.parametrize("k", [1, 3, 8])
    def test_matches_brute_force_on_random_queries(self, populated_city, k):
        network, table, _ = populated_city
        rng = random.Random(42 + k)
        edges = list(network.edge_ids())
        for _ in range(15):
            query = NetworkLocation(rng.choice(edges), rng.random())
            expected = brute_force_knn(network, table, query, k)
            actual = expand_knn(network, table, k, query_location=query)
            assert results_equal(expected, actual.neighbors)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        k=st.integers(1, 6),
        fraction=st.floats(0.0, 1.0),
    )
    def test_property_search_equals_brute_force(self, seed, k, fraction):
        """On random small scenarios the expansion equals the quadratic oracle."""
        rng = random.Random(seed)
        network = city_network(60, seed=seed)
        table = EdgeTable(network, build_spatial_index=False)
        edges = list(network.edge_ids())
        for object_id in range(25):
            table.insert_object(object_id, NetworkLocation(rng.choice(edges), rng.random()))
        query = NetworkLocation(rng.choice(edges), fraction)
        expected = brute_force_knn(network, table, query, k)
        actual = expand_knn(network, table, k, query_location=query)
        assert results_equal(expected, actual.neighbors)
