"""Unit tests for the query-type subsystem (QuerySpec, range, aggregate).

Covers the :class:`~repro.core.queries.QuerySpec` abstraction itself, the
fixed-radius search support of every kernel, range and aggregate monitoring
on OVH/IMA/GMA against the brute-force ground truth, spec transport through
the sharded server, and the unified typed ``result_of`` errors on both the
in-process and sharded paths.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import ObjectUpdate, QueryUpdate, UpdateBatch
from repro.core.queries import (
    QuerySpec,
    aggregate_knn,
    as_query_spec,
    knn,
    range_query,
)
from repro.core.results import results_equal
from repro.core.search import ExpansionRequest, expand_knn, expand_knn_batch
from repro.core.search_legacy import expand_knn_legacy
from repro.core.server import MonitoringServer
from repro.exceptions import (
    EdgeNotFoundError,
    InvalidQueryError,
    UnknownQueryError,
)
from repro.network.builders import city_network
from repro.network.csr import csr_snapshot
from repro.network.distance import (
    brute_force_aggregate_knn,
    brute_force_knn,
    brute_force_object_distances,
    brute_force_range,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation

from repro.network.kernels import available_kernels

ALGORITHMS = ["ovh", "ima", "gma"]
# Sweep every kernel that can run here — new registered backends (e.g. the
# compiled native engine) join the matrix automatically.
KERNELS = list(available_kernels())


def _network_and_table(edges=120, seed=23, objects=30):
    network = city_network(edges, seed=seed)
    edge_table = EdgeTable(network, build_spatial_index=False)
    rng = random.Random(seed)
    edge_ids = sorted(network.edge_ids())
    for object_id in range(objects):
        edge_table.insert_object(
            object_id, NetworkLocation(rng.choice(edge_ids), rng.random())
        )
    return network, edge_table, edge_ids


def _mean_weight(network):
    edge_ids = sorted(network.edge_ids())
    return sum(network.edge(e).weight for e in edge_ids) / len(edge_ids)


def _server(algorithm, kernel, edges=120, seed=23, objects=30):
    network, edge_table, edge_ids = _network_and_table(edges, seed, objects)
    server = MonitoringServer(
        network, algorithm, edge_table=edge_table, kernel=kernel
    )
    return server, edge_ids


# ----------------------------------------------------------------------
# QuerySpec itself
# ----------------------------------------------------------------------
class TestQuerySpec:
    def test_factories_and_normalization(self):
        assert knn(4) == QuerySpec.knn(4) == as_query_spec(4)
        assert range_query(2.5) == QuerySpec.range(2.5)
        point = NetworkLocation(0, 0.5)
        spec = aggregate_knn(2, [point], "max")
        assert spec == QuerySpec.aggregate_knn(2, (point,), "max")
        assert spec.points == (point,)  # list coerced to tuple
        assert as_query_spec(spec) is spec
        assert as_query_spec(None) is None

    def test_result_k_and_aggregation_points(self):
        assert knn(4).result_k == 4
        assert range_query(1.0).result_k == 0
        location = NetworkLocation(3, 0.25)
        extra = NetworkLocation(7, 0.75)
        spec = aggregate_knn(2, (extra,))
        assert spec.aggregation_points(location) == (location, extra)
        assert knn(2).is_knn and not range_query(1.0).is_knn

    @pytest.mark.parametrize(
        "bad",
        [
            lambda: QuerySpec(kind="voronoi"),
            lambda: QuerySpec.knn(0),
            lambda: QuerySpec.aggregate_knn(0),
            lambda: QuerySpec.range(0.0),
            lambda: QuerySpec.range(-1.0),
            lambda: QuerySpec.range(float("inf")),
            lambda: QuerySpec.aggregate_knn(2, agg="median"),
            lambda: QuerySpec(kind="knn", k=2, points=(NetworkLocation(0, 0.5),)),
            lambda: as_query_spec(2.5),
            lambda: as_query_spec(True),
            lambda: as_query_spec("4"),
        ],
    )
    def test_invalid_specs_raise(self, bad):
        with pytest.raises(InvalidQueryError):
            bad()

    def test_installation_requires_spec_or_k(self):
        with pytest.raises(InvalidQueryError):
            QueryUpdate(1, None, NetworkLocation(0, 0.5))

    def test_normalization_carries_spec(self):
        """A same-tick remove+add collapses into a movement holding the spec."""
        old = NetworkLocation(0, 0.2)
        new = NetworkLocation(1, 0.8)
        spec = range_query(3.0)
        batch = UpdateBatch()
        batch.query_updates.append(QueryUpdate(9, old, None))
        batch.query_updates.append(QueryUpdate(9, None, new, spec))
        [merged] = batch.normalized().query_updates
        assert merged.old_location == old
        assert merged.new_location == new
        assert merged.spec == spec


# ----------------------------------------------------------------------
# fixed-radius kernel support
# ----------------------------------------------------------------------
class TestFixedRadiusKernels:
    def test_all_kernels_agree_with_brute_force(self):
        network, edge_table, edge_ids = _network_and_table()
        radius = 3.0 * _mean_weight(network)
        for fraction in (0.0, 0.31, 1.0):
            location = NetworkLocation(edge_ids[17], fraction)
            truth = brute_force_range(network, edge_table, location, radius)
            csr = csr_snapshot(network)
            fast = expand_knn(
                network, edge_table, 1, query_location=location,
                csr=csr, fixed_radius=radius,
            )
            legacy = expand_knn_legacy(
                network, edge_table, 1, query_location=location,
                fixed_radius=radius,
            )
            [dial] = expand_knn_batch(
                network, edge_table,
                [ExpansionRequest(k=1, query_location=location, fixed_radius=radius)],
                csr=csr,
            )
            assert fast.neighbors == dial.neighbors
            assert fast.radius == legacy.radius == dial.radius == radius
            assert results_equal(truth, fast.neighbors)
            assert results_equal(truth, legacy.neighbors)
            # The range outcome is every in-range object, sorted.
            assert [pair[0] for pair in fast.neighbors] == [p[0] for p in truth]

    def test_fixed_radius_returns_full_inventory_not_top_k(self):
        network, edge_table, edge_ids = _network_and_table(objects=40)
        location = NetworkLocation(edge_ids[5], 0.5)
        big = 6.0 * _mean_weight(network)
        outcome = expand_knn(
            network, edge_table, 1, query_location=location, fixed_radius=big
        )
        assert len(outcome.neighbors) > 1  # k was 1; the radius governs
        distances = [distance for _, distance in outcome.neighbors]
        assert distances == sorted(distances)
        assert all(distance <= big for distance in distances)


# ----------------------------------------------------------------------
# range monitoring against ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", KERNELS)
class TestRangeMonitoring:
    def test_range_query_tracks_ground_truth(self, algorithm, kernel):
        server, edges = _server(algorithm, kernel)
        radius = 2.5 * _mean_weight(server.network)
        location = NetworkLocation(edges[11], 0.4)
        server.add_query(100, location, k=range_query(radius))
        server.tick()

        def check():
            truth = brute_force_range(
                server.network, server.edge_table, server.monitor.query_location(100),
                radius,
            )
            result = server.result_of(100)
            assert result.radius == radius
            assert result.k == 0 and result.is_complete
            assert results_equal(truth, list(result.neighbors)), (
                truth, list(result.neighbors),
            )

        check()
        # Objects move in / out of range, weights shift, the query moves.
        rng = random.Random(4)
        for step in range(6):
            batch = UpdateBatch()
            for object_id in rng.sample(range(30), 4):
                batch.object_updates.append(
                    ObjectUpdate(
                        object_id,
                        server.edge_table.location_of(object_id),
                        NetworkLocation(rng.choice(edges), rng.random()),
                    )
                )
            edge_id = rng.choice(edges)
            old_weight = server.network.edge(edge_id).weight
            server.apply_updates(batch)
            server.update_edge_weight(edge_id, old_weight * (0.8 + 0.4 * rng.random()))
            if step % 2:
                server.move_query(100, NetworkLocation(rng.choice(edges), rng.random()))
            server.tick()
            check()

    def test_range_query_with_zero_in_range_objects(self, algorithm, kernel):
        """A geofence containing nothing stays empty, then fills on arrival."""
        network = city_network(120, seed=23)
        edge_table = EdgeTable(network, build_spatial_index=False)
        server = MonitoringServer(
            network, algorithm, edge_table=edge_table, kernel=kernel
        )
        edges = sorted(network.edge_ids())
        tiny = 1e-6
        location = NetworkLocation(edges[8], 0.5)
        server.add_query(100, location, k=range_query(tiny))
        server.tick()
        result = server.result_of(100)
        assert result.neighbors == ()
        assert result.radius == tiny
        assert result.is_complete  # a range result is never "incomplete"

        # An object landing essentially on the query enters the result...
        server.add_object(1, NetworkLocation(edges[8], 0.5))
        server.tick()
        assert server.result_of(100).object_ids == (1,)
        # ... and leaves it again when it moves away.
        server.move_object(1, NetworkLocation(edges[40], 0.9))
        server.tick()
        assert server.result_of(100).neighbors == ()


# ----------------------------------------------------------------------
# aggregate monitoring against ground truth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", KERNELS)
class TestAggregateMonitoring:
    @pytest.mark.parametrize("agg", ["sum", "max"])
    def test_aggregate_tracks_ground_truth(self, algorithm, kernel, agg):
        server, edges = _server(algorithm, kernel)
        extra = (
            NetworkLocation(edges[33], 0.1),
            NetworkLocation(edges[57], 0.8),
        )
        spec = aggregate_knn(3, extra, agg)
        location = NetworkLocation(edges[2], 0.6)
        server.add_query(100, location, k=spec)
        server.tick()

        def check():
            truth = brute_force_aggregate_knn(
                server.network,
                server.edge_table,
                spec.aggregation_points(server.monitor.query_location(100)),
                spec.k,
                agg=agg,
            )
            assert results_equal(truth, list(server.result_of(100).neighbors))

        check()
        rng = random.Random(9)
        for step in range(5):
            for object_id in rng.sample(range(30), 3):
                server.move_object(
                    object_id, NetworkLocation(rng.choice(edges), rng.random())
                )
            edge_id = rng.choice(edges)
            server.update_edge_weight(
                edge_id, server.network.edge(edge_id).weight * 1.1
            )
            if step == 3:
                server.move_query(100, NetworkLocation(rng.choice(edges), 0.2))
            server.tick()
            check()

    def test_aggregate_k_larger_than_live_objects(self, algorithm, kernel):
        """k > live objects: incomplete result, radius inf, fills on arrival."""
        network = city_network(120, seed=23)
        edge_table = EdgeTable(network, build_spatial_index=False)
        server = MonitoringServer(
            network, algorithm, edge_table=edge_table, kernel=kernel
        )
        edges = sorted(network.edge_ids())
        spec = aggregate_knn(5, (NetworkLocation(edges[20], 0.5),), "sum")
        server.add_query(100, NetworkLocation(edges[4], 0.5), k=spec)
        server.add_object(0, NetworkLocation(edges[9], 0.25))
        server.add_object(1, NetworkLocation(edges[44], 0.75))
        server.tick()
        result = server.result_of(100)
        assert len(result.neighbors) == 2
        assert not result.is_complete
        assert result.radius == float("inf")

        batch = UpdateBatch()
        for object_id in range(10, 16):
            batch.object_updates.append(
                ObjectUpdate(object_id, None, NetworkLocation(edges[object_id], 0.3))
            )
        server.apply_updates(batch)
        server.tick()
        result = server.result_of(100)
        assert result.is_complete and result.radius != float("inf")
        truth = brute_force_aggregate_knn(
            server.network,
            server.edge_table,
            spec.aggregation_points(server.monitor.query_location(100)),
            spec.k,
        )
        assert results_equal(truth, list(result.neighbors))

    def test_aggregate_with_no_objects_is_empty(self, algorithm, kernel):
        network = city_network(80, seed=5)
        server = MonitoringServer(
            network,
            algorithm,
            edge_table=EdgeTable(network, build_spatial_index=False),
            kernel=kernel,
        )
        edges = sorted(network.edge_ids())
        server.add_query(100, NetworkLocation(edges[0], 0.5), k=aggregate_knn(2))
        server.tick()
        result = server.result_of(100)
        assert result.neighbors == () and result.radius == float("inf")


# ----------------------------------------------------------------------
# brute-force helper self-consistency
# ----------------------------------------------------------------------
def test_brute_force_helpers_are_consistent():
    network, edge_table, edge_ids = _network_and_table()
    location = NetworkLocation(edge_ids[3], 0.7)
    pairs = brute_force_object_distances(network, edge_table, location)
    assert brute_force_knn(network, edge_table, location, 4) == pairs[:4]
    radius = pairs[5][1]
    in_range = brute_force_range(network, edge_table, location, radius)
    assert in_range == [pair for pair in pairs if pair[1] <= radius]
    # Single-point aggregate == plain k-NN, for both aggregate functions.
    for agg in ("sum", "max"):
        assert brute_force_aggregate_knn(
            network, edge_table, (location,), 4, agg=agg
        ) == pairs[:4]


# ----------------------------------------------------------------------
# sharded transport
# ----------------------------------------------------------------------
def test_sharded_server_handles_all_query_types():
    """Specs partition across workers; merged results match single-process."""
    network, edge_table, edge_ids = _network_and_table(objects=24)
    single = MonitoringServer(
        network.copy(),
        "ima",
        edge_table=None,
    )
    specs = {
        1_000_000: (NetworkLocation(edge_ids[4], 0.5), knn(3)),
        1_000_001: (
            NetworkLocation(edge_ids[9], 0.2),
            range_query(3.0 * _mean_weight(network)),
        ),
        1_000_002: (
            NetworkLocation(edge_ids[14], 0.8),
            aggregate_knn(2, (NetworkLocation(edge_ids[30], 0.5),), "max"),
        ),
    }
    objects = dict(edge_table.all_objects())
    rng = random.Random(12)
    with MonitoringServer(network.copy(), "ima", workers=2) as sharded:
        servers = [single, sharded]
        for server in servers:
            for object_id, location in objects.items():
                server.add_object(object_id, location)
            for query_id, (location, spec) in specs.items():
                server.add_query(query_id, location, spec)
            server.tick()
        for _ in range(3):
            moves = [
                (object_id, NetworkLocation(rng.choice(edge_ids), rng.random()))
                for object_id in rng.sample(sorted(objects), 5)
            ]
            edge_id = rng.choice(edge_ids)
            factor = 0.8 + 0.4 * rng.random()
            for server in servers:
                for object_id, location in moves:
                    server.move_object(object_id, location)
                server.update_edge_weight(
                    edge_id, server.network.edge(edge_id).weight * factor
                )
                server.tick()
            for query_id in specs:
                assert (
                    single.result_of(query_id).neighbors
                    == sharded.result_of(query_id).neighbors
                ), query_id
    single.close()


def test_add_query_rejects_invalid_aggregate_points_atomically():
    """A spec whose extra points reference unknown edges is rejected up
    front, leaving the server unchanged — the id stays usable and tick()
    never sees the bad registration."""
    network = city_network(100, seed=3)
    server = MonitoringServer(
        network, "ima", edge_table=EdgeTable(network, build_spatial_index=False)
    )
    edges = sorted(network.edge_ids())
    bad = aggregate_knn(2, (NetworkLocation(999_999, 0.5),))
    with pytest.raises(EdgeNotFoundError):
        server.add_query(1, NetworkLocation(edges[0], 0.5), k=bad)
    assert 1 not in server.query_ids()
    server.add_query(1, NetworkLocation(edges[0], 0.5), k=2)
    server.tick()
    assert server.result_of(1).query_id == 1


# ----------------------------------------------------------------------
# unified typed errors on result_of (both execution paths)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [None, 2])
def test_result_of_raises_unknown_query_error_uniformly(workers):
    """Never-registered, pending, and removed ids all raise the typed error.

    The sharded path serves results from a merged cache and the in-process
    path from the monitor; both must surface UnknownQueryError (a
    MonitoringError subclass), never a bare KeyError, for every miss mode.
    """
    network = city_network(100, seed=3)
    kwargs = {} if workers is None else {"workers": workers}
    with MonitoringServer(network, "ima", **kwargs) as server:
        edges = sorted(network.edge_ids())
        # 1. never registered
        with pytest.raises(UnknownQueryError):
            server.result_of(424242)
        # 2. added but not yet ticked (installation still pending)
        server.add_query(7, NetworkLocation(edges[0], 0.5), k=2)
        with pytest.raises(UnknownQueryError):
            server.result_of(7)
        server.tick()
        assert server.result_of(7).query_id == 7
        assert server.query_spec_of(7) == knn(2)
        # 3. removed (and the removal processed)
        server.remove_query(7)
        server.tick()
        with pytest.raises(UnknownQueryError):
            server.result_of(7)
        with pytest.raises(UnknownQueryError):
            server.query_spec_of(7)
        # results() misses stay plain dict misses on both paths
        assert 7 not in server.results()
