"""Property and unit tests for the ways importer and synthetic cities.

The Hypothesis suite throws arbitrary node/way soups — self loops,
parallel edges, disconnected pieces, coincident nodes, dangling islands —
at :func:`repro.realism.import_ways_text` and checks the import contract:
the result is always a *connected* network with strictly positive, finite
weights and dense sequential edge ids, and it survives both
``network.copy()`` and the ``SharedCSR`` export/adopt round trip
byte-for-byte.
"""

from __future__ import annotations

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import NetworkError
from repro.network.csr import SharedCSR, attach_shared_csr, csr_snapshot
from repro.realism import (
    SPEED_CLASSES,
    CitySpec,
    import_ways_text,
    parse_ways_text,
    synthetic_city_network,
    synthetic_city_text,
)

# ----------------------------------------------------------------------
# hypothesis: arbitrary node/way soups
# ----------------------------------------------------------------------

_coord = st.floats(
    min_value=-1000.0, max_value=1000.0, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 3))


@st.composite
def _way_soups(draw):
    """Arbitrary ways text: nodes plus ways that may be degenerate."""
    node_ids = draw(
        st.lists(st.integers(0, 200), min_size=2, max_size=20, unique=True)
    )
    lines = ["# repro ways v1"]
    for node_id in node_ids:
        x, y = draw(_coord), draw(_coord)
        lines.append(f"node {node_id} {x!r} {y!r}")
    way_count = draw(st.integers(1, 12))
    for way_id in range(way_count):
        speed_class = draw(st.sampled_from(sorted(SPEED_CLASSES)))
        path = draw(st.lists(st.sampled_from(node_ids), min_size=2, max_size=6))
        lines.append(f"way {way_id} {speed_class} {' '.join(map(str, path))}")
    return "\n".join(lines) + "\n"


@given(text=_way_soups())
@settings(max_examples=60, deadline=None)
def test_import_contract_on_arbitrary_soups(text):
    """Any importable soup yields a connected, positively-weighted network."""
    try:
        result = import_ways_text(text)
    except NetworkError:
        # Legal outcome: every segment was a self loop (or zero ways had
        # usable segments); the importer must refuse rather than return an
        # empty network.
        parsed = parse_ways_text(text)
        assert all(
            u == v for way in parsed.ways for u, v in zip(way.node_ids, way.node_ids[1:])
        )
        return
    network = result.network
    assert network.is_connected()
    assert network.edge_count >= 1
    for edge in network.edges():
        assert edge.weight > 0.0
        assert edge.weight != float("inf")
        assert edge.weight == edge.weight  # not NaN
    # Dense sequential edge ids, each with a speed class.
    assert sorted(network.edge_ids()) == list(range(network.edge_count))
    assert sorted(result.speed_classes) == sorted(network.edge_ids())
    assert set(result.speed_classes.values()) <= set(SPEED_CLASSES)
    # No parallel edges survive: endpoint pairs are unique.
    pairs = {frozenset(e.endpoints()) for e in network.edges()}
    assert len(pairs) == network.edge_count
    # Stats account for everything that went in.
    stats = result.stats
    assert stats.edges_kept == network.edge_count
    assert stats.nodes_kept == network.node_count
    assert (
        stats.segments_parsed
        >= stats.edges_kept + stats.self_loops_dropped + stats.parallel_dropped
    )


@given(text=_way_soups())
@settings(max_examples=40, deadline=None)
def test_import_round_trips_through_copy_and_shared_csr(text):
    """Imported networks survive copy() and SharedCSR export/adopt intact."""
    try:
        result = import_ways_text(text)
    except NetworkError:
        return
    network = result.network

    clone = network.copy()
    assert sorted(clone.edge_ids()) == sorted(network.edge_ids())
    for edge in network.edges():
        twin = clone.edge(edge.edge_id)
        assert twin.endpoints() == edge.endpoints()
        assert twin.weight == edge.weight
        assert twin.base_weight == edge.base_weight

    snapshot = csr_snapshot(network)
    shared = SharedCSR(snapshot)
    try:
        replica = pickle.loads(pickle.dumps(network))
        handle = pickle.loads(pickle.dumps(shared.handle))
        attached = attach_shared_csr(replica, handle, zero_copy=False)
        assert attached.node_ids == snapshot.node_ids
        assert attached.edge_ids == snapshot.edge_ids
        assert list(attached.indptr) == list(snapshot.indptr)
        assert list(attached.adj_node) == list(snapshot.adj_node)
        assert list(attached.adj_weight) == list(snapshot.adj_weight)
        assert list(attached.edge_weight) == list(snapshot.edge_weight)
        attached.close()
    finally:
        shared.unlink()
        shared.close()


# ----------------------------------------------------------------------
# parser errors
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "text, fragment",
    [
        ("node 1 0 0\n", "header"),
        ("# repro ways v1\nnode 1 0\n", "node"),
        ("# repro ways v1\nnode 1 0 0\nnode 1 1 1\n", "duplicate node"),
        ("# repro ways v1\nnode 1 0 0\nway 1 street 1\n", "way"),
        ("# repro ways v1\nnode 1 0 0\nnode 2 1 1\nway 1 warp 1 2\n", "speed class"),
        ("# repro ways v1\nnode 1 0 0\nway 1 street 1 9\n", "undefined node"),
        (
            "# repro ways v1\nnode 1 0 0\nnode 2 1 1\n"
            "way 1 street 1 2\nway 1 side 2 1\n",
            "duplicate way",
        ),
        ("# repro ways v1\nnode 1 0 0\nnode 2 1 1\nroad 1 street 1 2\n", "record"),
        ("# repro ways v1\nnode 1 0 0\nnode 2 1 1\nway 1 street 1 1\n", "no usable"),
    ],
)
def test_parse_errors_are_reported_with_context(text, fragment):
    """Malformed input raises NetworkError naming the offending construct."""
    with pytest.raises(NetworkError) as excinfo:
        import_ways_text(text, source="soup.ways")
    assert fragment.split()[0] in str(excinfo.value)
    assert "soup.ways" in str(excinfo.value)


def test_parallel_dedup_keeps_the_cheapest():
    """Of two parallel ways, the faster class (lower weight) survives."""
    text = (
        "# repro ways v1\n"
        "node 1 0 0\nnode 2 100 0\nnode 3 200 0\n"
        "way 1 side 1 2\n"
        "way 2 motorway 1 2\n"
        "way 3 street 2 3\n"
    )
    result = import_ways_text(text)
    assert result.stats.parallel_dropped == 1
    pair_class = {
        frozenset(result.network.edge(e).endpoints()): c
        for e, c in result.speed_classes.items()
    }
    assert pair_class[frozenset((1, 2))] == "motorway"


# ----------------------------------------------------------------------
# synthetic city generator
# ----------------------------------------------------------------------

def test_synthetic_city_is_deterministic():
    spec = CitySpec(rows=10, cols=8)
    assert synthetic_city_text(spec, seed=5) == synthetic_city_text(spec, seed=5)
    assert synthetic_city_text(spec, seed=5) != synthetic_city_text(spec, seed=6)


def test_synthetic_city_hits_edge_target():
    for target in (500, 5_000):
        result = synthetic_city_network(target, seed=1)
        assert 0.75 * target < result.network.edge_count < 1.25 * target
        assert result.network.is_connected()


def test_synthetic_city_has_realistic_degree_mix():
    """Arterial grids + removals yield dead ends, shape points, crossings."""
    result = synthetic_city_network(2_000, seed=9)
    network = result.network
    degrees = [network.degree(n) for n in network.node_ids()]
    assert min(degrees) == 1          # dead ends from side-street removal
    assert max(degrees) == 4          # full crossings
    assert any(d == 2 for d in degrees)  # shape points along arterials
    classes = set(result.speed_classes.values())
    assert {"motorway", "arterial", "street", "side"} <= classes
    # Generated duplicates exercised the dedup path.
    assert result.stats.parallel_dropped > 0


def test_synthetic_city_rejects_degenerate_specs():
    with pytest.raises(NetworkError):
        synthetic_city_text(CitySpec(rows=1, cols=5), seed=0)
    with pytest.raises(NetworkError):
        CitySpec.for_target_edges(2)
