"""kill -9 fault-injection suite for the durable streaming service.

Each case launches ``python -m repro.service`` as a real subprocess,
SIGKILLs it at a chosen tick (either via the service's in-process
after-log kill hook, or externally before the tick request), restarts it
from its data directory, finishes the workload, and asserts the final
``results()`` are byte-identical to an uninterrupted reference run.

One smoke case always runs; ``FUZZ_FAULTS=1`` (the CI fault leg) widens
the sweep to rotating seeds (``FUZZ_BASE_SEED``, exported from the CI run
id), both kill modes, and a sharded service.
"""

from __future__ import annotations

import os

import pytest

from repro import run_fault_injection
from repro.exceptions import ServiceError
from repro.service.faults import KILL_MODES, pick_kill_tick

#: Rotating base seed, same convention as the differential fuzz suite.
BASE_SEED = int(os.environ.get("FUZZ_BASE_SEED", "20060912"))

#: ``FUZZ_FAULTS=1`` enables the full sweep (the dedicated CI job leg).
FUZZ_FAULTS = os.environ.get("FUZZ_FAULTS", "0") == "1"

_SEED_STRIDE = 99_991


def _seed(offset: int) -> int:
    return (BASE_SEED + offset * _SEED_STRIDE) % 2_000_000_011


def test_kill_after_log_recovers_byte_identically():
    """The always-on smoke case: crash after the WAL append, recover, match."""
    report = run_fault_injection(
        seed=_seed(0), ticks=6, kill_mode="after-log", checkpoint_every=2
    )
    assert report.killed, "the kill hook never fired"
    assert report.ok, report.failure_message()
    # write-ahead semantics: the logged batch survived the crash
    assert report.recovered_timestamp == report.kill_at + 1
    assert report.final_timestamp == report.ticks


def test_kill_before_tick_loses_only_the_pending_batch():
    report = run_fault_injection(
        seed=_seed(1), ticks=5, kill_mode="before-tick", checkpoint_every=2
    )
    assert report.killed
    assert report.ok, report.failure_message()
    # the unlogged pending batch died with the process; the driver resent it
    assert report.recovered_timestamp == report.kill_at


def test_pick_kill_tick_is_deterministic_and_in_range():
    for seed in range(20):
        tick = pick_kill_tick(seed, 8)
        assert 0 <= tick < 8
        assert tick == pick_kill_tick(seed, 8)


def test_invalid_kill_mode_rejected():
    with pytest.raises(ServiceError, match="kill_mode"):
        run_fault_injection(kill_mode="sometimes")


@pytest.mark.skipif(not FUZZ_FAULTS, reason="set FUZZ_FAULTS=1 to run the sweep")
@pytest.mark.parametrize("kill_mode", KILL_MODES)
@pytest.mark.parametrize("offset", range(3))
def test_fault_sweep_rotating_seeds(kill_mode, offset):
    """CI leg: >= 3 rotating seeds per kill mode, random kill points."""
    seed = _seed(10 + offset)
    report = run_fault_injection(
        seed=seed, ticks=6, kill_mode=kill_mode, checkpoint_every=3
    )
    assert report.killed and report.ok, report.failure_message()


@pytest.mark.skipif(not FUZZ_FAULTS, reason="set FUZZ_FAULTS=1 to run the sweep")
def test_fault_sweep_sharded_dial():
    """CI leg: the sharded service on the dial kernel survives kill -9 too."""
    report = run_fault_injection(
        seed=_seed(20),
        ticks=5,
        kill_mode="after-log",
        workers=2,
        kernel="dial",
        checkpoint_every=2,
    )
    assert report.killed and report.ok, report.failure_message()
