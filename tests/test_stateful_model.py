"""Stateful model-based testing of the monitoring servers.

A hypothesis :class:`RuleBasedStateMachine` drives IMA and GMA
:class:`~repro.core.server.MonitoringServer` instances — each over its own
network replica, through the production ``apply_updates`` + ``tick``
pipeline — with randomly interleaved object adds/moves/removes, query
installs/moves/terminations (all three query types: k-NN, fixed-radius
range, aggregate k-NN), edge-weight updates, same-tick remove+add
collapses, and duplicate installs at an existing query's exact spot (which
exercise the :class:`~repro.core.dedup.DedupFrontend`-wrapped server's
group sharing).  After every tick each live query's distance profile on
every server must match the independent brute-force
:class:`~repro.testing.oracle.OracleMonitor`.

Unlike the scenario fuzz suite (which samples from preset stressor
distributions), hypothesis *searches* the update-interleaving space and
shrinks failures to minimal reproducible sequences.  The machine runs once
per kernel (every available registry kernel).
"""

from __future__ import annotations

import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    precondition,
    rule,
    run_state_machine_as_test,
)

from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.dedup import DedupFrontend
from repro.core.queries import QuerySpec
from repro.core.results import results_equal
from repro.core.server import MonitoringServer
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.testing.oracle import OracleMonitor

#: Network size: small enough for the brute-force oracle per tick, large
#: enough for multi-sequence GMA grouping and non-trivial trees.
NETWORK_EDGES = 60
NETWORK_SEED = 1709

from repro.network.kernels import available_kernels

KERNELS = available_kernels()


def _spec_strategy(mean_weight: float) -> st.SearchStrategy:
    """A strategy over all three query kinds, scaled to the network."""
    knn = st.integers(min_value=1, max_value=4).map(QuerySpec.knn)
    range_ = st.floats(
        min_value=0.5, max_value=6.0, allow_nan=False, allow_infinity=False
    ).map(lambda factor: QuerySpec.range(factor * mean_weight))
    return st.one_of(knn, range_, st.just("aggregate"))


class MonitoringModel(RuleBasedStateMachine):
    """Model state: live objects and queries; system: servers + oracle."""

    kernel = "csr"

    def __init__(self) -> None:
        super().__init__()
        base = city_network(NETWORK_EDGES, seed=NETWORK_SEED)
        self.edges = sorted(base.edge_ids())
        self.mean_weight = sum(
            base.edge(edge_id).weight for edge_id in self.edges
        ) / len(self.edges)
        self.oracle_network = base
        self.oracle_table = EdgeTable(base, build_spatial_index=False)
        self.oracle = OracleMonitor(self.oracle_network, self.oracle_table)
        self.servers = {}
        for algorithm in ("ima", "gma"):
            replica = base.copy()
            self.servers[algorithm] = MonitoringServer(
                replica,
                algorithm=algorithm,
                edge_table=EdgeTable(replica, build_spatial_index=False),
                kernel=self.kernel,
            )
        # A dedup-wrapped IMA server rides the identical stream: its
        # logical-id surface must be indistinguishable from a plain server
        # even as duplicate_install grows and remove_query shrinks groups.
        replica = base.copy()
        self.servers["ima-dedup"] = DedupFrontend(
            MonitoringServer(
                replica,
                algorithm="ima",
                edge_table=EdgeTable(replica, build_spatial_index=False),
                kernel=self.kernel,
            )
        )
        self.objects = {}
        self.queries = {}
        self.weights = {
            edge_id: base.edge(edge_id).weight for edge_id in self.edges
        }
        self.batch = UpdateBatch()
        self.next_object_id = 0
        self.next_query_id = 1_000_000

    # ------------------------------------------------------------------
    # strategies over the model state
    # ------------------------------------------------------------------
    def _location(self, draw) -> NetworkLocation:
        edge_id = draw(st.sampled_from(self.edges))
        fraction = draw(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
        )
        return NetworkLocation(edge_id, fraction)

    def _draw_spec(self, draw) -> QuerySpec:
        spec = draw(_spec_strategy(self.mean_weight))
        if spec == "aggregate":
            k = draw(st.integers(min_value=1, max_value=3))
            count = draw(st.integers(min_value=0, max_value=2))
            points = tuple(self._location(draw) for _ in range(count))
            agg = draw(st.sampled_from(("sum", "max")))
            return QuerySpec.aggregate_knn(k, points, agg)
        return spec

    # ------------------------------------------------------------------
    # rules: mutate the pending batch and the model
    # ------------------------------------------------------------------
    @initialize(data=st.data())
    def seed_population(self, data):
        """Start from a small seeded population so early ticks are non-trivial."""
        for _ in range(data.draw(st.integers(min_value=2, max_value=8))):
            self.add_object(data)
        for _ in range(data.draw(st.integers(min_value=1, max_value=3))):
            self.add_query(data)

    @rule(data=st.data())
    def add_object(self, data):
        object_id = self.next_object_id
        self.next_object_id += 1
        location = self._location(data.draw)
        self.objects[object_id] = location
        self.batch.object_updates.append(ObjectUpdate(object_id, None, location))

    @precondition(lambda self: self.objects)
    @rule(data=st.data())
    def move_object(self, data):
        object_id = data.draw(st.sampled_from(sorted(self.objects)))
        location = self._location(data.draw)
        self.batch.object_updates.append(
            ObjectUpdate(object_id, self.objects[object_id], location)
        )
        self.objects[object_id] = location

    @precondition(lambda self: self.objects)
    @rule(data=st.data())
    def remove_object(self, data):
        object_id = data.draw(st.sampled_from(sorted(self.objects)))
        self.batch.object_updates.append(
            ObjectUpdate(object_id, self.objects.pop(object_id), None)
        )

    @rule(data=st.data())
    def flicker_object(self, data):
        """Appear and disappear within the same tick (a net no-op)."""
        object_id = self.next_object_id
        self.next_object_id += 1
        location = self._location(data.draw)
        self.batch.object_updates.append(ObjectUpdate(object_id, None, location))
        self.batch.object_updates.append(ObjectUpdate(object_id, location, None))

    @rule(data=st.data())
    def add_query(self, data):
        query_id = self.next_query_id
        self.next_query_id += 1
        location = self._location(data.draw)
        spec = self._draw_spec(data.draw)
        self.queries[query_id] = (location, spec)
        self.batch.query_updates.append(QueryUpdate(query_id, None, location, spec))

    @precondition(lambda self: self.queries)
    @rule(data=st.data())
    def move_query(self, data):
        query_id = data.draw(st.sampled_from(sorted(self.queries)))
        old_location, spec = self.queries[query_id]
        location = self._location(data.draw)
        self.batch.query_updates.append(
            QueryUpdate(query_id, old_location, location)
        )
        self.queries[query_id] = (location, spec)

    @precondition(lambda self: self.queries)
    @rule(data=st.data())
    def remove_query(self, data):
        query_id = data.draw(st.sampled_from(sorted(self.queries)))
        old_location, _ = self.queries.pop(query_id)
        self.batch.query_updates.append(QueryUpdate(query_id, old_location, None))

    @precondition(lambda self: self.queries)
    @rule(data=st.data(), keep_spec=st.booleans())
    def replace_query(self, data, keep_spec):
        """Same-tick remove+add of one id (the Section 4.5 collapse).

        With ``keep_spec`` the reinstall keeps the query type and
        parameters (collapses to a movement on the incremental path);
        otherwise it may change both (split back into terminate+install).
        """
        query_id = data.draw(st.sampled_from(sorted(self.queries)))
        old_location, old_spec = self.queries[query_id]
        self.batch.query_updates.append(QueryUpdate(query_id, old_location, None))
        location = self._location(data.draw)
        spec = old_spec if keep_spec else self._draw_spec(data.draw)
        self.batch.query_updates.append(QueryUpdate(query_id, None, location, spec))
        self.queries[query_id] = (location, spec)

    @precondition(lambda self: self.queries)
    @rule(data=st.data())
    def duplicate_install(self, data):
        """Install a new tenant at an existing query's exact spot and spec.

        Plain servers see an independent query; the dedup server instead
        joins (or forms) a shared group — the per-tick diff then checks the
        fanned-out result against both the oracle and the plain answers.
        """
        template = data.draw(st.sampled_from(sorted(self.queries)))
        location, spec = self.queries[template]
        query_id = self.next_query_id
        self.next_query_id += 1
        self.queries[query_id] = (location, spec)
        self.batch.query_updates.append(QueryUpdate(query_id, None, location, spec))

    @rule(data=st.data())
    def update_weight(self, data):
        edge_id = data.draw(st.sampled_from(self.edges))
        factor = data.draw(
            st.floats(min_value=0.5, max_value=1.8, allow_nan=False)
        )
        old_weight = self.weights[edge_id]
        new_weight = max(old_weight * factor, 1e-9)
        if new_weight == old_weight:
            return
        self.weights[edge_id] = new_weight
        self.batch.edge_updates.append(
            EdgeWeightUpdate(edge_id, old_weight, new_weight)
        )

    # ------------------------------------------------------------------
    # the checked step
    # ------------------------------------------------------------------
    @rule()
    def tick(self):
        """Apply the pending batch everywhere and diff against the oracle."""
        batch = self.batch
        self.batch = UpdateBatch()
        for server in self.servers.values():
            server.apply_updates(batch)
            server.tick()
        apply_batch(self.oracle_network, self.oracle_table, batch.normalized())
        self.oracle.process_batch(batch)
        for query_id in sorted(self.queries):
            truth = list(self.oracle.result_of(query_id).neighbors)
            for algorithm, server in self.servers.items():
                answer = list(server.result_of(query_id).neighbors)
                assert results_equal(truth, answer), (
                    f"{algorithm}/{self.kernel} q={query_id}: "
                    f"expected {truth} got {answer}"
                )

    def teardown(self):
        """Flush one final tick so trailing updates are also verified."""
        self.tick()


@pytest.mark.parametrize("kernel", KERNELS)
def test_stateful_model_matches_oracle(kernel):
    """IMA/GMA servers track the oracle under arbitrary update interleavings."""
    machine_class = type(
        f"MonitoringModel_{kernel}", (MonitoringModel,), {"kernel": kernel}
    )
    run_state_machine_as_test(
        machine_class,
        settings=settings(
            max_examples=20,
            stateful_step_count=30,
            deadline=None,
            print_blob=True,
        ),
    )
