"""Dial (bucket-queue, batched) kernel: exactness, fallbacks, batch plumbing.

The kernel's contract is byte-identical outcomes with the per-query CSR
heap path, so most tests here are differential: identical neighbors,
radii, expansion trees, parents and work counters on randomized requests
(fresh, resumed with coverage, barrier-bounded, excluded objects), the
oracle-backed scenario presets on both monitors, and unit coverage for the
quantization edge cases — unusable quantization (zero-weight degenerate
networks), bucket overflow (exact heap fallback), and weight storms
rotating the per-epoch support metadata mid-stream.
"""

from __future__ import annotations

import random

import pytest

from repro.core.expansion import compute_influence_map, compute_influence_maps
from repro.core.gma import GmaMonitor
from repro.core.ima import KERNELS, ImaMonitor
from repro.core.influence import InfluenceIndex
from repro.core.ovh import OvhMonitor
from repro.core.search import (
    ExpansionRequest,
    SearchCounters,
    expand_knn,
    expand_knn_batch,
)
from repro.core.server import MonitoringServer
from repro.exceptions import MonitoringError
from repro.network.builders import city_network
from repro.network.csr import csr_snapshot
from repro.network.dial import DialSupport, dial_expand_batch
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.testing import SCENARIO_PRESETS, run_differential_scenario
from repro.testing.harness import DIAL_ALGORITHMS

import repro.network.dial as dial_module


def _populated(edges=400, objects=350, seed=9, network_edges_seed=5):
    network = city_network(edges, seed=network_edges_seed)
    table = EdgeTable(network, build_spatial_index=False)
    rng = random.Random(seed)
    edge_ids = list(network.edge_ids())
    for object_id in range(objects):
        table.insert_object(
            object_id, NetworkLocation(rng.choice(edge_ids), rng.random())
        )
    return network, table, edge_ids, rng


def _outcome_tuple(outcome):
    return (
        outcome.neighbors,
        outcome.radius,
        outcome.state.node_dist,
        outcome.state.parent,
    )


# ---------------------------------------------------------------------------
# engine equivalence
# ---------------------------------------------------------------------------
def test_fresh_searches_byte_identical_with_counters():
    network, table, edge_ids, rng = _populated()
    heap_counters = SearchCounters()
    dial_counters = SearchCounters()
    locations = [
        NetworkLocation(rng.choice(edge_ids), rng.random()) for _ in range(120)
    ]
    requests = [
        ExpansionRequest(k=1 + (i % 9), query_location=location)
        for i, location in enumerate(locations)
    ]
    expected = [
        expand_knn(
            network, table, request.k,
            query_location=request.query_location, counters=heap_counters,
        )
        for request in requests
    ]
    outcomes = expand_knn_batch(network, table, requests, counters=dial_counters)
    for a, b in zip(expected, outcomes):
        assert _outcome_tuple(a) == _outcome_tuple(b)
    assert heap_counters.snapshot() == dial_counters.snapshot()


def test_resume_requests_byte_identical_through_vector_seeding():
    # Sparse objects on a larger network force deep trees, so the
    # pre-verified frontiers exceed VECTOR_MIN_SEED_NODES and the numpy
    # seeding path is what gets compared.
    network, table, edge_ids, rng = _populated(edges=700, objects=90, seed=3)
    vectored = 0
    for trial in range(60):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        k = rng.randint(3, 16)
        base = expand_knn(network, table, k, query_location=location)
        preverified = dict(base.state.node_dist)
        if len(preverified) >= dial_module.VECTOR_MIN_SEED_NODES:
            vectored += 1
        coverage = (
            base.radius * rng.uniform(0.5, 1.0)
            if base.radius != float("inf")
            else None
        )
        kwargs = dict(
            query_location=location,
            preverified=preverified,
            preverified_parent=dict(base.state.parent),
            candidates=list(base.neighbors),
            coverage_radius=coverage,
        )
        expected = expand_knn(network, table, k + 2, **kwargs)
        [outcome] = expand_knn_batch(
            network, table, [ExpansionRequest(k=k + 2, **kwargs)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial
    assert vectored > 10  # the vector path was actually exercised


def test_barrier_and_excluded_requests_byte_identical():
    network, table, edge_ids, rng = _populated()
    nodes = list(network.node_ids())
    for trial in range(40):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        barriers = {}
        for node_id in rng.sample(nodes, 3):
            result = expand_knn(network, table, 5, source_node=node_id)
            barriers[node_id] = list(result.neighbors)
        excluded = set(rng.sample(range(350), 10))
        kwargs = dict(
            query_location=location,
            barrier_candidates=barriers,
            excluded_objects=excluded,
        )
        expected = expand_knn(network, table, 4, **kwargs)
        [outcome] = expand_knn_batch(
            network, table, [ExpansionRequest(k=4, **kwargs)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial


def test_batch_csr_kernel_matches_dial():
    network, table, edge_ids, rng = _populated(objects=120)
    requests = [
        ExpansionRequest(k=4, query_location=NetworkLocation(rng.choice(edge_ids), rng.random()))
        for _ in range(25)
    ]
    via_csr = expand_knn_batch(network, table, list(requests), kernel="csr")
    via_dial = expand_knn_batch(network, table, list(requests), kernel="dial")
    for a, b in zip(via_csr, via_dial):
        assert _outcome_tuple(a) == _outcome_tuple(b)


def test_batch_validates_requests_like_expand_knn():
    network, table, edge_ids, rng = _populated(objects=20)
    from repro.exceptions import InvalidQueryError

    with pytest.raises(InvalidQueryError):
        expand_knn_batch(
            network, table,
            [ExpansionRequest(k=0, query_location=NetworkLocation(edge_ids[0], 0.5))],
        )
    with pytest.raises(InvalidQueryError):
        expand_knn_batch(network, table, [ExpansionRequest(k=2)])


# ---------------------------------------------------------------------------
# quantization edge cases and fallbacks
# ---------------------------------------------------------------------------
def test_unusable_quantization_falls_back_to_heap():
    """Degenerate weights (zero mean, e.g. all-zero-weight edges) skip Dial."""
    network, table, edge_ids, rng = _populated(objects=60)
    csr = csr_snapshot(network)
    support = csr.dial_support()
    support.usable = False  # what a zero/degenerate weight profile produces
    try:
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        expected = expand_knn(network, table, 5, query_location=location)
        [outcome] = dial_expand_batch(
            network, table, [ExpansionRequest(k=5, query_location=location)], csr=csr
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome)
    finally:
        csr._dial_support = None  # drop the doctored support


def test_empty_network_support_is_unusable():
    network = city_network(40, seed=1)
    for edge_id in list(network.edge_ids()):
        network.remove_edge(edge_id)
    support = DialSupport.build(csr_snapshot(network))
    assert not support.usable
    assert support.bucket_width == 0.0


@pytest.mark.parametrize("cap", [-1.0, 2.0])
def test_bucket_overflow_falls_back_to_heap(monkeypatch, cap):
    """Overflow during seeding (cap=-1) and mid-expansion (cap=2) both fall back."""
    network, table, edge_ids, rng = _populated(objects=60)
    csr = csr_snapshot(network)
    monkeypatch.setattr(dial_module, "MAX_BUCKET_INDEX", cap)
    fallbacks = 0
    for trial in range(10):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        expected = expand_knn(network, table, 5, query_location=location)
        [outcome] = dial_expand_batch(
            network, table, [ExpansionRequest(k=5, query_location=location)], csr=csr
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial
        fallbacks = csr.dial_support().heap_fallbacks
    assert fallbacks >= 1


def test_weight_storm_rotates_support_epoch():
    network, table, edge_ids, rng = _populated(objects=40)
    csr = csr_snapshot(network)
    before = csr.dial_support()
    assert csr.dial_support() is before  # cached while weights are stable
    edge_id = edge_ids[0]
    network.set_edge_weight(edge_id, network.edge(edge_id).weight * 3.0)
    after = csr.dial_support()
    assert after is not before
    assert after.epoch == csr.weights_epoch
    # The rebuilt support sees the patched weight in its numpy mirror.
    if after.has_numpy:
        position = csr.index_of_edge(edge_id)
        assert float(after.np_edge_weight[position]) == csr.edge_weight[position]


def test_mid_stream_weight_storms_stay_exact():
    """Per-tick weight storms between batched calls keep outcomes identical."""
    network, table, edge_ids, rng = _populated(objects=120)
    for tick in range(6):
        for edge_id in rng.sample(edge_ids, len(edge_ids) // 3):
            factor = 1.3 if rng.random() < 0.5 else 0.7
            network.set_edge_weight(edge_id, network.edge(edge_id).weight * factor)
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        expected = expand_knn(network, table, 6, query_location=location)
        [outcome] = expand_knn_batch(
            network, table, [ExpansionRequest(k=6, query_location=location)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), tick


# ---------------------------------------------------------------------------
# vectorized influence maps
# ---------------------------------------------------------------------------
def test_vectorized_influence_maps_match_scalar_exactly():
    # Very sparse objects and high k force trees past VECTOR_MIN_NODES.
    network, table, edge_ids, rng = _populated(edges=900, objects=40, seed=3)
    csr = csr_snapshot(network)
    support = csr.dial_support()
    if not support.has_numpy:
        pytest.skip("numpy unavailable; vectorized influence path disabled")
    vectored = 0
    for trial in range(40):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        outcome = expand_knn(network, table, rng.randint(12, 30), query_location=location)
        scalar = compute_influence_map(
            network, outcome.state, outcome.radius, location, csr=csr
        )
        fast = compute_influence_map(
            network, outcome.state, outcome.radius, location, csr=csr, support=support
        )
        if len(outcome.state.node_dist) >= dial_module.VECTOR_MIN_NODES:
            vectored += 1
        assert scalar == fast, trial
    assert vectored > 5  # the numpy path was actually exercised


def test_compute_influence_maps_batch_helper():
    network, table, edge_ids, rng = _populated(objects=80)
    location = NetworkLocation(rng.choice(edge_ids), rng.random())
    outcome = expand_knn(network, table, 4, query_location=location)
    maps = compute_influence_maps(
        network, [("q", outcome.state, outcome.radius, location)]
    )
    assert maps == {
        "q": compute_influence_map(network, outcome.state, outcome.radius, location)
    }


def test_replace_subscribers_matches_sequential_replace():
    rng = random.Random(7)
    bulk, sequential = InfluenceIndex(), InfluenceIndex()
    for _ in range(6):  # several generations so stale-edge removal is hit
        updates = {}
        for subscriber in range(12):
            influences = {}
            for edge_id in rng.sample(range(40), rng.randint(0, 8)):
                influences[edge_id] = ((0.0, rng.uniform(0.5, 5.0)),)
            if rng.random() < 0.2:
                influences[rng.randrange(40)] = ()  # empty spans are dropped
            updates[subscriber] = influences
        bulk.replace_subscribers(updates)
        for subscriber, influences in updates.items():
            sequential.replace_subscriber(subscriber, influences)
        assert sorted(bulk.iter_entries()) == sorted(sequential.iter_entries())
        assert len(bulk) == len(sequential)
    for edge_id in range(40):
        assert bulk.subscribers_on_edge(edge_id) == sequential.subscribers_on_edge(edge_id)
        assert set(bulk.subscribers_on_edge_view(edge_id)) == bulk.subscribers_on_edge(edge_id)


# ---------------------------------------------------------------------------
# monitors and servers on kernel="dial"
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("scenario", sorted(SCENARIO_PRESETS))
def test_dial_monitors_match_oracle_on_all_presets(scenario):
    """IMA/GMA on dial, csr and legacy all agree with the oracle, per preset."""
    report = run_differential_scenario(
        scenario,
        seed=1309,
        algorithms=DIAL_ALGORITHMS + ("IMA-legacy", "GMA-legacy"),
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_dial_server_matches_oracle_through_sharding():
    report = run_differential_scenario(
        "weight-storm", seed=4242, algorithms=(), workers=2, server_kernel="dial"
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


@pytest.mark.parametrize("monitor_cls", [OvhMonitor, ImaMonitor, GmaMonitor])
def test_monitor_kernel_validation(monitor_cls):
    network, table, _, _ = _populated(edges=60, objects=10)
    assert "dial" in KERNELS
    monitor = monitor_cls(network, table, kernel="dial")
    assert monitor.kernel == "dial"
    with pytest.raises(MonitoringError):
        monitor_cls(network, table, kernel="bogus")


def test_server_accepts_dial_kernel():
    network = city_network(80, seed=3)
    server = MonitoringServer(network, algorithm="ima", kernel="dial")
    assert server.monitor.kernel == "dial"
    server.add_object_at(1, 10.0, 10.0)
    server.add_query_at(100, 12.0, 9.0, k=1)
    report = server.tick()
    assert report.changed_queries == {100}
    assert server.result_of(100).neighbors[0][0] == 1
