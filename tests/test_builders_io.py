"""Tests for network generators and the save/load round-trips."""

from __future__ import annotations

import pytest

from repro.exceptions import NetworkError
from repro.network.builders import (
    build_network,
    city_network,
    grid_network,
    linear_network,
    remove_random_edges,
    star_network,
    subdivide_edges,
)
from repro.network.io import (
    load_network,
    load_node_edge_files,
    save_network,
    save_node_edge_files,
)
from repro.sim.datasets import oldenburg_like, san_francisco_like, small_test_network


class TestBuilders:
    def test_build_network_explicit(self):
        network = build_network(
            {0: (0.0, 0.0), 1: (10.0, 0.0)}, [(0, 0, 1)], weights={0: 5.0}
        )
        assert network.edge(0).weight == pytest.approx(5.0)

    def test_grid_dimensions(self):
        network = grid_network(3, 4)
        assert network.node_count == 12
        # Horizontal edges: 3 rows x 3, vertical: 2 x 4.
        assert network.edge_count == 17

    def test_grid_requires_two_rows_and_columns(self):
        with pytest.raises(NetworkError):
            grid_network(1, 5)

    def test_grid_jitter_is_deterministic(self):
        first = grid_network(3, 3, jitter=0.2, seed=5)
        second = grid_network(3, 3, jitter=0.2, seed=5)
        for node in first.nodes():
            assert node.point == second.node(node.node_id).point

    def test_linear_network(self):
        network = linear_network(4)
        assert network.edge_count == 3
        assert network.degree(0) == 1
        assert network.degree(1) == 2

    def test_star_network(self):
        network = star_network(5, branch_length=2)
        assert network.degree(0) == 5
        assert network.edge_count == 10

    def test_remove_random_edges_keeps_connectivity(self):
        network = grid_network(5, 5)
        removed = remove_random_edges(network, 0.2, seed=3)
        assert removed > 0
        assert network.is_connected()

    def test_remove_zero_fraction_is_noop(self):
        network = grid_network(3, 3)
        assert remove_random_edges(network, 0.0) == 0
        assert network.edge_count == 12

    def test_subdivide_edges_creates_degree_two_nodes(self):
        network = grid_network(3, 3)
        subdivided = subdivide_edges(network, segments_per_edge=3)
        assert subdivided.edge_count == network.edge_count * 3
        degree_two = [n for n in subdivided.node_ids() if subdivided.degree(n) == 2]
        # Every original edge contributes 2 interior shape points.
        assert len(degree_two) >= network.edge_count * 2

    def test_subdivide_preserves_total_weight(self):
        network = grid_network(3, 3)
        subdivided = subdivide_edges(network, segments_per_edge=4)
        assert subdivided.total_weight() == pytest.approx(network.total_weight())

    def test_city_network_is_connected_and_sized(self):
        network = city_network(200, seed=1)
        assert network.is_connected()
        assert 120 <= network.edge_count <= 320

    def test_city_network_deterministic(self):
        assert city_network(100, seed=9).edge_count == city_network(100, seed=9).edge_count


class TestDatasets:
    def test_san_francisco_like_scales_with_target(self):
        small = san_francisco_like(150, seed=2)
        large = san_francisco_like(600, seed=2)
        assert large.edge_count > small.edge_count
        assert small.is_connected() and large.is_connected()

    def test_oldenburg_like_rough_size(self):
        network = oldenburg_like(seed=3)
        assert network.is_connected()
        # Within 40 % of the published edge count is close enough for the
        # statistics that matter (density, degree distribution).
        assert 0.6 * 7035 <= network.edge_count <= 1.4 * 7035

    def test_small_test_network(self):
        network = small_test_network(seed=1)
        assert network.edge_count > 50


class TestIo:
    def test_rnet_round_trip(self, tmp_path, small_city):
        small_city.set_edge_weight(next(small_city.edge_ids()), 123.0)
        path = tmp_path / "net.rnet"
        save_network(small_city, path)
        loaded = load_network(path)
        assert loaded.node_count == small_city.node_count
        assert loaded.edge_count == small_city.edge_count
        for edge in small_city.edges():
            other = loaded.edge(edge.edge_id)
            assert other.weight == pytest.approx(edge.weight)
            assert other.base_weight == pytest.approx(edge.base_weight)
            assert (other.start, other.end) == (edge.start, edge.end)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.rnet"
        path.write_text("not a network\n")
        with pytest.raises(NetworkError):
            load_network(path)

    def test_node_edge_round_trip(self, tmp_path, line_network):
        node_path = tmp_path / "net.cnode"
        edge_path = tmp_path / "net.cedge"
        save_node_edge_files(line_network, node_path, edge_path)
        loaded = load_node_edge_files(node_path, edge_path)
        assert loaded.node_count == line_network.node_count
        assert loaded.edge_count == line_network.edge_count
        assert loaded.edge(0).weight == pytest.approx(line_network.edge(0).weight)

    def test_node_edge_loader_rejects_malformed(self, tmp_path):
        node_path = tmp_path / "net.cnode"
        edge_path = tmp_path / "net.cedge"
        node_path.write_text("0 0.0\n")  # missing y coordinate
        edge_path.write_text("")
        with pytest.raises(NetworkError):
            load_node_edge_files(node_path, edge_path)

    def test_node_edge_loader_ignores_comments(self, tmp_path):
        node_path = tmp_path / "net.cnode"
        edge_path = tmp_path / "net.cedge"
        node_path.write_text("# comment\n0 0.0 0.0\n1 10.0 0.0\n")
        edge_path.write_text("# comment\n0 0 1 10.0\n")
        loaded = load_node_edge_files(node_path, edge_path)
        assert loaded.edge_count == 1
