"""Tests for the RNG helpers and argument validation utilities."""

from __future__ import annotations

import random

import pytest

from repro.utils.rng import (
    bounded_gauss,
    derive_rng,
    make_rng,
    sample_fraction,
    shuffled,
    weighted_choice,
)
from repro.utils.validation import (
    almost_equal,
    require_fraction,
    require_in_range,
    require_non_negative,
    require_non_negative_int,
    require_positive,
    require_positive_int,
)


class TestRng:
    def test_make_rng_from_none_is_deterministic(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_make_rng_from_int_seed(self):
        assert make_rng(7).random() == random.Random(7).random()

    def test_make_rng_passes_through_generator(self):
        rng = random.Random(1)
        assert make_rng(rng) is rng

    def test_derive_rng_is_reproducible(self):
        first = derive_rng(make_rng(3), "objects").random()
        second = derive_rng(make_rng(3), "objects").random()
        assert first == second

    def test_derive_rng_differs_per_label(self):
        base = make_rng(3)
        a = derive_rng(base, "a")
        base = make_rng(3)
        b = derive_rng(base, "b")
        assert a.random() != b.random()

    def test_sample_fraction_counts(self):
        rng = make_rng(1)
        items = list(range(100))
        assert len(sample_fraction(rng, items, 0.1)) == 10
        assert sample_fraction(rng, items, 0.0) == []
        assert len(sample_fraction(rng, items, 1.0)) == 100

    def test_sample_fraction_invalid_fraction(self):
        with pytest.raises(ValueError):
            sample_fraction(make_rng(1), [1, 2, 3], 1.5)

    def test_bounded_gauss_respects_bounds(self):
        rng = make_rng(2)
        for _ in range(100):
            value = bounded_gauss(rng, 0.0, 10.0, -1.0, 1.0)
            assert -1.0 <= value <= 1.0

    def test_bounded_gauss_invalid_bounds(self):
        with pytest.raises(ValueError):
            bounded_gauss(make_rng(1), 0, 1, 5, 2)

    def test_weighted_choice_prefers_heavy_items(self):
        rng = make_rng(5)
        counts = {"a": 0, "b": 0}
        for _ in range(2000):
            counts[weighted_choice(rng, ["a", "b"], [9.0, 1.0])] += 1
        assert counts["a"] > counts["b"] * 4

    def test_weighted_choice_validates_inputs(self):
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), [], [])
        with pytest.raises(ValueError):
            weighted_choice(make_rng(1), ["a"], [0.0])

    def test_shuffled_returns_permutation(self):
        items = list(range(20))
        result = shuffled(make_rng(3), items)
        assert sorted(result) == items
        assert result != items  # overwhelmingly likely with 20 items


class TestValidation:
    def test_require_positive_accepts_and_rejects(self):
        assert require_positive(3, "x") == 3.0
        with pytest.raises(ValueError):
            require_positive(0, "x")
        with pytest.raises(ValueError):
            require_positive(float("nan"), "x")
        with pytest.raises(TypeError):
            require_positive("3", "x")

    def test_require_non_negative(self):
        assert require_non_negative(0, "x") == 0.0
        with pytest.raises(ValueError):
            require_non_negative(-1, "x")

    def test_require_fraction(self):
        assert require_fraction(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            require_fraction(1.5, "x")

    def test_require_positive_int(self):
        assert require_positive_int(2, "x") == 2
        with pytest.raises(ValueError):
            require_positive_int(0, "x")
        with pytest.raises(TypeError):
            require_positive_int(2.0, "x")
        with pytest.raises(TypeError):
            require_positive_int(True, "x")

    def test_require_non_negative_int(self):
        assert require_non_negative_int(0, "x") == 0
        with pytest.raises(ValueError):
            require_non_negative_int(-1, "x")

    def test_require_in_range(self):
        assert require_in_range(5, "x", low=0, high=10) == 5.0
        with pytest.raises(ValueError):
            require_in_range(11, "x", low=0, high=10)
        with pytest.raises(ValueError):
            require_in_range(-1, "x", low=0)

    def test_almost_equal_uses_relative_tolerance(self):
        assert almost_equal(1000.0, 1000.0000001)
        assert not almost_equal(1.0, 1.1)
        assert almost_equal(0.0, 0.0)
