"""Tests of GMA-specific internal structures (sequences, active nodes, grouping)."""

from __future__ import annotations

import pytest

from repro.core.events import UpdateBatch, apply_batch
from repro.core.gma import GmaMonitor
from repro.network.builders import star_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation


@pytest.fixture
def star_setup():
    """A 4-branch star, branches of 3 edges; objects spread over the branches.

    The hub (node 0) has degree 4; branch ends have degree 1; interior branch
    nodes have degree 2, so each branch is one sequence and the hub is the
    only possible active node.
    """
    network = star_network(4, branch_length=3, spacing=100.0)
    table = EdgeTable(network)
    # One object per branch at the far end, plus one near the hub on branch 0.
    table.insert_object(0, NetworkLocation(2, 0.5))   # branch 0, far
    table.insert_object(1, NetworkLocation(5, 0.5))   # branch 1, far
    table.insert_object(2, NetworkLocation(8, 0.5))   # branch 2, far
    table.insert_object(3, NetworkLocation(11, 0.5))  # branch 3, far
    table.insert_object(4, NetworkLocation(0, 0.2))   # branch 0, near hub
    return network, table


class TestGroupingAndActiveNodes:
    def test_hub_becomes_active_for_query_in_branch(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(1, 0.5), 2)
        assert monitor.active_nodes() == {0}
        assert monitor.queries_of_node(0) == {100}

    def test_terminal_endpoints_never_become_active(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(2, 0.9), 1)
        # The branch's other endpoint is a terminal (degree 1) node.
        assert all(network.degree(node) >= 3 for node in monitor.active_nodes())

    def test_active_node_k_is_max_over_grouped_queries(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(1, 0.5), 1)
        monitor.register_query(101, NetworkLocation(0, 0.5), 3)
        node_result = monitor.active_node_monitor.result_of(0)
        assert len(node_result.neighbors) == 3

    def test_node_deactivated_when_last_query_leaves(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(1, 0.5), 2)
        monitor.unregister_query(100)
        assert monitor.active_nodes() == set()
        assert monitor.active_node_monitor.query_count == 0

    def test_query_moving_to_new_sequence_regroups(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(1, 0.5), 1)
        batch = UpdateBatch(timestamp=1)
        batch.add_query_move(100, NetworkLocation(1, 0.5), NetworkLocation(4, 0.5))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        # Still exactly one active node (the hub), still grouping the query.
        assert monitor.queries_of_node(0) == {100}
        # And the result reflects the new branch.
        assert monitor.result_of(100).object_ids == (1,)

    def test_sequence_table_exposed(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        assert len(monitor.sequence_table) == 4

    def test_memory_footprint_includes_active_node_state(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        empty_footprint = monitor.memory_footprint_bytes()
        monitor.register_query(100, NetworkLocation(1, 0.5), 2)
        assert monitor.memory_footprint_bytes() > empty_footprint


class TestSharedExecutionCorrectness:
    def test_result_uses_active_node_neighbors_across_hub(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        # Query in branch 0 near the hub; its 3-NN set must include objects
        # from other branches, found through the hub's monitored set.
        result = monitor.register_query(100, NetworkLocation(0, 0.5), 3)
        assert result.object_ids[0] == 4  # the object on its own branch
        assert set(result.object_ids).issubset({0, 1, 2, 3, 4})
        assert len(result.object_ids) == 3

    def test_active_node_change_propagates_to_query(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        monitor.register_query(100, NetworkLocation(0, 0.9), 2)
        before = monitor.result_of(100)
        # An object in another branch jumps right next to the hub, so it must
        # enter the query's 2-NN set even though it never touches the query's
        # own sequence... it enters through the hub's k-NN set.
        batch = UpdateBatch(timestamp=1)
        batch.add_object_move(3, NetworkLocation(11, 0.5), NetworkLocation(3, 0.05))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        after = monitor.result_of(100)
        assert after.neighbors != before.neighbors
        assert 3 in after.object_ids

    def test_queries_in_same_sequence_share_one_active_node(self, star_setup):
        network, table = star_setup
        monitor = GmaMonitor(network, table)
        for query_id in range(100, 110):
            monitor.register_query(query_id, NetworkLocation(1, 0.05 * (query_id - 99)), 2)
        assert monitor.active_nodes() == {0}
        assert monitor.queries_of_node(0) == set(range(100, 110))
