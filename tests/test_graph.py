"""Tests for the road-network graph model."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    InvalidLocationError,
    InvalidWeightError,
    NodeNotFoundError,
)
from repro.network.graph import NetworkLocation, RoadNetwork


@pytest.fixture
def triangle() -> RoadNetwork:
    """Three nodes connected in a triangle with explicit weights."""
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    network.add_node(1, 100.0, 0.0)
    network.add_node(2, 0.0, 100.0)
    network.add_edge(0, 0, 1, 100.0)
    network.add_edge(1, 1, 2, 150.0)
    network.add_edge(2, 2, 0, 100.0)
    return network


class TestNodesAndEdges:
    def test_add_node_and_lookup(self):
        network = RoadNetwork()
        node = network.add_node(5, 1.0, 2.0)
        assert network.node(5) is node
        assert node.x == 1.0 and node.y == 2.0

    def test_duplicate_node_raises(self):
        network = RoadNetwork()
        network.add_node(1, 0, 0)
        with pytest.raises(DuplicateNodeError):
            network.add_node(1, 1, 1)

    def test_missing_node_raises(self):
        with pytest.raises(NodeNotFoundError):
            RoadNetwork().node(9)

    def test_add_edge_requires_existing_nodes(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        with pytest.raises(NodeNotFoundError):
            network.add_edge(0, 0, 1)

    def test_duplicate_edge_raises(self, triangle):
        with pytest.raises(DuplicateEdgeError):
            triangle.add_edge(0, 0, 1)

    def test_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.edge(99)

    def test_self_loop_rejected(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        with pytest.raises(InvalidLocationError):
            network.add_edge(0, 0, 0)

    def test_default_weight_is_euclidean_length(self, triangle):
        assert triangle.edge(0).weight == pytest.approx(100.0)

    def test_explicit_weight_overrides_length(self, triangle):
        assert triangle.edge(1).weight == pytest.approx(150.0)

    def test_invalid_weight_rejected(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 1, 0)
        with pytest.raises(InvalidWeightError):
            network.add_edge(0, 0, 1, -5.0)
        with pytest.raises(InvalidWeightError):
            network.add_edge(0, 0, 1, float("inf"))

    def test_other_endpoint(self, triangle):
        edge = triangle.edge(0)
        assert edge.other_endpoint(0) == 1
        assert edge.other_endpoint(1) == 0
        with pytest.raises(InvalidLocationError):
            edge.other_endpoint(2)

    def test_counts(self, triangle):
        assert triangle.node_count == 3
        assert triangle.edge_count == 3

    def test_edge_between(self, triangle):
        assert triangle.edge_between(0, 1) == 0
        assert triangle.edge_between(1, 0) == 0
        assert triangle.edge_between(0, 99) is None

    def test_remove_edge(self, triangle):
        triangle.remove_edge(0)
        assert not triangle.has_edge(0)
        assert triangle.edge_between(0, 1) is None
        assert triangle.degree(0) == 1

    def test_remove_missing_edge_raises(self, triangle):
        with pytest.raises(EdgeNotFoundError):
            triangle.remove_edge(55)


class TestAdjacency:
    def test_incident_edges(self, triangle):
        assert set(triangle.incident_edges(0)) == {0, 2}

    def test_degree(self, triangle):
        assert triangle.degree(1) == 2

    def test_neighbors_triples(self, triangle):
        neighbors = triangle.neighbors(0)
        assert ({(edge_id, node) for edge_id, node, _ in neighbors}) == {(0, 1), (2, 2)}

    def test_oneway_edge_only_traversable_forwards(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 10, 0)
        network.add_edge(0, 0, 1, 10.0, oneway=True)
        assert [n for _, n, _ in network.neighbors(0)] == [1]
        assert network.neighbors(1) == []

    def test_intersection_nodes_excludes_degree_two(self):
        network = RoadNetwork()
        for node_id in range(4):
            network.add_node(node_id, node_id * 10.0, 0.0)
        network.add_edge(0, 0, 1)
        network.add_edge(1, 1, 2)
        network.add_edge(2, 2, 3)
        # Nodes 1 and 2 have degree 2; 0 and 3 are terminals.
        assert set(network.intersection_nodes()) == {0, 3}


class TestWeights:
    def test_set_edge_weight_returns_previous(self, triangle):
        previous = triangle.set_edge_weight(0, 80.0)
        assert previous == pytest.approx(100.0)
        assert triangle.edge(0).weight == pytest.approx(80.0)

    def test_set_edge_weight_bumps_version(self, triangle):
        version = triangle.weight_version
        triangle.set_edge_weight(0, 80.0)
        assert triangle.weight_version == version + 1

    def test_set_invalid_weight_raises(self, triangle):
        with pytest.raises(InvalidWeightError):
            triangle.set_edge_weight(0, 0.0)

    def test_scale_edge_weight(self, triangle):
        triangle.scale_edge_weight(0, 1.1)
        assert triangle.edge(0).weight == pytest.approx(110.0)

    def test_reset_weights_restores_base(self, triangle):
        triangle.set_edge_weight(0, 42.0)
        triangle.reset_weights()
        assert triangle.edge(0).weight == pytest.approx(100.0)

    def test_total_and_average_weight(self, triangle):
        assert triangle.total_weight() == pytest.approx(350.0)
        assert triangle.average_edge_weight() == pytest.approx(350.0 / 3)


class TestLocations:
    def test_location_validation(self, triangle):
        triangle.validate_location(NetworkLocation(0, 0.5))
        with pytest.raises(EdgeNotFoundError):
            triangle.validate_location(NetworkLocation(9, 0.5))

    def test_invalid_fraction_raises(self):
        with pytest.raises(InvalidLocationError):
            NetworkLocation(0, 1.5)

    def test_offsets(self):
        location = NetworkLocation(0, 0.25)
        assert location.offset(100.0) == pytest.approx(25.0)
        assert location.reversed_offset(100.0) == pytest.approx(75.0)

    def test_location_point_interpolates(self, triangle):
        point = triangle.location_point(NetworkLocation(0, 0.5))
        assert point.x == pytest.approx(50.0)
        assert point.y == pytest.approx(0.0)

    def test_location_at_node(self, triangle):
        location = triangle.location_at_node(1)
        edge = triangle.edge(location.edge_id)
        assert 1 in edge.endpoints()
        assert location.fraction in (0.0, 1.0)

    def test_edge_segment(self, triangle):
        segment = triangle.edge_segment(0)
        assert segment.length == pytest.approx(100.0)

    def test_bounding_box(self, triangle):
        box = triangle.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0.0, 0.0, 100.0, 100.0)


class TestConnectivityAndCopy:
    def test_triangle_is_connected(self, triangle):
        assert triangle.is_connected()
        assert len(triangle.connected_components()) == 1

    def test_disconnected_components_detected(self):
        network = RoadNetwork()
        for node_id in range(4):
            network.add_node(node_id, node_id * 1.0, 0.0)
        network.add_edge(0, 0, 1)
        network.add_edge(1, 2, 3)
        assert not network.is_connected()
        assert len(network.connected_components()) == 2

    def test_copy_is_deep_for_weights(self, triangle):
        clone = triangle.copy()
        triangle.set_edge_weight(0, 55.0)
        assert clone.edge(0).weight == pytest.approx(100.0)
        assert clone.node_count == triangle.node_count
        assert clone.edge_count == triangle.edge_count
