"""Tests for the interval algebra and the influencing-interval computations."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.intervals import (
    Interval,
    IntervalSet,
    influence_spans,
    influencing_intervals,
    influencing_intervals_from_point,
    merge_spans,
    normalize_intervals,
    point_distance_via_endpoints,
    point_in_spans,
    point_spans,
)

INF = float("inf")


class TestInterval:
    def test_length(self):
        assert Interval(2.0, 5.0).length == 3.0

    def test_degenerate_interval_has_zero_length(self):
        assert Interval(4.0, 4.0).length == 0.0

    def test_invalid_bounds_raise(self):
        with pytest.raises(ValueError):
            Interval(5.0, 2.0)

    def test_contains_inside_and_boundaries(self):
        interval = Interval(1.0, 3.0)
        assert interval.contains(2.0)
        assert interval.contains(1.0)
        assert interval.contains(3.0)
        assert not interval.contains(3.5)

    def test_overlaps_touching_intervals(self):
        assert Interval(0.0, 1.0).overlaps(Interval(1.0, 2.0))

    def test_overlaps_disjoint_intervals(self):
        assert not Interval(0.0, 1.0).overlaps(Interval(2.0, 3.0))

    def test_merge_produces_hull(self):
        assert Interval(0.0, 2.0).merge(Interval(1.0, 5.0)) == Interval(0.0, 5.0)

    def test_clamp_inside(self):
        assert Interval(1.0, 4.0).clamp(2.0, 3.0) == Interval(2.0, 3.0)

    def test_clamp_disjoint_returns_none(self):
        assert Interval(1.0, 2.0).clamp(5.0, 6.0) is None


class TestIntervalSet:
    def test_normalizes_overlapping_members(self):
        interval_set = IntervalSet([Interval(0, 2), Interval(1, 3)])
        assert interval_set.intervals == (Interval(0, 3),)

    def test_keeps_disjoint_members(self):
        interval_set = IntervalSet([Interval(0, 1), Interval(2, 3)])
        assert len(interval_set) == 2

    def test_contains_checks_all_members(self):
        interval_set = IntervalSet([Interval(0, 1), Interval(2, 3)])
        assert interval_set.contains(0.5)
        assert interval_set.contains(2.5)
        assert not interval_set.contains(1.5)

    def test_total_length_sums_members(self):
        interval_set = IntervalSet([Interval(0, 1), Interval(2, 4)])
        assert interval_set.total_length() == pytest.approx(3.0)

    def test_covers_edge(self):
        assert IntervalSet([Interval(0, 10)]).covers_edge(10.0)
        assert not IntervalSet([Interval(0, 5)]).covers_edge(10.0)

    def test_union_merges(self):
        left = IntervalSet([Interval(0, 1)])
        right = IntervalSet([Interval(0.5, 2)])
        assert left.union(right).intervals == (Interval(0, 2),)

    def test_empty_set_is_falsy(self):
        assert not IntervalSet()

    def test_normalize_intervals_sorts(self):
        merged = normalize_intervals([Interval(5, 6), Interval(0, 1)])
        assert merged == [Interval(0, 1), Interval(5, 6)]


class TestInfluencingIntervals:
    def test_whole_edge_influenced_when_both_ends_close(self):
        result = influencing_intervals(10.0, 0.0, 5.0, 100.0)
        assert result.covers_edge(10.0)

    def test_partial_interval_from_start(self):
        result = influencing_intervals(10.0, 2.0, INF, 6.0)
        assert result.intervals == (Interval(0.0, 4.0),)

    def test_partial_interval_from_end(self):
        result = influencing_intervals(10.0, INF, 2.0, 6.0)
        assert result.intervals == (Interval(6.0, 10.0),)

    def test_two_disjoint_intervals(self):
        # Both endpoints reachable at distance 8 with radius 10: each side
        # reaches 2 units into the 10-unit edge (Figure 3(a) of the paper).
        result = influencing_intervals(10.0, 8.0, 8.0, 10.0)
        assert result.intervals == (Interval(0.0, 2.0), Interval(8.0, 10.0))

    def test_meeting_intervals_merge(self):
        result = influencing_intervals(10.0, 3.0, 3.0, 8.0)
        assert result.covers_edge(10.0)

    def test_no_influence_when_both_ends_far(self):
        assert not influencing_intervals(10.0, 50.0, 60.0, 5.0)

    def test_infinite_radius_covers_reachable_edge(self):
        assert influencing_intervals(10.0, 3.0, INF, INF).covers_edge(10.0)

    def test_infinite_radius_unreachable_edge_is_empty(self):
        assert not influencing_intervals(10.0, INF, INF, INF)

    def test_invalid_weight_raises(self):
        with pytest.raises(ValueError):
            influencing_intervals(0.0, 1.0, 1.0, 5.0)

    def test_from_point_centred_interval(self):
        result = influencing_intervals_from_point(10.0, 5.0, 2.0)
        assert result.intervals == (Interval(3.0, 7.0),)

    def test_from_point_clamps_to_edge(self):
        result = influencing_intervals_from_point(10.0, 1.0, 5.0)
        assert result.intervals == (Interval(0.0, 6.0),)

    def test_from_point_invalid_offset_raises(self):
        with pytest.raises(ValueError):
            influencing_intervals_from_point(10.0, 12.0, 1.0)


class TestSpans:
    def test_influence_spans_matches_interval_set(self):
        spans = influence_spans(10.0, 8.0, 8.0, 10.0)
        assert spans == ((0.0, 2.0), (8.0, 10.0))

    def test_influence_spans_merges_meeting_pieces(self):
        assert influence_spans(10.0, 3.0, 3.0, 8.0) == ((0.0, 10.0),)

    def test_influence_spans_empty(self):
        assert influence_spans(10.0, 50.0, 60.0, 5.0) == ()

    def test_point_spans_basic(self):
        assert point_spans(10.0, 5.0, 2.0) == ((3.0, 7.0),)

    def test_point_in_spans(self):
        spans = ((0.0, 2.0), (8.0, 10.0))
        assert point_in_spans(spans, 1.0)
        assert point_in_spans(spans, 9.0)
        assert not point_in_spans(spans, 5.0)

    def test_merge_spans_unions(self):
        assert merge_spans(((0.0, 2.0),), ((1.0, 5.0), (7.0, 8.0))) == (
            (0.0, 5.0),
            (7.0, 8.0),
        )

    def test_point_distance_via_endpoints_min_formula(self):
        assert point_distance_via_endpoints(10.0, 3.0, 5.0, 20.0) == pytest.approx(8.0)
        assert point_distance_via_endpoints(10.0, 3.0, 20.0, 5.0) == pytest.approx(12.0)

    def test_point_distance_unreachable(self):
        assert point_distance_via_endpoints(10.0, 3.0, INF, INF) == INF


@settings(max_examples=80, deadline=None)
@given(
    weight=st.floats(0.1, 500.0),
    dist_start=st.one_of(st.floats(0, 1000), st.just(INF)),
    dist_end=st.one_of(st.floats(0, 1000), st.just(INF)),
    radius=st.floats(0, 1500),
)
def test_property_influence_interval_matches_pointwise_distance(
    weight, dist_start, dist_end, radius
):
    """A point is inside the influencing interval iff its distance <= radius."""
    intervals = influencing_intervals(weight, dist_start, dist_end, radius)
    spans = influence_spans(weight, dist_start, dist_end, radius)
    for fraction in (0.0, 0.1, 0.33, 0.5, 0.77, 0.99, 1.0):
        offset = fraction * weight
        distance = point_distance_via_endpoints(weight, offset, dist_start, dist_end)
        inside = distance <= radius + 1e-6
        # Allow the boundary to go either way within floating-point tolerance.
        # The skip band must strictly cover the `inside` tolerance above:
        # with both at 1e-6, a distance one ulp above radius + 1e-6 counts
        # as inside yet escapes the band (hypothesis found exactly that).
        if abs(distance - radius) > 2e-6:
            assert intervals.contains(offset) == inside
            assert point_in_spans(spans, offset, 1e-9) == inside


@settings(max_examples=60, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0, 100), st.floats(0, 100)).map(
            lambda pair: Interval(min(pair), max(pair))
        ),
        max_size=10,
    )
)
def test_property_interval_set_is_normalised(intervals):
    """Members of a normalised set are sorted and pairwise disjoint."""
    interval_set = IntervalSet(intervals)
    members = interval_set.intervals
    for first, second in zip(members, members[1:]):
        assert first.high < second.low
    total = interval_set.total_length()
    assert total <= sum(interval.length for interval in intervals) + 1e-9
