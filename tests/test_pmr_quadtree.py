"""Tests for the PMR quadtree spatial index over network edges."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import SpatialIndexError
from repro.spatial.geometry import Point, Rect, Segment
from repro.spatial.pmr_quadtree import PMRQuadtree

BOUNDS = Rect(0.0, 0.0, 100.0, 100.0)


def _horizontal(y: float, x0: float = 0.0, x1: float = 100.0) -> Segment:
    return Segment(Point(x0, y), Point(x1, y))


class TestConstruction:
    def test_invalid_split_threshold_raises(self):
        with pytest.raises(SpatialIndexError):
            PMRQuadtree(BOUNDS, split_threshold=0)

    def test_invalid_max_depth_raises(self):
        with pytest.raises(SpatialIndexError):
            PMRQuadtree(BOUNDS, max_depth=0)

    def test_insert_and_len(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        assert len(tree) == 1
        assert 1 in tree

    def test_duplicate_insert_raises(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        with pytest.raises(SpatialIndexError):
            tree.insert(1, _horizontal(20))

    def test_insert_outside_bounds_raises(self):
        tree = PMRQuadtree(BOUNDS)
        with pytest.raises(SpatialIndexError):
            tree.insert(1, Segment(Point(200, 200), Point(300, 300)))

    def test_bulk_load(self):
        tree = PMRQuadtree(BOUNDS)
        tree.bulk_load((i, _horizontal(float(i))) for i in range(1, 20))
        assert len(tree) == 19

    def test_split_happens_beyond_threshold(self):
        tree = PMRQuadtree(BOUNDS, split_threshold=2)
        for i in range(6):
            tree.insert(i, _horizontal(5.0 + i, 1.0, 9.0))
        assert tree.depth() >= 1
        assert tree.leaf_count() > 1

    def test_segment_of_returns_inserted_segment(self):
        tree = PMRQuadtree(BOUNDS)
        segment = _horizontal(42.0)
        tree.insert(7, segment)
        assert tree.segment_of(7) == segment

    def test_segment_of_missing_raises(self):
        with pytest.raises(SpatialIndexError):
            PMRQuadtree(BOUNDS).segment_of(404)


class TestQueries:
    def test_find_edge_exact_hit(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        tree.insert(2, _horizontal(50))
        assert tree.find_edge(Point(30, 10)) == 1
        assert tree.find_edge(Point(30, 50)) == 2

    def test_find_edge_outside_tolerance_returns_none(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        assert tree.find_edge(Point(30, 40)) is None

    def test_nearest_edge_on_empty_index_raises(self):
        with pytest.raises(SpatialIndexError):
            PMRQuadtree(BOUNDS).nearest_edge(Point(1, 1))

    def test_nearest_edge_returns_closest(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        tree.insert(2, _horizontal(80))
        edge_id, distance = tree.nearest_edge(Point(50, 30))
        assert edge_id == 1
        assert distance == pytest.approx(20.0)

    def test_edges_in_rect(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        tree.insert(2, _horizontal(80))
        found = tree.edges_in_rect(Rect(0, 0, 100, 40))
        assert found == {1}

    def test_remove_edge(self):
        tree = PMRQuadtree(BOUNDS)
        tree.insert(1, _horizontal(10))
        tree.remove(1)
        assert len(tree) == 0
        assert tree.find_edge(Point(30, 10)) is None

    def test_remove_missing_raises(self):
        with pytest.raises(SpatialIndexError):
            PMRQuadtree(BOUNDS).remove(3)

    def test_statistics_reports_counts(self):
        tree = PMRQuadtree(BOUNDS, split_threshold=2)
        for i in range(10):
            tree.insert(i, _horizontal(float(i * 7 + 1)))
        stats = tree.statistics()
        assert stats["edges"] == 10
        assert stats["leaves"] >= 1
        assert stats["entries"] >= 10


class TestAgainstBruteForce:
    def test_nearest_edge_matches_linear_scan(self):
        rng = random.Random(3)
        tree = PMRQuadtree(BOUNDS, split_threshold=4)
        segments = {}
        for edge_id in range(60):
            a = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            b = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            segment = Segment(a, b)
            segments[edge_id] = segment
            tree.insert(edge_id, segment)
        for _ in range(50):
            probe = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            found_id, found_distance = tree.nearest_edge(probe)
            best = min(segments.values(), key=lambda s: s.distance_to_point(probe))
            assert found_distance == pytest.approx(best.distance_to_point(probe), abs=1e-9)
            assert segments[found_id].distance_to_point(probe) == pytest.approx(
                found_distance, abs=1e-9
            )

    def test_edges_in_rect_matches_linear_scan(self):
        rng = random.Random(8)
        tree = PMRQuadtree(BOUNDS, split_threshold=3)
        segments = {}
        for edge_id in range(40):
            a = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            b = Point(rng.uniform(0, 100), rng.uniform(0, 100))
            segments[edge_id] = Segment(a, b)
            tree.insert(edge_id, segments[edge_id])
        for _ in range(20):
            x0, x1 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            y0, y1 = sorted((rng.uniform(0, 100), rng.uniform(0, 100)))
            rect = Rect(x0, y0, x1, y1)
            expected = {
                edge_id
                for edge_id, segment in segments.items()
                if segment.intersects_rect(rect)
            }
            assert tree.edges_in_rect(rect) == expected


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(0, 100), st.floats(0, 100), st.floats(0, 100), st.floats(0, 100)
        ),
        min_size=1,
        max_size=40,
    ),
    st.tuples(st.floats(0, 100), st.floats(0, 100)),
)
def test_property_nearest_edge_is_truly_nearest(segment_coords, probe_coords):
    """The reported nearest edge is never farther than any other edge."""
    tree = PMRQuadtree(BOUNDS, split_threshold=3)
    segments = {}
    for edge_id, (ax, ay, bx, by) in enumerate(segment_coords):
        segment = Segment(Point(ax, ay), Point(bx, by))
        segments[edge_id] = segment
        tree.insert(edge_id, segment)
    probe = Point(*probe_coords)
    _, distance = tree.nearest_edge(probe)
    best = min(segment.distance_to_point(probe) for segment in segments.values())
    assert distance == pytest.approx(best, abs=1e-6)
