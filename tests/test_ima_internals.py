"""Tests of IMA-specific internal structures (expansion trees, influence lists)."""

from __future__ import annotations

import pytest

from repro.core.events import UpdateBatch, apply_batch
from repro.core.ima import ImaMonitor
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation


@pytest.fixture
def ima_on_line(line_network):
    table = EdgeTable(line_network)
    table.insert_object(0, NetworkLocation(0, 0.5))   # x = 50
    table.insert_object(1, NetworkLocation(2, 0.25))  # x = 225
    table.insert_object(2, NetworkLocation(3, 0.9))   # x = 390
    monitor = ImaMonitor(line_network, table)
    return line_network, table, monitor


class TestExpansionTreeContents:
    def test_tree_holds_nodes_within_radius(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)  # x=100, radius 125
        state = monitor.expansion_state_of(100)
        # Nodes 0 (d=100), 1 (d=0), 2 (d=100) are within 125; node 3 (d=200) not.
        assert set(state.node_dist) == {0, 1, 2}
        assert state.node_dist[1] == pytest.approx(0.0)
        assert state.node_dist[0] == pytest.approx(100.0)
        assert state.node_dist[2] == pytest.approx(100.0)

    def test_influence_lists_cover_affecting_edges(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        influence = monitor.influence_index
        # Radius 125 from x=100 reaches x in [0, 225]: edges 0, 1 fully, 2 partially.
        assert influence.edges_of_subscriber(100) == {0, 1, 2}
        # On edge 2 only the first 25 units are influencing.
        assert influence.contains_point(100, 2, 10.0)
        assert not influence.contains_point(100, 2, 60.0)

    def test_influence_removed_on_unregister(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        monitor.unregister_query(100)
        assert not monitor.influence_index.has_subscriber(100)

    def test_radius_infinite_when_fewer_objects_than_k(self, ima_on_line):
        network, table, monitor = ima_on_line
        result = monitor.register_query(100, NetworkLocation(1, 0.0), 10)
        assert result.radius == float("inf")
        # With an infinite radius the tree spans every reachable node.
        assert set(monitor.expansion_state_of(100).node_dist) == set(network.node_ids())


class TestIncrementalBehaviour:
    def test_fast_path_shrinks_radius_without_search(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        searches_before = monitor.counters.searches
        # An object appears right next to the query: surplus case, no search.
        batch = UpdateBatch(timestamp=1)
        batch.object_updates.append(
            __import__("repro.core.events", fromlist=["ObjectUpdate"]).ObjectUpdate(
                9, None, NetworkLocation(1, 0.05)
            )
        )
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        assert monitor.result_of(100).object_ids == (9,)
        assert monitor.counters.searches == searches_before

    def test_deficit_triggers_resume_not_full_recompute(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        nodes_before = monitor.counters.nodes_expanded
        # The only close object leaves: IMA must search again, but it should
        # re-use the tree (expanding only new nodes beyond the old radius).
        batch = UpdateBatch(timestamp=1)
        batch.add_object_move(0, NetworkLocation(0, 0.5), NetworkLocation(3, 0.99))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        assert monitor.result_of(100).object_ids == (1,)
        # The resumed expansion settles at most the nodes that were not yet
        # verified (3 and 4 on this line), not the whole network again.
        assert monitor.counters.nodes_expanded - nodes_before <= 3

    def test_query_move_within_tree_reuses_subtree(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        batch = UpdateBatch(timestamp=1)
        # Move slightly towards node 2 along the same edge (stays in the tree).
        batch.add_query_move(100, NetworkLocation(1, 0.0), NetworkLocation(1, 0.3))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        # New query position x = 130: object 0 (x=50) at 80, object 1 (x=225)
        # at 95; both re-usable from the old tree.
        assert result.object_ids == (0, 1)
        assert dict(result.neighbors)[0] == pytest.approx(80.0)
        assert dict(result.neighbors)[1] == pytest.approx(95.0)

    def test_query_move_outside_tree_recomputes(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 1)
        batch = UpdateBatch(timestamp=1)
        batch.add_query_move(100, NetworkLocation(1, 0.0), NetworkLocation(3, 0.95))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        assert result.object_ids == (2,)
        assert result.radius == pytest.approx(5.0)

    def test_edge_decrease_shifts_subtree_distances(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        batch = UpdateBatch(timestamp=1)
        batch.add_edge_change(2, network.edge(2).weight, 40.0)
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        # Object 1 on edge 2 at fraction 0.25: distance 100 + 10 = 110.
        assert dict(result.neighbors)[1] == pytest.approx(110.0)
        state = monitor.expansion_state_of(100)
        assert state.node_dist[2] == pytest.approx(100.0)

    def test_edge_increase_prunes_and_reexpands(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        batch = UpdateBatch(timestamp=1)
        batch.add_edge_change(0, network.edge(0).weight, 500.0)
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        # The query sits at node 1, an endpoint of the updated edge 0; object 0
        # (at fraction 0.5 of edge 0) is now 250 away but still beats object 2
        # at 290, so the member set is unchanged while the distance grows.
        assert result.object_ids == (1, 0)
        assert dict(result.neighbors)[0] == pytest.approx(250.0)
        assert dict(result.neighbors)[1] == pytest.approx(125.0)

    def test_multiple_update_types_in_one_timestamp(self, ima_on_line):
        network, table, monitor = ima_on_line
        monitor.register_query(100, NetworkLocation(1, 0.0), 2)
        batch = UpdateBatch(timestamp=1)
        batch.add_edge_change(2, network.edge(2).weight, 50.0)
        batch.add_object_move(0, NetworkLocation(0, 0.5), NetworkLocation(2, 0.5))
        batch.add_query_move(100, NetworkLocation(1, 0.0), NetworkLocation(1, 0.2))
        apply_batch(network, table, batch)
        monitor.process_batch(batch)
        result = monitor.result_of(100)
        # New query position x=120; edge 2 now weighs 50 (so spans x=200..250
        # in travel cost terms 200 + 50); object 0 moved onto edge 2 fraction
        # 0.5 -> travel distance = 80 (to node 2) + 25 = 105; object 1 on edge
        # 2 fraction 0.25 -> 80 + 12.5 = 92.5.
        assert result.object_ids == (1, 0)
        assert dict(result.neighbors)[1] == pytest.approx(92.5)
        assert dict(result.neighbors)[0] == pytest.approx(105.0)
