"""Tests of the monitoring server's batched ingestion path.

Covers :meth:`MonitoringServer.apply_updates`, the bulk coordinate methods
(:meth:`add_objects_at` / :meth:`move_objects_at` with vectorized quadtree
snapping), the id-misuse regressions (``UnknownObjectError`` on the batch
path), and the equivalence of a server driven through the batch API with
one driven through the per-entity methods.
"""

from __future__ import annotations

import random

import pytest

from repro.core.events import EdgeWeightUpdate, ObjectUpdate, QueryUpdate, UpdateBatch
from repro.core.server import MonitoringServer
from repro.exceptions import (
    DuplicateObjectError,
    DuplicateQueryError,
    UnknownObjectError,
    UnknownQueryError,
)
from repro.experiments.config import SMOKE_DEFAULTS
from repro.network.builders import city_network
from repro.network.graph import NetworkLocation
from repro.sim.simulator import Simulator
from repro.spatial.geometry import Point


@pytest.fixture
def city_server():
    network = city_network(150, seed=11)
    return MonitoringServer(network, algorithm="ima")


class TestBulkCoordinateIngestion:
    def test_add_objects_at_matches_single_path(self, city_server):
        box = city_server.network.bounding_box()
        rng = random.Random(3)
        items = [
            (i, rng.uniform(box.min_x, box.max_x), rng.uniform(box.min_y, box.max_y))
            for i in range(50)
        ]
        snapped = city_server.add_objects_at(items)
        assert set(snapped) == {i for i, _, _ in items}
        index = city_server.edge_table.spatial_index
        for object_id, x, y in items:
            bulk_loc = snapped[object_id]
            single_loc = city_server.snap(x, y)
            point = Point(x, y)
            bulk_dist = index.segment_of(bulk_loc.edge_id).distance_to_point(point)
            single_dist = index.segment_of(single_loc.edge_id).distance_to_point(point)
            # Equidistant ties may pick a different edge; never a worse one.
            assert bulk_dist == pytest.approx(single_dist, abs=1e-9)

    def test_add_objects_at_duplicate_rejected_atomically(self, city_server):
        city_server.add_objects_at([(1, 10.0, 10.0)])
        with pytest.raises(DuplicateObjectError):
            city_server.add_objects_at([(2, 0.0, 0.0), (1, 5.0, 5.0)])
        # The whole batch was rejected: id 2 was never buffered.
        assert city_server.object_ids() == {1}

    def test_add_objects_at_duplicate_within_batch(self, city_server):
        with pytest.raises(DuplicateObjectError):
            city_server.add_objects_at([(7, 0.0, 0.0), (7, 5.0, 5.0)])
        assert city_server.object_ids() == set()

    def test_move_objects_at_updates_positions(self, city_server):
        city_server.add_objects_at([(1, 10.0, 10.0), (2, 90.0, 40.0)])
        city_server.tick()
        snapped = city_server.move_objects_at([(1, 55.0, 60.0), (2, 12.0, 88.0)])
        city_server.tick()
        for object_id, location in snapped.items():
            assert city_server.edge_table.location_of(object_id) == location

    def test_move_objects_at_unknown_id_raises(self, city_server):
        """Regression: never-added ids must raise on the batch path too."""
        city_server.add_objects_at([(1, 10.0, 10.0)])
        with pytest.raises(UnknownObjectError):
            city_server.move_objects_at([(1, 20.0, 20.0), (424242, 30.0, 30.0)])
        # Atomic: the valid movement was not buffered either.
        city_server.tick()
        assert city_server.edge_table.has_object(1)

    def test_move_objects_at_empty_server_raises(self, city_server):
        with pytest.raises(UnknownObjectError):
            city_server.move_objects_at([(5, 1.0, 1.0)])


class TestApplyUpdates:
    def _location(self, server, rng):
        edge_ids = list(server.network.edge_ids())
        return NetworkLocation(rng.choice(edge_ids), rng.random())

    def test_batch_equivalent_to_per_entity_calls(self):
        rng = random.Random(17)
        network = city_network(150, seed=11)
        batch_server = MonitoringServer(network, algorithm="ima")
        single_server = MonitoringServer(network.copy(), algorithm="ima")

        object_locations = {
            object_id: self._location(batch_server, rng) for object_id in range(30)
        }
        query_location = self._location(batch_server, rng)

        batch = UpdateBatch()
        for object_id, location in object_locations.items():
            batch.object_updates.append(ObjectUpdate(object_id, None, location))
        batch.query_updates.append(QueryUpdate(100, None, query_location, k=3))
        batch_server.apply_updates(batch)
        batch_server.tick()

        for object_id, location in object_locations.items():
            single_server.add_object(object_id, location)
        single_server.add_query(100, query_location, k=3)
        single_server.tick()

        assert (
            batch_server.result_of(100).neighbors
            == single_server.result_of(100).neighbors
        )

    def test_apply_updates_rederives_old_state(self, city_server):
        rng = random.Random(23)
        location = self._location(city_server, rng)
        city_server.add_object(1, location)
        city_server.tick()
        new_location = self._location(city_server, rng)
        # The caller's old_location is deliberately wrong; the server must
        # use its own view instead of trusting it.
        bogus_old = self._location(city_server, rng)
        batch = UpdateBatch()
        batch.object_updates.append(ObjectUpdate(1, bogus_old, new_location))
        city_server.apply_updates(batch)
        city_server.tick()
        assert city_server.edge_table.location_of(1) == new_location

    def test_apply_updates_validates_before_buffering(self, city_server):
        rng = random.Random(29)
        good = ObjectUpdate(1, None, self._location(city_server, rng))
        unknown_move = ObjectUpdate(
            999, self._location(city_server, rng), self._location(city_server, rng)
        )
        batch = UpdateBatch(object_updates=[good, unknown_move])
        with pytest.raises(UnknownObjectError):
            city_server.apply_updates(batch)
        city_server.tick()
        assert not city_server.edge_table.has_object(1)

    def test_apply_updates_insert_then_delete_same_batch(self, city_server):
        """Regression: a net no-op (appear + disappear in one timestamp) must
        normalize away instead of crashing the tick."""
        rng = random.Random(43)
        location = self._location(city_server, rng)
        survivor = self._location(city_server, rng)
        batch = UpdateBatch(
            object_updates=[
                ObjectUpdate(1, None, location),
                ObjectUpdate(1, location, None),
                ObjectUpdate(2, None, survivor),
            ]
        )
        city_server.apply_updates(batch)
        city_server.tick()
        assert not city_server.edge_table.has_object(1)
        assert city_server.edge_table.location_of(2) == survivor

    def test_add_then_remove_object_same_tick(self, city_server):
        """The per-entity path hits the same normalize rule (seed crashed)."""
        city_server.add_object_at(1, 10.0, 10.0)
        city_server.remove_object(1)
        report = city_server.tick()
        assert report.timestamp == 0
        assert not city_server.edge_table.has_object(1)

    def test_query_install_then_terminate_same_tick(self, city_server):
        rng = random.Random(47)
        location = self._location(city_server, rng)
        city_server.add_query(100, location, k=2)
        city_server.remove_query(100)
        city_server.tick()
        assert city_server.query_ids() == set()

    def test_apply_updates_insert_then_move_same_batch(self, city_server):
        rng = random.Random(31)
        first = self._location(city_server, rng)
        second = self._location(city_server, rng)
        batch = UpdateBatch(
            object_updates=[
                ObjectUpdate(1, None, first),
                ObjectUpdate(1, first, second),
            ]
        )
        city_server.apply_updates(batch)
        city_server.tick()
        assert city_server.edge_table.location_of(1) == second

    def test_apply_updates_duplicate_query_rejected(self, city_server):
        rng = random.Random(37)
        location = self._location(city_server, rng)
        city_server.add_query(100, location, k=2)
        batch = UpdateBatch(
            query_updates=[QueryUpdate(100, None, location, k=2)]
        )
        with pytest.raises(DuplicateQueryError):
            city_server.apply_updates(batch)

    def test_apply_updates_unknown_query_rejected(self, city_server):
        rng = random.Random(41)
        batch = UpdateBatch(
            query_updates=[
                QueryUpdate(100, self._location(city_server, rng), None)
            ]
        )
        with pytest.raises(UnknownQueryError):
            city_server.apply_updates(batch)

    def test_apply_updates_edge_weights(self, city_server):
        edge_id = next(city_server.network.edge_ids())
        batch = UpdateBatch(
            edge_updates=[EdgeWeightUpdate(edge_id, 1.0, 77.0)]
        )
        city_server.apply_updates(batch)
        city_server.tick()
        assert city_server.network.edge(edge_id).weight == 77.0


class TestSimulatorServerWiring:
    def test_drive_server_matches_manual_monitor(self):
        config = SMOKE_DEFAULTS.with_overrides(timestamps=3)
        sim = Simulator(config)
        server = sim.make_server("ima")
        reports = sim.drive_server(server)
        assert len(reports) == 3

        from repro.core.events import apply_batch

        reference = Simulator(config)
        monitor = reference.build_monitors(["IMA"])["IMA"]
        for query_id, location in reference.query_locations().items():
            monitor.register_query(query_id, location, config.k)
        for timestamp in range(3):
            batch = reference.generate_batch(timestamp)
            apply_batch(reference.network, reference.edge_table, batch.normalized())
            monitor.process_batch(batch)

        for query_id in reference.query_locations():
            assert (
                server.result_of(query_id).neighbors
                == monitor.result_of(query_id).neighbors
            )
