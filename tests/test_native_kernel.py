"""The compiled ``kernel="native"`` settle loop.

Byte-identity against the heap and dial engines (results *and* counters),
the transparent pure-python fallback when the compiled backend is disabled
or the graph's ids do not fit the C columns, the optional C-API outcome
helper, and the full-stack integration (monitors, servers, sharded
workers) behind the registry name.
"""

from __future__ import annotations

import random

import pytest

import repro.network.native as native_module
from repro.core.ima import ImaMonitor
from repro.core.search import (
    ExpansionRequest,
    SearchCounters,
    expand_knn,
    expand_knn_batch,
)
from repro.core.server import MonitoringServer
from repro.network.builders import city_network
from repro.network.dial import dial_expand_batch
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.network.kernels import KERNEL_DIAL, KERNEL_NATIVE, available_kernels
from repro.network.native import (
    DISABLE_ENV,
    NativeSupport,
    load_native_library,
    load_outcome_helper,
    native_available,
    native_expand_batch,
    reset_native_library_cache,
)
from repro.testing.scenarios import ScenarioEngine, resolve_scenario

pytestmark = pytest.mark.skipif(
    not native_available(), reason="compiled native backend unavailable"
)


def _populated(edges=400, objects=350, seed=9, network_seed=5):
    network = city_network(edges, seed=network_seed)
    table = EdgeTable(network, build_spatial_index=False)
    rng = random.Random(seed)
    edge_ids = list(network.edge_ids())
    for object_id in range(objects):
        table.insert_object(
            object_id, NetworkLocation(rng.choice(edge_ids), rng.random())
        )
    return network, table, edge_ids, rng


def _outcome_tuple(outcome):
    return (
        outcome.neighbors,
        outcome.radius,
        outcome.state.node_dist,
        outcome.state.parent,
    )


# ---------------------------------------------------------------------------
# engine equivalence
# ---------------------------------------------------------------------------
def test_fresh_searches_byte_identical_with_counters():
    network, table, edge_ids, rng = _populated()
    heap_counters = SearchCounters()
    native_counters = SearchCounters()
    requests = [
        ExpansionRequest(
            k=1 + (i % 9),
            query_location=NetworkLocation(rng.choice(edge_ids), rng.random()),
        )
        for i in range(120)
    ]
    expected = [
        expand_knn(
            network, table, request.k,
            query_location=request.query_location, counters=heap_counters,
        )
        for request in requests
    ]
    outcomes = native_expand_batch(
        network, table, requests, counters=native_counters
    )
    for a, b in zip(expected, outcomes):
        assert _outcome_tuple(a) == _outcome_tuple(b)
    assert heap_counters.snapshot() == native_counters.snapshot()


def test_resume_requests_byte_identical():
    network, table, edge_ids, rng = _populated(edges=700, objects=90, seed=3)
    for trial in range(40):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        k = rng.randint(3, 16)
        base = expand_knn(network, table, k, query_location=location)
        coverage = (
            base.radius * rng.uniform(0.5, 1.0)
            if base.radius != float("inf")
            else None
        )
        kwargs = dict(
            query_location=location,
            preverified=dict(base.state.node_dist),
            preverified_parent=dict(base.state.parent),
            candidates=list(base.neighbors),
            coverage_radius=coverage,
        )
        expected = expand_knn(network, table, k + 2, **kwargs)
        [outcome] = native_expand_batch(
            network, table, [ExpansionRequest(k=k + 2, **kwargs)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial


def test_barrier_excluded_and_fixed_radius_byte_identical():
    network, table, edge_ids, rng = _populated()
    nodes = list(network.node_ids())
    for trial in range(25):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        barriers = {}
        for node_id in rng.sample(nodes, 3):
            result = expand_knn(network, table, 5, source_node=node_id)
            barriers[node_id] = list(result.neighbors)
        kwargs = dict(
            query_location=location,
            barrier_candidates=barriers,
            excluded_objects=set(rng.sample(range(350), 10)),
        )
        expected = expand_knn(network, table, 4, **kwargs)
        [outcome] = native_expand_batch(
            network, table, [ExpansionRequest(k=4, **kwargs)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial
        fixed = NetworkLocation(rng.choice(edge_ids), rng.random())
        expected = expand_knn(
            network, table, 3, query_location=fixed, fixed_radius=25.0
        )
        [outcome] = native_expand_batch(
            network,
            table,
            [ExpansionRequest(k=3, query_location=fixed, fixed_radius=25.0)],
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), trial


def test_weight_storms_and_source_nodes_byte_identical():
    network, table, edge_ids, rng = _populated()
    nodes = list(network.node_ids())
    for tick in range(6):
        for edge_id in rng.sample(edge_ids, len(edge_ids) // 3):
            factor = 1.3 if rng.random() < 0.5 else 0.7
            network.set_edge_weight(edge_id, network.edge(edge_id).weight * factor)
        node = rng.choice(nodes)
        expected = expand_knn(network, table, 6, source_node=node)
        [outcome] = native_expand_batch(
            network, table, [ExpansionRequest(k=6, source_node=node)]
        )
        assert _outcome_tuple(expected) == _outcome_tuple(outcome), tick


def test_matches_dial_including_counters():
    network, table, edge_ids, rng = _populated()
    dial_counters, native_counters = SearchCounters(), SearchCounters()
    requests = [
        ExpansionRequest(
            k=5, query_location=NetworkLocation(rng.choice(edge_ids), rng.random())
        )
        for _ in range(50)
    ]
    dial_outcomes = dial_expand_batch(
        network, table, list(requests), counters=dial_counters
    )
    native_outcomes = native_expand_batch(
        network, table, list(requests), counters=native_counters
    )
    for a, b in zip(dial_outcomes, native_outcomes):
        assert _outcome_tuple(a) == _outcome_tuple(b)
    assert dial_counters.snapshot() == native_counters.snapshot()


def test_expand_knn_batch_dispatches_native_kernel():
    network, table, edge_ids, rng = _populated(edges=200, objects=80)
    requests = [
        ExpansionRequest(
            k=4, query_location=NetworkLocation(rng.choice(edge_ids), rng.random())
        )
        for _ in range(10)
    ]
    via_dispatch = expand_knn_batch(
        network, table, list(requests), kernel=KERNEL_NATIVE
    )
    direct = native_expand_batch(network, table, list(requests))
    for a, b in zip(via_dispatch, direct):
        assert _outcome_tuple(a) == _outcome_tuple(b)


# ---------------------------------------------------------------------------
# fallback paths
# ---------------------------------------------------------------------------
def test_disable_env_falls_back_to_pure_python(monkeypatch):
    network, table, edge_ids, rng = _populated(edges=200, objects=80)
    requests = [
        ExpansionRequest(
            k=4, query_location=NetworkLocation(rng.choice(edge_ids), rng.random())
        )
        for _ in range(10)
    ]
    compiled = native_expand_batch(network, table, list(requests))
    monkeypatch.setenv(DISABLE_ENV, "1")
    reset_native_library_cache()
    try:
        assert load_native_library() is None
        assert not native_available()
        assert KERNEL_NATIVE not in available_kernels()
        # kernel="native" still serves requests — through the dial engine.
        fallback = expand_knn_batch(
            network, table, list(requests), kernel=KERNEL_NATIVE
        )
        for a, b in zip(compiled, fallback):
            assert _outcome_tuple(a) == _outcome_tuple(b)
    finally:
        monkeypatch.delenv(DISABLE_ENV)
        reset_native_library_cache()
    assert native_available()


def test_missing_outcome_helper_assembles_in_python(monkeypatch):
    network, table, edge_ids, rng = _populated(edges=200, objects=80)
    requests = [
        ExpansionRequest(
            k=4, query_location=NetworkLocation(rng.choice(edge_ids), rng.random())
        )
        for _ in range(10)
    ]
    with_helper = native_expand_batch(network, table, list(requests))
    monkeypatch.setattr(native_module, "load_outcome_helper", lambda: None)
    without_helper = native_expand_batch(network, table, list(requests))
    for a, b in zip(with_helper, without_helper):
        assert _outcome_tuple(a) == _outcome_tuple(b)


def test_oversized_object_ids_fall_back():
    # Ids that overflow int64 cannot ride the C columns; the kernel must
    # detect that at column-build time and serve the batch via dial.
    network, table, edge_ids, rng = _populated(edges=200, objects=40)
    table.insert_object(2**70, NetworkLocation(rng.choice(edge_ids), rng.random()))
    location = NetworkLocation(rng.choice(edge_ids), rng.random())
    expected = expand_knn(network, table, 45, query_location=location)
    [outcome] = native_expand_batch(
        network, table, [ExpansionRequest(k=45, query_location=location)]
    )
    assert _outcome_tuple(expected) == _outcome_tuple(outcome)


def test_native_support_usable_on_ordinary_graphs():
    from repro.network.csr import csr_snapshot

    support = NativeSupport(csr_snapshot(city_network(100, seed=2)))
    assert support.usable


def test_outcome_helper_loads_here():
    # The CI image ships CPython headers; if this starts failing the
    # kernel still works, it just lost its fastest assembly path.
    assert load_outcome_helper() is not None


def test_edge_table_version_tracks_object_churn():
    network, table, edge_ids, rng = _populated(edges=120, objects=5)
    version = table.version
    table.insert_object(99, NetworkLocation(rng.choice(edge_ids), 0.5))
    assert table.version > version
    version = table.version
    table.remove_object(99)
    assert table.version > version


# ---------------------------------------------------------------------------
# full-stack integration
# ---------------------------------------------------------------------------
def _scenario_stream(seed=7, edges=120, ticks=6):
    network = city_network(edges, seed=seed)
    spec = resolve_scenario("uniform-drift")
    engine = ScenarioEngine(network, spec, seed=seed)
    return network, engine, list(engine.batches(ticks))


def test_ima_monitor_on_native_matches_dial():
    from repro.core.events import apply_batch

    network, engine, batches = _scenario_stream()
    tables = {}
    monitors = {}
    for kernel in (KERNEL_DIAL, KERNEL_NATIVE):
        replica = network.copy()
        table = EdgeTable(replica, build_spatial_index=False)
        for object_id, location in engine.initial_objects().items():
            table.insert_object(object_id, location)
        monitor = ImaMonitor(replica, table, kernel=kernel)
        for query_id, (location, k) in engine.initial_queries().items():
            monitor.register_query(query_id, location, k)
        tables[kernel] = (replica, table)
        monitors[kernel] = monitor
    live = set(engine.initial_queries())
    for batch in batches:
        for kernel, monitor in monitors.items():
            replica, table = tables[kernel]
            apply_batch(replica, table, batch.normalized())
            monitor.process_batch(batch)
        for update in batch.query_updates:
            if update.is_installation:
                live.add(update.query_id)
            elif update.is_termination:
                live.discard(update.query_id)
        for query_id in sorted(live):
            dial_result = monitors[KERNEL_DIAL].result_of(query_id)
            native_result = monitors[KERNEL_NATIVE].result_of(query_id)
            assert list(dial_result.neighbors) == list(native_result.neighbors)
            assert dial_result.radius == native_result.radius


def test_sharded_server_runs_native_kernel():
    from repro.core.sharding import ShardedMonitoringServer

    network, engine, batches = _scenario_stream(seed=13, ticks=4)

    def build(cls, **kwargs):
        replica = network.copy()
        table = EdgeTable(replica, build_spatial_index=False)
        for object_id, location in engine.initial_objects().items():
            table.insert_object(object_id, location)
        server = cls(replica, algorithm="ima", edge_table=table, **kwargs)
        for query_id, (location, k) in engine.initial_queries().items():
            server.add_query(query_id, location, k)
        return server

    single = build(MonitoringServer, kernel=KERNEL_NATIVE)
    sharded = build(ShardedMonitoringServer, kernel=KERNEL_NATIVE, workers=2)
    try:
        for batch in batches:
            single.apply_updates(batch)
            sharded.apply_updates(batch)
            single.tick()
            sharded.tick()
        for query_id, result in single.results().items():
            other = sharded.result_of(query_id)
            assert list(result.neighbors) == list(other.neighbors)
    finally:
        single.close()
        sharded.close()
