"""Shared fixtures for the test suite.

The fixtures provide small, deterministic networks and populated edge tables
that the unit and integration tests reuse.  Everything is seeded so failures
are reproducible.
"""

from __future__ import annotations

import random

import pytest

from repro.network.builders import city_network, grid_network, linear_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


@pytest.fixture
def line_network() -> RoadNetwork:
    """A 5-node path graph: 0 -100- 1 -100- 2 -100- 3 -100- 4."""
    return linear_network(5, spacing=100.0)


@pytest.fixture
def small_grid() -> RoadNetwork:
    """A 4x4 grid with unit-free 100-length edges, no perturbation."""
    return grid_network(4, 4, spacing=100.0)


@pytest.fixture
def small_city() -> RoadNetwork:
    """A ~200-edge synthetic city with degree-2 shape points (seeded)."""
    return city_network(200, seed=7)


@pytest.fixture
def populated_city(small_city):
    """The small city plus 80 objects placed deterministically on its edges.

    Returns ``(network, edge_table, object_locations)``.
    """
    rng = random.Random(99)
    edge_table = EdgeTable(small_city)
    edge_ids = list(small_city.edge_ids())
    locations = {}
    for object_id in range(80):
        location = NetworkLocation(rng.choice(edge_ids), rng.random())
        edge_table.insert_object(object_id, location)
        locations[object_id] = location
    return small_city, edge_table, locations


@pytest.fixture
def populated_line(line_network):
    """The path graph with three objects at known positions.

    Objects: 0 at edge 0 fraction 0.5 (x=50), 1 at edge 2 fraction 0.25
    (x=225), 2 at edge 3 fraction 0.9 (x=390).
    Returns ``(network, edge_table)``.
    """
    edge_table = EdgeTable(line_network)
    edge_table.insert_object(0, NetworkLocation(0, 0.5))
    edge_table.insert_object(1, NetworkLocation(2, 0.25))
    edge_table.insert_object(2, NetworkLocation(3, 0.9))
    return line_network, edge_table


def random_location(network: RoadNetwork, rng: random.Random) -> NetworkLocation:
    """Helper used by tests that need arbitrary network positions."""
    edge_ids = list(network.edge_ids())
    return NetworkLocation(rng.choice(edge_ids), rng.random())
