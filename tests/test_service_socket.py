"""End-to-end tests of the streaming socket service.

Runs a real :class:`StreamingService` (asyncio, in a background thread)
over a durable server, drives it with :class:`ServiceClient` over TCP,
and checks the watch-mode delta pushes, the error surface, on-demand
checkpoints, and that the captured event log replays clean through the
differential harness and the ``repro.service.replay`` CLI.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro import (
    DurableMonitoringServer,
    MonitoringServer,
    ServiceClient,
    StreamingService,
    city_network,
    run_differential_log,
)
from repro.exceptions import ServiceError
from repro.service import replay
from repro.service.faults import build_scenario_server


@pytest.fixture
def service(tmp_path):
    """A live service on a fresh durable scenario server; yields (client, dir)."""
    data_dir = tmp_path / "svc"
    server = build_scenario_server("uniform-drift", 3, 100, "IMA", "csr", None)
    durable = DurableMonitoringServer(server, data_dir, checkpoint_every=4)
    svc = StreamingService(durable, port=0)
    address_file = tmp_path / "address"
    thread = threading.Thread(
        target=lambda: asyncio.run(svc.run(address_file=address_file)),
        daemon=True,
    )
    thread.start()
    deadline = time.monotonic() + 30.0
    while not address_file.exists():
        assert time.monotonic() < deadline, "service never published its address"
        time.sleep(0.02)
    host, port = address_file.read_text().split()
    client = ServiceClient(host, int(port))
    try:
        yield client, data_dir
    finally:
        try:
            client.stop()
        except (ServiceError, OSError, EOFError):
            pass  # a test may have stopped the service already
        client.close()
        thread.join(timeout=30.0)
        assert not thread.is_alive()


def test_streaming_session_end_to_end(service):
    client, data_dir = service
    assert client.ping() == "pong"
    assert client.timestamp() == 0

    # coordinate ingestion goes through the server's snap index
    client.add_object(9001, 50.0, 50.0)
    client.add_query(9100, 55.0, 55.0, 2)
    assert client.subscribe() is True

    report = client.tick()
    assert report.timestamp == 0
    assert client.timestamp() == 1

    # the tick's changes were pushed watch-mode style to the subscriber
    delta = client.poll_delta(timeout=10.0)
    assert delta is not None
    timestamp, changes = delta
    assert timestamp == 0
    assert changes  # the fresh queries all changed
    assert changes.keys() <= set(client.results().keys()) | {
        qid for qid, result in changes.items() if result is None
    }

    # results/result agree between bulk and single fetch
    results = client.results()
    assert 9100 in results
    assert client.result(9100) == results[9100]

    # errors come back typed without killing the connection
    with pytest.raises(ServiceError, match="UnknownObjectError"):
        client.move_object(424242, 10.0, 10.0)
    assert client.ping() == "pong"  # connection survived the error

    # a removed query is announced as terminated (None) in the next delta
    client.remove_query(9100)
    client.tick()
    delta = client.poll_delta(timeout=10.0)
    assert delta is not None
    _, changes = delta
    assert changes.get(9100, "absent") is None

    assert client.unsubscribe() is True
    assert isinstance(client.checkpoint(), int)


def test_captured_log_replays_clean(service):
    client, data_dir = service
    client.add_object(9001, 40.0, 60.0)
    for _ in range(4):
        client.tick()
    client.checkpoint()
    client.stop()

    report = run_differential_log(data_dir)
    assert report.ok, report.mismatches[:5]
    assert report.timestamps == 4

    assert replay.main([str(data_dir), "--max-ticks", "2"]) == 0
    assert replay.main([str(data_dir)]) == 0


def test_wall_clock_ticks_push_deltas(tmp_path):
    """tick_interval drives the clock: deltas arrive with no tick requests."""
    network = city_network(80, seed=7)
    server = MonitoringServer(network, algorithm="IMA")
    durable = DurableMonitoringServer(server, tmp_path / "svc", checkpoint_every=None)
    svc = StreamingService(durable, port=0, tick_interval=0.05)
    address_file = tmp_path / "address"
    thread = threading.Thread(
        target=lambda: asyncio.run(svc.run(address_file=address_file)), daemon=True
    )
    thread.start()
    deadline = time.monotonic() + 30.0
    while not address_file.exists():
        assert time.monotonic() < deadline
        time.sleep(0.02)
    host, port = address_file.read_text().split()
    with ServiceClient(host, int(port)) as client:
        client.add_object(1, 30.0, 30.0)
        client.add_query(100, 35.0, 35.0, 1)
        client.subscribe()
        delta = client.poll_delta(timeout=10.0)
        assert delta is not None  # pushed by the wall-clock loop, unprompted
        _, changes = delta
        assert 100 in changes
        client.stop()
    thread.join(timeout=30.0)
    assert not thread.is_alive()


def test_service_rejects_bad_tick_interval(tmp_path):
    network = city_network(60, seed=8)
    durable = DurableMonitoringServer(
        MonitoringServer(network, algorithm="IMA"), tmp_path / "svc"
    )
    try:
        with pytest.raises(ServiceError, match="tick_interval"):
            StreamingService(durable, tick_interval=0.0)
    finally:
        durable.close()
