"""Executable documentation: README snippets and examples cannot rot.

* Every fenced ``python`` block in README.md that is self-contained (no
  ``...`` placeholders) is executed in a fresh namespace — the quickstart
  must run and print a result.
* Every ``examples/*.py`` script is executed as a subprocess, exactly the
  way the docs tell users to run it.
* The auto-generated API reference must be in sync with the docstrings
  (the same check the CI docs-build job runs), and the mkdocs nav must
  reference only pages that exist.
"""

from __future__ import annotations

import contextlib
import io
import os
import pathlib
import re
import subprocess
import sys

import pytest

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def _runnable_readme_blocks():
    blocks = _FENCE.findall(README.read_text(encoding="utf-8"))
    assert blocks, "README.md lost its python snippets?"
    # Blocks with literal `...` are illustrative fragments, not programs.
    return [block for block in blocks if "..." not in block]


def test_readme_quickstart_runs_and_prints():
    blocks = _runnable_readme_blocks()
    assert blocks, "README.md has no self-contained python snippet"
    quickstart = blocks[0]
    assert "MonitoringServer" in quickstart
    stdout = io.StringIO()
    namespace: dict = {}
    with contextlib.redirect_stdout(stdout):
        exec(compile(quickstart, str(README), "exec"), namespace)  # noqa: S102
    assert "(" in stdout.getvalue(), "quickstart printed no k-NN result"


@pytest.mark.parametrize(
    "block_index", range(len(_runnable_readme_blocks())) or [0]
)
def test_readme_python_blocks_execute(block_index):
    block = _runnable_readme_blocks()[block_index]
    with contextlib.redirect_stdout(io.StringIO()):
        exec(compile(block, f"{README}[block {block_index}]", "exec"), {})  # noqa: S102


EXAMPLES = sorted((REPO_ROOT / "examples").glob("*.py"))


def test_examples_are_documented():
    """examples/README.md must mention every script."""
    text = (REPO_ROOT / "examples" / "README.md").read_text(encoding="utf-8")
    missing = [path.name for path in EXAMPLES if path.name not in text]
    assert not missing, f"examples/README.md does not describe: {missing}"


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.stem)
def test_example_scripts_run(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n--- stdout ---\n{result.stdout[-2000:]}"
        f"\n--- stderr ---\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_api_reference_is_fresh():
    result = subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / "gen_api_docs.py"), "--check"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr or result.stdout


def test_mkdocs_nav_pages_exist():
    text = (REPO_ROOT / "mkdocs.yml").read_text(encoding="utf-8")
    pages = re.findall(r":\s*([\w\-/]+\.md)\s*$", text, re.MULTILINE)
    assert pages, "mkdocs.yml nav is empty?"
    missing = [page for page in pages if not (REPO_ROOT / "docs" / page).exists()]
    assert not missing, f"mkdocs nav references missing pages: {missing}"
