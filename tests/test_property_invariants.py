"""Property-based invariant tests for the interval algebra and the heaps.

Seeded random operation sequences are replayed against naive models — a
plain dict + sorted list for the heaps, brute-force point membership for the
interval structures — so any divergence pinpoints the operation sequence
that broke an invariant.  Hypothesis drives the sequence generation (its
failures print the reproducing example); a fixed-seed torture loop backs it
up with longer sequences.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.heap import IndexedMinHeap, LazyMinHeap
from repro.utils.intervals import (
    Interval,
    IntervalSet,
    influence_spans,
    influencing_intervals,
    merge_spans,
    normalize_intervals,
    point_in_spans,
    point_spans,
)

_INF = float("inf")


# ----------------------------------------------------------------------
# heaps vs naive dict/sorted models
# ----------------------------------------------------------------------
_heap_ops = st.lists(
    st.tuples(
        st.sampled_from(["push", "pop", "decrease", "remove", "discard", "peek"]),
        st.integers(0, 15),
        st.floats(0.0, 100.0, allow_nan=False, allow_infinity=False),
    ),
    max_size=60,
)


def _apply_heap_ops(ops):
    """Drive an IndexedMinHeap and a naive dict model through *ops*."""
    heap = IndexedMinHeap()
    model = {}
    for op, item, key in ops:
        if op == "push":
            heap.push(item, key)
            if item not in model or key < model[item]:
                model[item] = key
        elif op == "pop":
            if model:
                popped_item, popped_key = heap.pop()
                best = min(model.values())
                assert popped_key == best
                assert model.pop(popped_item) == popped_key
            else:
                assert len(heap) == 0
        elif op == "decrease":
            if item in model:
                heap.decrease_key(item, key)
                if key < model[item]:
                    model[item] = key
        elif op == "remove":
            if item in model:
                assert heap.remove(item) == model.pop(item)
        elif op == "discard":
            heap.discard(item)
            model.pop(item, None)
        elif op == "peek":
            if model:
                _, top_key = heap.peek()
                assert top_key == min(model.values())
                assert heap.min_key() == min(model.values())
            else:
                assert heap.min_key() == _INF
        assert heap.is_valid()
        assert len(heap) == len(model)
        assert set(dict(iter(heap))) == set(model)
    # items_sorted orders by key with arbitrary tie order; normalise both
    # sides by (key, item) before comparing.
    drained = heap.items_sorted()
    assert [key for _, key in drained] == sorted(key for key in model.values())
    assert sorted(drained, key=lambda kv: (kv[1], kv[0])) == sorted(
        model.items(), key=lambda kv: (kv[1], kv[0])
    )


@settings(max_examples=60, deadline=None)
@given(ops=_heap_ops)
def test_indexed_heap_matches_model(ops):
    _apply_heap_ops(ops)


def test_indexed_heap_seeded_torture():
    """Long seeded sequences beyond hypothesis' default sizes."""
    for seed in range(8):
        rng = random.Random(1000 + seed)
        ops = [
            (
                rng.choice(["push", "push", "push", "pop", "decrease", "remove", "peek"]),
                rng.randrange(40),
                round(rng.uniform(0, 500), 3),
            )
            for _ in range(600)
        ]
        _apply_heap_ops(ops)


@settings(max_examples=40, deadline=None)
@given(
    ops=st.lists(
        st.tuples(st.integers(0, 10), st.floats(0.0, 50.0, allow_nan=False)),
        max_size=40,
    )
)
def test_lazy_heap_matches_model(ops):
    heap = LazyMinHeap()
    model = {}
    for item, key in ops:
        heap.push(item, key)
        if item not in model or key < model[item]:
            model[item] = key
        assert heap.min_key() == min(model.values())
        assert len(heap) == len(model)
    drained = []
    while model:
        item, key = heap.pop()
        drained.append(key)
        assert model.pop(item) == key
    # Keys drain in non-decreasing order (ties pop in insertion order).
    assert drained == sorted(drained)


# ----------------------------------------------------------------------
# interval algebra vs brute-force membership
# ----------------------------------------------------------------------
_intervals = st.lists(
    st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0, 100, allow_nan=False)),
    max_size=8,
).map(lambda pairs: [Interval(min(a, b), max(a, b)) for a, b in pairs])


@settings(max_examples=80, deadline=None)
@given(intervals=_intervals, probes=st.lists(st.floats(-5, 105, allow_nan=False), max_size=20))
def test_normalize_preserves_membership(intervals, probes):
    normalized = normalize_intervals(intervals)
    # Sorted, pairwise disjoint (beyond merge tolerance).
    for first, second in zip(normalized, normalized[1:]):
        assert first.low <= second.low
        assert first.high < second.low
    # Membership is preserved at every probe strictly inside/outside.
    for probe in probes:
        naive = any(iv.contains(probe, tolerance=0.0) for iv in intervals)
        normalized_hit = any(iv.contains(probe, tolerance=0.0) for iv in normalized)
        if naive:
            assert normalized_hit  # merging never loses covered points
    union = IntervalSet(intervals)
    assert list(union) == normalize_intervals(intervals)


@settings(max_examples=100, deadline=None)
@given(
    weight=st.floats(0.5, 200, allow_nan=False),
    dist_start=st.one_of(st.floats(0, 300, allow_nan=False), st.just(_INF)),
    dist_end=st.one_of(st.floats(0, 300, allow_nan=False), st.just(_INF)),
    radius=st.one_of(st.floats(0, 400, allow_nan=False), st.just(_INF)),
    probes=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=12),
)
def test_influence_spans_match_bruteforce_membership(
    weight, dist_start, dist_end, radius, probes
):
    """Spans contain exactly the offsets within *radius* of the query.

    The distance of offset t is ``min(dist_start + t, dist_end + w - t)``;
    probes landing within a small margin of the radius boundary are skipped
    (the implementation is allowed tolerance there).
    """
    spans = influence_spans(weight, dist_start, dist_end, radius)
    legacy = influencing_intervals(weight, dist_start, dist_end, radius)
    # Plain-tuple and IntervalSet variants agree on membership everywhere.
    for fraction in probes:
        offset = fraction * weight
        assert point_in_spans(spans, offset, tolerance=1e-9) == legacy.contains(
            offset, tolerance=1e-9
        )
        distance = min(
            dist_start + offset if dist_start != _INF else _INF,
            dist_end + (weight - offset) if dist_end != _INF else _INF,
        )
        margin = 1e-6 * max(1.0, weight, 0.0 if radius == _INF else radius)
        if radius == _INF:
            expected = distance != _INF
        elif abs(distance - radius) <= margin:
            continue  # boundary: tolerance region, either answer is fine
        else:
            expected = distance < radius
        assert point_in_spans(spans, offset, tolerance=0.0) == expected


@settings(max_examples=60, deadline=None)
@given(
    weight=st.floats(0.5, 100, allow_nan=False),
    query_fraction=st.floats(0, 1, allow_nan=False),
    radius=st.floats(0, 150, allow_nan=False),
    probes=st.lists(st.floats(0, 1, allow_nan=False), min_size=1, max_size=10),
)
def test_point_spans_match_direct_distance(weight, query_fraction, radius, probes):
    query_offset = query_fraction * weight
    spans = point_spans(weight, query_offset, radius)
    for fraction in probes:
        offset = fraction * weight
        distance = abs(offset - query_offset)
        if abs(distance - radius) <= 1e-9 * max(1.0, weight):
            continue
        assert point_in_spans(spans, offset, tolerance=0.0) == (distance < radius)


@settings(max_examples=60, deadline=None)
@given(
    first=_intervals,
    second=_intervals,
    probes=st.lists(st.floats(-5, 105, allow_nan=False), min_size=1, max_size=15),
)
def test_merge_spans_is_union(first, second, probes):
    spans_a = tuple((iv.low, iv.high) for iv in normalize_intervals(first))
    spans_b = tuple((iv.low, iv.high) for iv in normalize_intervals(second))
    merged = merge_spans(spans_a, spans_b)
    # Normalised: sorted and non-overlapping.
    for (low_a, high_a), (low_b, high_b) in zip(merged, merged[1:]):
        assert low_a <= low_b
        assert high_a < low_b
    for probe in probes:
        either = point_in_spans(spans_a, probe, tolerance=0.0) or point_in_spans(
            spans_b, probe, tolerance=0.0
        )
        if either:
            assert point_in_spans(merged, probe, tolerance=0.0)


def test_interval_set_seeded_torture():
    """Seeded random interval unions vs brute-force probe membership."""
    rng = random.Random(77)
    for _ in range(40):
        raw = []
        for _ in range(rng.randrange(1, 10)):
            a, b = sorted((rng.uniform(0, 50), rng.uniform(0, 50)))
            raw.append(Interval(a, b))
        split = rng.randrange(len(raw) + 1)
        combined = IntervalSet(raw[:split]).union(IntervalSet(raw[split:]))
        for _ in range(30):
            probe = rng.uniform(-1, 51)
            naive = any(iv.contains(probe) for iv in raw)
            assert combined.contains(probe) == naive
