"""Tests for the exact network-distance oracle (cross-checked with networkx)."""

from __future__ import annotations

import random

import networkx as nx
import pytest

from repro.exceptions import DisconnectedNetworkError, NodeNotFoundError
from repro.network.builders import city_network
from repro.network.distance import (
    approximate_center_node,
    brute_force_knn,
    eccentricity,
    location_sources,
    multi_source_node_distances,
    network_distance,
    node_distances,
    shortest_path_nodes,
)
from repro.network.graph import NetworkLocation, RoadNetwork


def _to_networkx(network: RoadNetwork) -> nx.Graph:
    graph = nx.Graph()
    for node in network.nodes():
        graph.add_node(node.node_id)
    for edge in network.edges():
        graph.add_edge(edge.start, edge.end, weight=edge.weight)
    return graph


class TestNodeDistances:
    def test_line_network_distances(self, line_network):
        distances = node_distances(line_network, 0)
        assert distances == {0: 0.0, 1: 100.0, 2: 200.0, 3: 300.0, 4: 400.0}

    def test_unknown_source_raises(self, line_network):
        with pytest.raises(NodeNotFoundError):
            node_distances(line_network, 55)

    def test_max_distance_truncates(self, line_network):
        distances = node_distances(line_network, 0, max_distance=150.0)
        assert set(distances) == {0, 1}

    def test_matches_networkx_on_random_city(self):
        network = city_network(120, seed=4)
        graph = _to_networkx(network)
        source = next(network.node_ids())
        expected = nx.single_source_dijkstra_path_length(graph, source)
        actual = node_distances(network, source)
        assert set(actual) == set(expected)
        for node_id, distance in expected.items():
            assert actual[node_id] == pytest.approx(distance)

    def test_multi_source_takes_minimum(self, line_network):
        distances = multi_source_node_distances(line_network, {0: 0.0, 4: 0.0})
        assert distances[2] == pytest.approx(200.0)
        assert distances[3] == pytest.approx(100.0)


class TestShortestPath:
    def test_path_on_line(self, line_network):
        distance, path = shortest_path_nodes(line_network, 0, 3)
        assert distance == pytest.approx(300.0)
        assert path == [0, 1, 2, 3]

    def test_disconnected_raises(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 10, 0)
        network.add_node(2, 50, 0)
        network.add_node(3, 60, 0)
        network.add_edge(0, 0, 1)
        network.add_edge(1, 2, 3)
        with pytest.raises(DisconnectedNetworkError):
            shortest_path_nodes(network, 0, 3)

    def test_matches_networkx(self):
        network = city_network(100, seed=9)
        graph = _to_networkx(network)
        rng = random.Random(1)
        nodes = list(network.node_ids())
        for _ in range(10):
            source, target = rng.sample(nodes, 2)
            expected = nx.dijkstra_path_length(graph, source, target)
            actual, path = shortest_path_nodes(network, source, target)
            assert actual == pytest.approx(expected)
            assert path[0] == source and path[-1] == target


class TestLocationDistances:
    def test_same_edge_direct_distance(self, line_network):
        a = NetworkLocation(1, 0.2)
        b = NetworkLocation(1, 0.7)
        assert network_distance(line_network, a, b) == pytest.approx(50.0)

    def test_cross_edge_distance(self, line_network):
        a = NetworkLocation(0, 0.5)  # x = 50
        b = NetworkLocation(3, 0.25)  # x = 325
        assert network_distance(line_network, a, b) == pytest.approx(275.0)

    def test_distance_is_symmetric(self, line_network):
        a = NetworkLocation(0, 0.1)
        b = NetworkLocation(2, 0.9)
        assert network_distance(line_network, a, b) == pytest.approx(
            network_distance(line_network, b, a)
        )

    def test_same_edge_detour_when_shorter(self):
        # Two parallel edges between the same nodes: a long one (the location
        # edge) and a short one; the shortest path between two points on the
        # long edge may use the short edge.
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 100, 0)
        network.add_edge(0, 0, 1, 1000.0)
        network.add_edge(1, 0, 1, 10.0)
        a = NetworkLocation(0, 0.01)  # 10 from node 0 along the long edge
        b = NetworkLocation(0, 0.99)  # 10 from node 1 along the long edge
        # Direct along the long edge: 980; through node 0, edge 1, node 1: 30.
        assert network_distance(network, a, b) == pytest.approx(30.0)

    def test_location_sources_oneway(self):
        network = RoadNetwork()
        network.add_node(0, 0, 0)
        network.add_node(1, 10, 0)
        network.add_edge(0, 0, 1, 10.0, oneway=True)
        sources = location_sources(network, NetworkLocation(0, 0.3))
        assert sources == {1: pytest.approx(7.0)}


class TestBruteForceKnn:
    def test_returns_sorted_neighbors(self, populated_line):
        network, table = populated_line
        result = brute_force_knn(network, table, NetworkLocation(0, 0.0), 3)
        distances = [distance for _, distance in result]
        assert distances == sorted(distances)
        assert [object_id for object_id, _ in result] == [0, 1, 2]

    def test_k_larger_than_population(self, populated_line):
        network, table = populated_line
        result = brute_force_knn(network, table, NetworkLocation(0, 0.0), 10)
        assert len(result) == 3

    def test_exact_distances(self, populated_line):
        network, table = populated_line
        result = dict(brute_force_knn(network, table, NetworkLocation(0, 0.0), 3))
        assert result[0] == pytest.approx(50.0)
        assert result[1] == pytest.approx(225.0)
        assert result[2] == pytest.approx(390.0)


class TestMisc:
    def test_eccentricity_of_line_end(self, line_network):
        assert eccentricity(line_network, 0) == pytest.approx(400.0)

    def test_approximate_center_node_of_line(self, line_network):
        assert approximate_center_node(line_network) == 2

    def test_approximate_center_with_samples(self, line_network):
        assert approximate_center_node(line_network, samples=[0, 2, 4]) == 2

    def test_center_of_empty_network_raises(self):
        with pytest.raises(NodeNotFoundError):
            approximate_center_node(RoadNetwork())
