"""Tests for placement distributions, the mobility models and the traffic model."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.mobility.brinkhoff import DEFAULT_CLASSES, BrinkhoffGenerator, ObjectClass
from repro.mobility.distributions import place, place_gaussian, place_uniform
from repro.mobility.random_walk import RandomWalkModel
from repro.mobility.traffic import TrafficModel
from repro.network.distance import network_distance
from repro.network.graph import NetworkLocation


class TestDistributions:
    def test_uniform_placement_count_and_validity(self, small_city):
        locations = place_uniform(small_city, 50, seed=1)
        assert len(locations) == 50
        for location in locations:
            small_city.validate_location(location)

    def test_uniform_placement_is_deterministic(self, small_city):
        assert place_uniform(small_city, 10, seed=3) == place_uniform(small_city, 10, seed=3)

    def test_gaussian_placement_clusters_near_center(self, small_city):
        center = small_city.bounding_box().center
        gaussian = place_gaussian(small_city, 60, std_fraction=0.1, seed=2)
        uniform = place_uniform(small_city, 60, seed=2)

        def mean_distance(locations):
            return sum(
                small_city.location_point(loc).distance_to(center) for loc in locations
            ) / len(locations)

        assert mean_distance(gaussian) < mean_distance(uniform)

    def test_place_dispatches_by_name(self, small_city):
        assert len(place(small_city, 5, "uniform", seed=1)) == 5
        assert len(place(small_city, 5, "gaussian", seed=1)) == 5
        with pytest.raises(SimulationError):
            place(small_city, 5, "zipf", seed=1)


class TestRandomWalk:
    def test_step_respects_agility(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 40, seed=3))}
        model = RandomWalkModel(small_city, locations, speed=1.0, agility=0.5, seed=4)
        movements = model.step()
        assert 0 < len(movements) <= 20 + 1

    def test_zero_agility_produces_no_movement(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 10, seed=3))}
        model = RandomWalkModel(small_city, locations, speed=1.0, agility=0.0, seed=4)
        assert model.step() == []

    def test_movement_distance_bounded_by_speed(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 20, seed=5))}
        speed = 2.0
        model = RandomWalkModel(small_city, locations, speed=speed, agility=1.0, seed=6)
        budget = speed * small_city.average_edge_weight()
        for entity_id, old, new in model.step():
            travelled = network_distance(small_city, old, new)
            assert travelled <= budget + 1e-6

    def test_locations_stay_consistent(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 15, seed=7))}
        model = RandomWalkModel(small_city, locations, speed=1.0, agility=1.0, seed=8)
        for _ in range(5):
            model.step()
        for entity_id, location in model.locations().items():
            small_city.validate_location(location)
            assert model.location_of(entity_id) == location

    def test_add_and_remove_entity(self, small_city):
        model = RandomWalkModel(small_city, {}, seed=1)
        model.add_entity(5, NetworkLocation(next(small_city.edge_ids()), 0.5))
        assert len(model) == 1
        with pytest.raises(SimulationError):
            model.add_entity(5, NetworkLocation(next(small_city.edge_ids()), 0.1))
        model.remove_entity(5)
        assert len(model) == 0
        with pytest.raises(SimulationError):
            model.remove_entity(5)

    def test_dead_end_walker_stops_at_terminal(self, line_network):
        model = RandomWalkModel(
            line_network, {1: NetworkLocation(3, 0.5)}, speed=20.0, agility=1.0, seed=2
        )
        model.step()
        location = model.location_of(1)
        line_network.validate_location(location)


class TestBrinkhoff:
    def test_requires_classes(self, small_city):
        with pytest.raises(SimulationError):
            BrinkhoffGenerator(small_city, {}, classes=[], seed=1)

    def test_step_moves_objects_along_network(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 25, seed=9))}
        generator = BrinkhoffGenerator(small_city, locations, agility=1.0, seed=10)
        movements = generator.step()
        assert movements
        for _, old, new in movements:
            small_city.validate_location(new)
            assert old != new

    def test_classes_are_assigned(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 30, seed=9))}
        generator = BrinkhoffGenerator(small_city, locations, seed=11)
        names = {generator.class_of(i).name for i in range(30)}
        assert names.issubset({cls.name for cls in DEFAULT_CLASSES})

    def test_faster_class_travels_farther_on_average(self, small_city):
        locations = {i: loc for i, loc in enumerate(place_uniform(small_city, 40, seed=12))}
        slow_only = BrinkhoffGenerator(
            small_city, dict(locations), classes=[ObjectClass("slow", 0.25)], seed=13
        )
        fast_only = BrinkhoffGenerator(
            small_city, dict(locations), classes=[ObjectClass("fast", 2.0)], seed=13
        )

        def total_travel(generator):
            return sum(
                network_distance(small_city, old, new) for _, old, new in generator.step()
            )

        assert total_travel(fast_only) > total_travel(slow_only)


class TestTraffic:
    def test_step_changes_requested_fraction(self, small_city):
        model = TrafficModel(small_city, edge_agility=0.1, seed=1)
        changes = model.step()
        expected = round(0.1 * small_city.edge_count)
        assert abs(len(changes) - expected) <= 2

    def test_changes_are_plus_minus_magnitude(self, small_city):
        model = TrafficModel(small_city, edge_agility=0.2, magnitude=0.1, seed=2)
        for edge_id, old, new in model.step():
            assert new == pytest.approx(old * 1.1) or new == pytest.approx(old * 0.9)

    def test_drift_is_bounded(self, small_city):
        model = TrafficModel(
            small_city, edge_agility=1.0, magnitude=0.1, max_drift_factor=1.5, seed=3
        )
        for _ in range(60):
            for edge_id, _, new in model.step():
                small_city.set_edge_weight(edge_id, new)
        for edge in small_city.edges():
            assert edge.base_weight / 1.5 - 1e-9 <= edge.weight <= edge.base_weight * 1.5 + 1e-9

    def test_correlated_mode_selects_connected_patches(self, small_city):
        model = TrafficModel(small_city, edge_agility=0.1, correlated=True, seed=4)
        changes = model.step()
        assert changes
        changed_edges = {edge_id for edge_id, _, _ in changes}
        # At least one pair of changed edges shares an endpoint (patch shape).
        shared = 0
        for edge_id in changed_edges:
            edge = small_city.edge(edge_id)
            for other_id in small_city.incident_edges(edge.start):
                if other_id != edge_id and other_id in changed_edges:
                    shared += 1
        assert shared > 0

    def test_invalid_magnitude_raises(self, small_city):
        with pytest.raises(SimulationError):
            TrafficModel(small_city, magnitude=1.5)
