"""Regression tests for batch-path edge cases.

Covers the corners of the Section 4.5 batch preprocessing and the server's
bulk ingestion path that the fuzz scenarios hit probabilistically:

* an object added and removed within the same batch (a net no-op),
* ``k`` larger than the number of live objects (incomplete results that
  must fill up exactly as objects arrive),
* a query that both moves and terminates in the same tick,
* a same-tick ``remove_query`` + ``add_query`` of one id — collapsing into
  a movement when the reinstall preserves the query type and parameters,
  splitting back into terminate+install when the spec (or kind) changed.

Each case runs on every algorithm (CSR and legacy kernels where relevant)
and is checked against the brute-force oracle.
"""

from __future__ import annotations

import pytest

from repro.core.events import ObjectUpdate, QueryUpdate, UpdateBatch
from repro.core.queries import aggregate_knn, knn, range_query
from repro.core.server import MonitoringServer
from repro.exceptions import UnknownQueryError
from repro.network.builders import city_network
from repro.network.distance import (
    brute_force_aggregate_knn,
    brute_force_knn,
    brute_force_range,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.core.results import results_equal

ALGORITHMS = ["ovh", "ima", "gma"]


def _server(algorithm, kernel="csr", seed=21, edges=120):
    network = city_network(edges, seed=seed)
    server = MonitoringServer(
        network, algorithm, edge_table=EdgeTable(network, build_spatial_index=False),
        kernel=kernel,
    )
    return server, sorted(network.edge_ids())


def _check_against_oracle(server, query_id):
    expected = brute_force_knn(
        server.network,
        server.edge_table,
        server.monitor.query_location(query_id),
        server.monitor.query_k(query_id),
    )
    actual = list(server.result_of(query_id).neighbors)
    assert results_equal(expected, actual), (expected, actual)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "legacy"])
def test_add_and_remove_same_object_in_one_batch(algorithm, kernel):
    """An object appearing and disappearing in one tick is a net no-op."""
    server, edges = _server(algorithm, kernel)
    for object_id in range(6):
        server.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    server.add_query(100, NetworkLocation(edges[3], 0.25), k=3)
    server.tick()
    before = server.result_of(100)

    flicker = NetworkLocation(edges[3], 0.26)  # right next to the query
    batch = UpdateBatch()
    batch.object_updates.append(ObjectUpdate(77, None, flicker))
    batch.object_updates.append(ObjectUpdate(77, flicker, None))
    server.apply_updates(batch)
    server.tick()

    after = server.result_of(100)
    assert 77 not in after.object_ids
    assert after.neighbors == before.neighbors
    assert 77 not in server.object_ids()
    _check_against_oracle(server, 100)

    # The flickered id is free again: a later plain insertion must work.
    server.add_object(77, flicker)
    server.tick()
    assert 77 in server.result_of(100).object_ids
    _check_against_oracle(server, 100)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "legacy"])
def test_k_larger_than_live_object_count(algorithm, kernel):
    """Results stay incomplete (radius inf) and fill up as objects arrive."""
    server, edges = _server(algorithm, kernel)
    server.add_object(0, NetworkLocation(edges[0], 0.5))
    server.add_object(1, NetworkLocation(edges[5], 0.5))
    server.add_query(100, NetworkLocation(edges[2], 0.5), k=5)
    server.tick()

    result = server.result_of(100)
    assert len(result.neighbors) == 2
    assert not result.is_complete
    assert result.radius == float("inf")
    _check_against_oracle(server, 100)

    # Remove below k, then mass-arrive past k in one batch.
    server.remove_object(1)
    server.tick()
    assert len(server.result_of(100).object_ids) == 1
    _check_against_oracle(server, 100)

    batch = UpdateBatch()
    for object_id in range(10, 16):
        batch.object_updates.append(
            ObjectUpdate(object_id, None, NetworkLocation(edges[object_id], 0.3))
        )
    server.apply_updates(batch)
    server.tick()
    result = server.result_of(100)
    assert result.is_complete
    assert result.radius != float("inf")
    _check_against_oracle(server, 100)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "legacy"])
def test_query_moved_and_removed_in_same_tick(algorithm, kernel):
    """A move followed by a termination in one batch terminates cleanly."""
    server, edges = _server(algorithm, kernel)
    for object_id in range(8):
        server.add_object(object_id, NetworkLocation(edges[2 * object_id], 0.4))
    server.add_query(100, NetworkLocation(edges[1], 0.5), k=2)
    server.add_query(200, NetworkLocation(edges[9], 0.5), k=2)
    server.tick()

    batch = UpdateBatch()
    moved = NetworkLocation(edges[7], 0.6)
    batch.query_updates.append(
        QueryUpdate(100, NetworkLocation(edges[1], 0.5), moved)
    )
    batch.query_updates.append(QueryUpdate(100, moved, None))
    server.apply_updates(batch)
    server.tick()

    assert 100 not in server.query_ids()
    with pytest.raises(UnknownQueryError):
        server.result_of(100)
    # The surviving query is untouched and still exact.
    _check_against_oracle(server, 200)

    # The id can be reused afterwards.
    server.add_query(100, moved, k=2)
    server.tick()
    _check_against_oracle(server, 100)


def _ground_truth(server, query_id):
    """Dispatch to the brute-force helper matching the query's spec."""
    spec = server.monitor.query_spec(query_id)
    location = server.monitor.query_location(query_id)
    if spec.kind == "range":
        return brute_force_range(
            server.network, server.edge_table, location, spec.radius
        )
    if spec.kind == "aggregate_knn":
        return brute_force_aggregate_knn(
            server.network,
            server.edge_table,
            spec.aggregation_points(location),
            spec.k,
            agg=spec.agg,
        )
    return brute_force_knn(server.network, server.edge_table, location, spec.k)


def _specs_for(server, edges):
    """One spec per query kind, scaled to the server's network."""
    mean_weight = sum(
        server.network.edge(edge_id).weight for edge_id in edges
    ) / len(edges)
    return {
        "knn": knn(3),
        "range": range_query(2.5 * mean_weight),
        "aggregate_knn": aggregate_knn(2, (NetworkLocation(edges[25], 0.5),), "sum"),
    }


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "legacy"])
@pytest.mark.parametrize("kind", ["knn", "range", "aggregate_knn"])
def test_same_tick_remove_add_preserving_spec_collapses(algorithm, kernel, kind):
    """remove_query + add_query of one id with the same spec is a movement.

    The Section 4.5 collapse turns the terminate+install into a single
    movement carrying the (unchanged) spec; monitors keep their incremental
    state instead of recomputing from scratch, and the result at the new
    position must still match the ground truth.
    """
    server, edges = _server(algorithm, kernel)
    for object_id in range(10):
        server.add_object(object_id, NetworkLocation(edges[3 * object_id], 0.4))
    spec = _specs_for(server, edges)[kind]
    server.add_query(100, NetworkLocation(edges[1], 0.5), k=spec)
    server.tick()

    new_location = NetworkLocation(edges[6], 0.3)
    server.remove_query(100)
    server.add_query(100, new_location, k=spec)
    server.tick()

    assert 100 in server.query_ids()
    assert server.monitor.query_spec(100) == spec
    assert server.monitor.query_location(100) == new_location
    assert results_equal(
        _ground_truth(server, 100), list(server.result_of(100).neighbors)
    )
    # The query keeps monitoring incrementally at its new position.
    server.move_object(0, NetworkLocation(edges[6], 0.35))
    server.tick()
    assert results_equal(
        _ground_truth(server, 100), list(server.result_of(100).neighbors)
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize(
    "old_kind,new_kind",
    [("knn", "range"), ("range", "aggregate_knn"), ("aggregate_knn", "knn")],
)
def test_same_tick_remove_add_changing_kind_splits(algorithm, old_kind, new_kind):
    """A reinstall that changes the query *kind* re-registers from scratch."""
    server, edges = _server(algorithm)
    for object_id in range(10):
        server.add_object(object_id, NetworkLocation(edges[3 * object_id], 0.4))
    specs = _specs_for(server, edges)
    server.add_query(100, NetworkLocation(edges[1], 0.5), k=specs[old_kind])
    server.tick()

    server.remove_query(100)
    new_location = NetworkLocation(edges[9], 0.7)
    server.add_query(100, new_location, k=specs[new_kind])
    server.tick()

    assert server.monitor.query_spec(100) == specs[new_kind]
    result = server.result_of(100)
    assert result.k == specs[new_kind].result_k
    assert results_equal(_ground_truth(server, 100), list(result.neighbors))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_install_move_and_object_flows_in_single_batch(algorithm):
    """A batch mixing installs, moves of the just-installed entities, and
    edge changes is applied atomically through apply_updates."""
    server, edges = _server(algorithm)
    server.add_object(0, NetworkLocation(edges[0], 0.5))
    server.tick()

    batch = UpdateBatch()
    first = NetworkLocation(edges[4], 0.2)
    second = NetworkLocation(edges[6], 0.8)
    batch.object_updates.append(ObjectUpdate(1, None, first))
    batch.object_updates.append(ObjectUpdate(1, first, second))
    batch.query_updates.append(QueryUpdate(300, None, first, 2))
    server.apply_updates(batch)
    server.tick()

    assert server.edge_table.location_of(1) == second
    _check_against_oracle(server, 300)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_same_tick_tenant_swap_in_shared_dedup_group(algorithm):
    """One tenant leaving while another joins the same canonical key in a
    single batch must neither orphan the joiner nor double-terminate the
    group's physical query (the refcount crosses 2 -> 1 -> 2, never 0)."""
    from repro.core.dedup import DedupFrontend

    server, edges = _server(algorithm)
    frontend = DedupFrontend(server)
    for object_id in range(8):
        frontend.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.add_query(101, venue, k=2)
    frontend.tick()
    physical_ids = set(server.query_ids())
    assert len(physical_ids) == 1

    batch = UpdateBatch()
    batch.query_updates.append(QueryUpdate(100, venue, None))
    batch.query_updates.append(QueryUpdate(102, None, venue, 2))
    frontend.apply_updates(batch)
    frontend.tick()

    # The co-tenant kept the original physical query alive through the swap.
    assert set(server.query_ids()) == physical_ids
    assert frontend.query_ids() == {101, 102}
    assert frontend.result_of(102).neighbors == frontend.result_of(101).neighbors
    with pytest.raises(UnknownQueryError):
        frontend.result_of(100)
    stats = frontend.dedup_stats()
    assert stats.physical_queries == 1 and stats.largest_group == 2
    _check_against_oracle(server, next(iter(physical_ids)))


@pytest.mark.parametrize("algorithm", ALGORITHMS)
def test_same_tick_sole_tenant_swap_reinstalls_physical(algorithm):
    """When the leaving tenant was the *only* subscriber, the same-tick swap
    reaches the server as terminate + install with a fresh physical id —
    never a same-id collapse — and the joiner gets correct results."""
    from repro.core.dedup import DedupFrontend

    server, edges = _server(algorithm)
    frontend = DedupFrontend(server)
    for object_id in range(8):
        frontend.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.tick()
    old_physical = set(server.query_ids())

    batch = UpdateBatch()
    batch.query_updates.append(QueryUpdate(100, venue, None))
    batch.query_updates.append(QueryUpdate(101, None, venue, 2))
    frontend.apply_updates(batch)
    frontend.tick()

    new_physical = set(server.query_ids())
    assert len(new_physical) == 1
    assert new_physical.isdisjoint(old_physical)  # ids are never reused
    assert frontend.query_ids() == {101}
    assert frontend.result_of(101).query_id == 101
    _check_against_oracle(server, next(iter(new_physical)))


# ----------------------------------------------------------------------
# road-closure semantics (the CLOSED_EDGE_WEIGHT contract)
# ----------------------------------------------------------------------
#
# The pinned contract (docs/queries.md): closures are *huge finite*
# weights, never float('inf').  An object sitting on a closed edge keeps a
# defined (astronomically large) distance — it drops out of any k-NN
# result with enough open competition but still fills result slots when
# fewer than k objects are otherwise available, identically across every
# kernel and the oracle.  True infinities are rejected at every layer.

import math

from repro.core.events import EdgeWeightUpdate
from repro.exceptions import InvalidWeightError, SimulationError
from repro.network.graph import CLOSED_EDGE_WEIGHT


def _close_edge(server, edge_id):
    batch = UpdateBatch()
    batch.add_edge_change(
        edge_id, server.network.edge(edge_id).weight, CLOSED_EDGE_WEIGHT
    )
    server.apply_updates(batch)
    server.tick()


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "dial", "legacy"])
def test_object_on_closed_edge_keeps_defined_distance(algorithm, kernel):
    """Closing the edge under an object leaves its distance finite."""
    server, edges = _server(algorithm, kernel)
    for object_id in range(3):
        server.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    server.add_query(100, NetworkLocation(edges[5], 0.25), k=3)
    server.tick()

    _close_edge(server, edges[0])  # the edge object 0 sits on

    result = server.result_of(100)
    # k exceeds the open-road population, so the stranded object must still
    # fill the third slot — with a huge but *finite* distance.
    assert result.object_ids[-1] == 0
    for _, distance in result.neighbors:
        assert math.isfinite(distance)
    closed_distance = dict(result.neighbors)[0]
    assert closed_distance > CLOSED_EDGE_WEIGHT / 4
    _check_against_oracle(server, 100)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "dial"])
def test_closed_object_drops_behind_open_competition(algorithm, kernel):
    """With enough open objects, the stranded one leaves the result set."""
    server, edges = _server(algorithm, kernel)
    for object_id in range(6):
        server.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    server.add_query(100, NetworkLocation(edges[1], 0.25), k=3)
    server.tick()
    assert 0 in server.result_of(100).object_ids or True  # layout-dependent

    _close_edge(server, edges[0])

    result = server.result_of(100)
    assert 0 not in result.object_ids
    assert all(math.isfinite(d) for _, d in result.neighbors)
    _check_against_oracle(server, 100)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
@pytest.mark.parametrize("kernel", ["csr", "dial"])
def test_closed_edge_reopening_restores_results(algorithm, kernel):
    """Close then reopen at the original weight: results return exactly."""
    server, edges = _server(algorithm, kernel)
    for object_id in range(5):
        server.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
    server.add_query(100, NetworkLocation(edges[2], 0.75), k=2)
    server.tick()
    before = server.result_of(100)
    original_weight = server.network.edge(edges[0]).weight

    _close_edge(server, edges[0])
    assert server.network.edge(edges[0]).weight == CLOSED_EDGE_WEIGHT

    batch = UpdateBatch()
    batch.add_edge_change(edges[0], CLOSED_EDGE_WEIGHT, original_weight)
    server.apply_updates(batch)
    server.tick()

    after = server.result_of(100)
    assert after.neighbors == before.neighbors
    _check_against_oracle(server, 100)


def test_true_infinite_weights_are_rejected_everywhere():
    """float('inf') is not a closure: every layer refuses it."""
    server, edges = _server("ima")
    with pytest.raises(InvalidWeightError):
        server.network.set_edge_weight(edges[0], float("inf"))
    with pytest.raises(InvalidWeightError):
        server.network.set_edge_weight(edges[0], float("nan"))
    with pytest.raises(SimulationError):
        EdgeWeightUpdate(edges[0], 5.0, float("inf") - float("inf"))  # NaN
    with pytest.raises(SimulationError):
        EdgeWeightUpdate(edges[0], 5.0, 0.0)
    # The sentinel itself is a perfectly ordinary weight.
    server.network.set_edge_weight(edges[0], CLOSED_EDGE_WEIGHT)
    assert server.network.edge(edges[0]).weight == CLOSED_EDGE_WEIGHT
