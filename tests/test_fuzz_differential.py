"""Oracle-backed scenario fuzz suite.

Every preset of :data:`repro.testing.SCENARIO_PRESETS` is run under several
seeds (≥ 25 runs in total), with IMA and GMA — on both the CSR kernel and
the preserved legacy dict paths — compared against the brute-force
:class:`~repro.testing.oracle.OracleMonitor` at every timestamp: identical
distance profiles for every live query, and per-tick reports carrying the
correct timestamps.

The base seed rotates in CI (the workflow exports ``FUZZ_BASE_SEED`` from
the run id and uploads it on failure); locally it defaults to a fixed
value.  Any failure message embeds the exact one-command replay line, and
``test_replay_from_env`` re-runs a single scenario from the
``FUZZ_SCENARIO`` / ``FUZZ_SEED`` environment variables.
"""

from __future__ import annotations

import os

import pytest

from repro.testing import SCENARIO_PRESETS, run_differential_scenario
from repro.testing.harness import (
    DEFAULT_ALGORITHMS,
    DIAL_ALGORITHMS,
    NATIVE_ALGORITHMS,
)

#: Rotating base seed: CI exports the workflow run id, local runs use a
#: fixed default so plain `pytest` stays deterministic.
BASE_SEED = int(os.environ.get("FUZZ_BASE_SEED", "20060912"))

#: Kernel matrix axis: ``FUZZ_KERNEL=dial`` swaps the fuzzed monitor panel
#: to the batched bucket-queue kernel, ``FUZZ_KERNEL=native`` to the
#: compiled settle loop (each next to its CSR references); the default
#: panel covers csr + legacy.
_FUZZ_PANELS = {
    "csr": DEFAULT_ALGORITHMS,
    "dial": DIAL_ALGORITHMS,
    "native": NATIVE_ALGORITHMS,
}
FUZZ_ALGORITHMS = _FUZZ_PANELS[os.environ.get("FUZZ_KERNEL", "csr")]

#: Query-type matrix axis: ``FUZZ_QUERY_TYPES=mixed`` overlays the mixed
#: k-NN / range / aggregate query distribution on every preset.
FUZZ_QUERY_TYPES = os.environ.get("FUZZ_QUERY_TYPES", "default")

#: Dedup matrix axis: ``FUZZ_DEDUP=1`` drives
#: :class:`~repro.core.dedup.DedupFrontend`-wrapped servers next to a plain
#: reference server in every run (see ``run_differential_scenario``'s
#: ``dedup`` flag for the byte-identity contract).
FUZZ_DEDUP = os.environ.get("FUZZ_DEDUP", "0") == "1"

#: Partitioning matrix axis: ``FUZZ_PARTITIONING=graph`` adds a sharded
#: leg over network-partitioned region shards next to the replica leg in
#: server-driving runs (see ``run_differential_scenario``'s
#: ``partitioning`` flag for the byte-identity contract).
FUZZ_PARTITIONING = os.environ.get("FUZZ_PARTITIONING", "replica")

#: Seeds per preset; 9 presets x 4 seeds = 36 differential runs (>= 25).
SEEDS_PER_PRESET = 4

#: Spread the per-preset seeds far apart so neighboring CI runs (run ids
#: increment by small steps) still cover distinct streams.
_SEED_STRIDE = 99_991


def _seed(offset: int) -> int:
    return (BASE_SEED + offset * _SEED_STRIDE) % 2_000_000_011


@pytest.mark.parametrize("scenario", sorted(SCENARIO_PRESETS))
@pytest.mark.parametrize("offset", range(SEEDS_PER_PRESET))
def test_scenarios_match_oracle(scenario, offset):
    """IMA/GMA on both kernels exactly match the oracle on every tick."""
    seed = _seed(offset)
    report = run_differential_scenario(
        scenario,
        seed=seed,
        algorithms=FUZZ_ALGORITHMS,
        query_types=FUZZ_QUERY_TYPES,
        dedup=FUZZ_DEDUP,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_replay_from_env():
    """Replay a single failing scenario: FUZZ_SCENARIO=<name> FUZZ_SEED=<n>.

    Skipped unless both environment variables are set (this is the target
    of the replay command embedded in fuzz failure messages).  Sharded
    failures additionally set ``FUZZ_WORKERS`` (and, when not IMA,
    ``FUZZ_SERVER_ALGORITHM``) so the same servers are reconstructed.
    """
    scenario = os.environ.get("FUZZ_SCENARIO")
    seed = os.environ.get("FUZZ_SEED")
    if not scenario or not seed:
        pytest.skip("set FUZZ_SCENARIO and FUZZ_SEED to replay a fuzz failure")
    workers = os.environ.get("FUZZ_WORKERS")
    report = run_differential_scenario(
        scenario,
        seed=int(seed),
        # FUZZ_KERNEL=dial / =native reconstructs the monitor panel of
        # the failing matrix leg (module-level FUZZ_ALGORITHMS reads it).
        algorithms=FUZZ_ALGORITHMS,
        workers=int(workers) if workers else None,
        server_algorithm=os.environ.get("FUZZ_SERVER_ALGORITHM", "ima"),
        server_kernel=os.environ.get("FUZZ_SERVER_KERNEL", "csr"),
        query_types=FUZZ_QUERY_TYPES,
        dedup=FUZZ_DEDUP,
        partitioning=FUZZ_PARTITIONING if workers else "replica",
    )
    assert report.ok, report.failure_message(limit=50)


def test_failure_report_carries_replay_command():
    """The report's failure message points at the env-driven replay test."""
    report = run_differential_scenario("uniform-drift", seed=_seed(0), timestamps=2)
    report.mismatches.append("t=0 IMA q=1000000: synthetic mismatch")
    message = report.failure_message()
    assert "FUZZ_SCENARIO=uniform-drift" in message
    assert f"FUZZ_SEED={_seed(0)}" in message
    assert "test_replay_from_env" in message
    assert "FUZZ_WORKERS" not in message  # no servers were driven


def test_sharded_failure_report_carries_workers():
    """Sharded-run reports embed the worker count so divergences reproduce."""
    report = run_differential_scenario(
        "uniform-drift",
        seed=_seed(1),
        algorithms=(),
        workers=2,
        server_algorithm="gma",
        timestamps=1,
    )
    report.mismatches.append("t=0 GMA-server-x2 q=1000000: synthetic mismatch")
    message = report.failure_message()
    assert "FUZZ_WORKERS=2" in message
    assert "FUZZ_SERVER_ALGORITHM=gma" in message


def test_graph_partitioned_failure_report_carries_axis():
    """Graph-partitioned reports embed FUZZ_PARTITIONING so they reproduce."""
    report = run_differential_scenario(
        "uniform-drift",
        seed=_seed(3),
        algorithms=(),
        workers=2,
        partitioning="graph",
        timestamps=1,
    )
    report.mismatches.append(
        "t=0 IMA-server-graph-x2 q=1000000: synthetic mismatch"
    )
    message = report.failure_message()
    assert "FUZZ_WORKERS=2" in message
    assert "FUZZ_PARTITIONING=graph" in message
    assert "test_replay_from_env" in message


def test_dedup_failure_report_carries_flag():
    """Dedup-run reports embed FUZZ_DEDUP=1 so divergences reproduce."""
    report = run_differential_scenario(
        "uniform-drift", seed=_seed(2), algorithms=(), dedup=True, timestamps=1
    )
    report.mismatches.append("t=0 IMA-dedup-single q=1000000: synthetic mismatch")
    message = report.failure_message()
    assert "FUZZ_DEDUP=1" in message
    assert "test_replay_from_env" in message
