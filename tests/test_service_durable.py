"""Crash-recovery tests for the durable monitoring server.

The core property (satellite of the durable-service PR): a checkpoint plus
a replayed event-log prefix reproduces ``results()`` *byte-identically* at
every timestamp, across the IMA/GMA algorithms and the csr/dial kernels.
Also covers snapshot/restore of both server flavors, the non-durable
pending buffer, and data-directory lifecycle rules.
"""

from __future__ import annotations

import shutil

import pytest

from repro import (
    DurableMonitoringServer,
    MonitoringServer,
    city_network,
    load_initial_state,
    restore_server,
)
from repro.exceptions import RecoveryError, ServiceError
from repro.service.eventlog import scan_event_log
from repro.service.faults import build_scenario_server
from repro.testing.scenarios import ScenarioEngine, resolve_scenario

TICKS = 6
CHECKPOINT_EVERY = 3


def _drive(data_dir, algorithm="IMA", kernel="csr", scenario="uniform-drift", seed=5,
           ticks=TICKS, checkpoint_every=CHECKPOINT_EVERY, workers=None,
           keep_checkpoints=4):
    """Run a durable server over a scenario, recording results() per tick."""
    spec = resolve_scenario(scenario)
    network = city_network(120, seed=seed + 1)
    engine = ScenarioEngine(network, spec, seed=seed)
    server = build_scenario_server(scenario, seed, 120, algorithm, kernel, workers)
    durable = DurableMonitoringServer(
        server, data_dir, checkpoint_every=checkpoint_every,
        keep_checkpoints=keep_checkpoints,
    )
    expected = {}
    for timestamp in range(ticks):
        batch = engine.batch(timestamp)
        server.apply_updates(batch)
        durable.tick()
        expected[timestamp + 1] = durable.results()
    return durable, expected


def _truncate_to_prefix(data_dir, prefix):
    """Trim a copied data directory to its first *prefix* logged batches."""
    log_path = data_dir / "events.log"
    scan = scan_event_log(log_path)
    assert len(scan.records) >= prefix >= 1
    with log_path.open("r+b") as stream:
        stream.truncate(scan.records[prefix - 1].end)
    for ckpt in (data_dir / "checkpoints").glob("ckpt-*.bin"):
        if int(ckpt.stem.split("-")[1]) > prefix:
            ckpt.unlink()


@pytest.mark.parametrize("algorithm", ["IMA", "GMA"])
@pytest.mark.parametrize("kernel", ["csr", "dial"])
def test_prefix_replay_reproduces_every_timestamp(tmp_path, algorithm, kernel):
    """checkpoint + log-prefix replay == the live run, at every timestamp."""
    original = tmp_path / "run"
    durable, expected = _drive(original, algorithm=algorithm, kernel=kernel)
    durable.close()
    for prefix in range(1, TICKS + 1):
        clone = tmp_path / f"prefix-{prefix}"
        shutil.copytree(original, clone)
        _truncate_to_prefix(clone, prefix)
        recovered = DurableMonitoringServer.recover(clone)
        try:
            assert recovered.current_timestamp == prefix
            assert recovered.results() == expected[prefix], (
                f"{algorithm}/{kernel}: results at t={prefix} diverged "
                f"after checkpoint+replay"
            )
            # replay count = prefix minus what the newest kept checkpoint covers
            assert 0 <= recovered.recovered_ticks <= CHECKPOINT_EVERY
        finally:
            recovered.close()


def test_recovered_server_continues_byte_identically(tmp_path):
    """Crash mid-run, recover, continue: indistinguishable from no crash."""
    full_dir, crash_dir = tmp_path / "full", tmp_path / "crash"
    full, _ = _drive(full_dir, seed=9)
    reference = full.results()
    reference_ts = full.current_timestamp
    full.close()

    spec = resolve_scenario("uniform-drift")
    network = city_network(120, seed=10)
    engine = ScenarioEngine(network, spec, seed=9)
    server = build_scenario_server("uniform-drift", 9, 120, "IMA", "csr", None)
    durable = DurableMonitoringServer(server, crash_dir, checkpoint_every=CHECKPOINT_EVERY)
    crash_at = 4
    for timestamp in range(crash_at):
        batch = engine.batch(timestamp)
        server.apply_updates(batch)
        durable.tick()
    # simulate the crash: no close(), just abandon the wrapper and recover
    recovered = DurableMonitoringServer.recover(crash_dir)
    assert recovered.current_timestamp == crash_at
    for timestamp in range(crash_at, TICKS):
        batch = engine.batch(timestamp)
        recovered.server.apply_updates(batch)
        recovered.tick()
    assert recovered.current_timestamp == reference_ts
    assert recovered.results() == reference
    recovered.close()


def test_pending_updates_are_not_durable_without_checkpoint(tmp_path):
    """Ingested-but-unticked updates die with the crash, by contract."""
    network = city_network(80, seed=3)
    server = MonitoringServer(network, algorithm="IMA")
    durable = DurableMonitoringServer(server, tmp_path / "d", checkpoint_every=None)
    server.add_object_at(1, x=40.0, y=40.0)
    server.add_query_at(100, x=45.0, y=45.0, k=1)
    durable.tick()
    server.add_object_at(2, x=60.0, y=60.0)  # ingested, never ticked or checkpointed
    recovered = DurableMonitoringServer.recover(tmp_path / "d")
    assert recovered.current_timestamp == 1
    assert 2 not in recovered.server.object_ids()
    assert recovered.server.result_of(100).neighbors  # ticked state survived
    recovered.close()


def test_checkpoint_captured_pending_survives_when_log_has_no_tail(tmp_path):
    """A checkpoint after ingestion preserves the pending buffer on recovery."""
    network = city_network(80, seed=3)
    server = MonitoringServer(network, algorithm="IMA")
    durable = DurableMonitoringServer(server, tmp_path / "d", checkpoint_every=None)
    server.add_object_at(1, x=40.0, y=40.0)
    server.add_query_at(100, x=45.0, y=45.0, k=1)
    durable.checkpoint()
    recovered = DurableMonitoringServer.recover(tmp_path / "d")
    # the pending installs were captured; the first tick processes them
    recovered.tick()
    assert 1 in recovered.server.object_ids()
    neighbors = recovered.server.result_of(100).neighbors
    assert [object_id for object_id, _ in neighbors] == [1]
    recovered.close()


def test_fresh_init_refuses_used_data_dir(tmp_path):
    network = city_network(80, seed=3)
    durable = DurableMonitoringServer(
        MonitoringServer(network, algorithm="IMA"), tmp_path / "d"
    )
    durable.close()
    with pytest.raises(ServiceError, match="recover"):
        DurableMonitoringServer(
            MonitoringServer(network.copy(), algorithm="IMA"), tmp_path / "d"
        )


def test_recover_refuses_empty_dir_and_skips_torn_checkpoint(tmp_path):
    with pytest.raises(RecoveryError, match="no checkpoints"):
        DurableMonitoringServer.recover(tmp_path / "missing")
    durable, _ = _drive(tmp_path / "d", ticks=4, checkpoint_every=2)
    durable.close()
    checkpoints = sorted((tmp_path / "d" / "checkpoints").glob("ckpt-*.bin"))
    assert len(checkpoints) >= 2
    # tear the newest checkpoint mid-write; recovery must fall back
    newest = checkpoints[-1]
    newest.write_bytes(newest.read_bytes()[:20])
    recovered = DurableMonitoringServer.recover(tmp_path / "d")
    assert recovered.current_timestamp == 4  # replayed the tail instead
    recovered.close()


def test_checkpoint_pruning_keeps_genesis_and_newest(tmp_path):
    durable, _ = _drive(
        tmp_path / "d", ticks=6, checkpoint_every=1, seed=2
    )
    names = sorted(
        p.name for p in (tmp_path / "d" / "checkpoints").glob("ckpt-*.bin")
    )
    durable.close()
    # genesis (t=0) always kept; newest 4 of the rest (default keep_checkpoints)
    assert names[0] == "ckpt-0000000000.bin"
    assert len(names) <= 1 + 4
    assert names[-1] == "ckpt-0000000006.bin"


def test_keep_one_pruning_never_deletes_genesis(tmp_path):
    """With ``keep_checkpoints=1`` every prune leaves genesis + the newest.

    The prune runs only after the replacement checkpoint landed (atomic
    tmp+fsync+replace), and ``paths[0]`` — genesis — is exempt, so the
    recovery chain "newest, else genesis + full replay" can never lose
    both of its anchors to pruning.
    """
    durable, _ = _drive(
        tmp_path / "d", ticks=8, checkpoint_every=1, keep_checkpoints=1, seed=4
    )
    durable.close()
    names = sorted(
        p.name for p in (tmp_path / "d" / "checkpoints").glob("ckpt-*.bin")
    )
    assert names[0] == "ckpt-0000000000.bin"  # genesis survived 8 prunes
    assert names == ["ckpt-0000000000.bin", "ckpt-0000000008.bin"]


def test_torn_newest_with_keep_one_recovers_via_genesis_replay(tmp_path):
    """keep_checkpoints=1 + torn newest checkpoint must still land.

    The worst fault shape for aggressive pruning: the only non-genesis
    checkpoint is torn, so recovery has to fall back to genesis and replay
    the **entire** event log — and end byte-identical to the uncrashed
    run.
    """
    durable, _ = _drive(
        tmp_path / "d", ticks=6, checkpoint_every=2, keep_checkpoints=1, seed=9
    )
    final = {
        query_id: result.neighbors
        for query_id, result in durable.results().items()
    }
    durable.close()
    checkpoints = sorted((tmp_path / "d" / "checkpoints").glob("ckpt-*.bin"))
    assert len(checkpoints) == 2  # genesis + the single retained newest
    newest = checkpoints[-1]
    newest.write_bytes(newest.read_bytes()[:16])  # torn mid-write
    recovered = DurableMonitoringServer.recover(
        tmp_path / "d", keep_checkpoints=1
    )
    try:
        assert recovered.recovered_ticks == 6  # full replay from genesis
        assert recovered.current_timestamp == 6
        actual = {
            query_id: result.neighbors
            for query_id, result in recovered.results().items()
        }
        assert actual == final
    finally:
        recovered.close()


# ----------------------------------------------------------------------
# snapshot / restore primitives
# ----------------------------------------------------------------------
def test_restore_server_rejects_garbage():
    with pytest.raises(RecoveryError):
        restore_server(b"junk")
    import pickle

    with pytest.raises(RecoveryError, match="kind"):
        restore_server(pickle.dumps({"kind": "martian"}))


@pytest.mark.parametrize("workers", [None, 2])
def test_snapshot_restore_continues_byte_identically(workers):
    """Both server flavors resume exactly from a snapshot blob."""
    scenario, seed = "uniform-drift", 11
    spec = resolve_scenario(scenario)
    network = city_network(100, seed=seed + 1)
    engine = ScenarioEngine(network, spec, seed=seed)
    original = build_scenario_server(scenario, seed, 100, "IMA", "csr", workers)
    twin_engine = ScenarioEngine(
        city_network(100, seed=seed + 1), spec, seed=seed
    )
    try:
        for timestamp in range(3):
            batch = engine.batch(timestamp)
            original.apply_updates(batch)
            original.tick()
        blob = original.snapshot_state()
        clone = restore_server(blob)
        try:
            assert clone.current_timestamp == original.current_timestamp
            assert clone.results() == original.results()
            for timestamp in range(3):
                twin_engine.batch(timestamp)  # advance the twin RNG in lock-step
            for timestamp in range(3, 5):
                batch = engine.batch(timestamp)
                twin = twin_engine.batch(timestamp)
                original.apply_updates(batch)
                original.tick()
                clone.apply_updates(twin)
                clone.tick()
            assert clone.results() == original.results()
        finally:
            clone.close()
    finally:
        original.close()


def test_load_initial_state_reads_genesis_without_respawn(tmp_path):
    durable, _ = _drive(tmp_path / "d", seed=4)
    durable.close()
    initial = load_initial_state(tmp_path / "d")
    assert initial.timestamp == 0
    # genesis has initial objects in the edge table, queries still pending
    assert initial.queries == {}
    assert initial.network.edge_ids()
    with pytest.raises(RecoveryError):
        load_initial_state(tmp_path / "nothing-here")
