"""Unit tests for the service event log and checkpoint framing.

Covers the length-prefixed CRC record format, torn-tail repair (the crash
shape), mid-file corruption detection, offset bookkeeping, and the batch
codec the log stores.
"""

from __future__ import annotations

import os

import pytest

from repro import UpdateBatch, decode_batch, encode_batch
from repro.exceptions import EventLogError, RecoveryError
from repro.network.graph import NetworkLocation
from repro.service.eventlog import MAGIC, EventLog, read_event_log, scan_event_log


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "events.log"


# ----------------------------------------------------------------------
# append / read round trips
# ----------------------------------------------------------------------
def test_new_log_is_created_with_magic(log_path):
    with EventLog(log_path) as log:
        assert log.offset == len(MAGIC)
    assert log_path.read_bytes() == MAGIC
    assert read_event_log(log_path) == []


def test_append_read_roundtrip_and_offsets(log_path):
    with EventLog(log_path) as log:
        first = log.append(b"alpha")
        second = log.append(b"")  # empty payloads are legal records
        third = log.append(b"gamma" * 100)
        assert len(MAGIC) < first < second < third == log.offset
    assert read_event_log(log_path) == [b"alpha", b"", b"gamma" * 100]
    # start_offset selects exactly the records appended after it
    assert read_event_log(log_path, start_offset=first) == [b"", b"gamma" * 100]
    assert read_event_log(log_path, start_offset=second) == [b"gamma" * 100]
    assert read_event_log(log_path, start_offset=third) == []


def test_reopen_appends_after_existing_records(log_path):
    with EventLog(log_path) as log:
        log.append(b"one")
    with EventLog(log_path) as log:
        log.append(b"two")
    assert read_event_log(log_path) == [b"one", b"two"]


def test_start_offset_must_be_a_record_boundary(log_path):
    with EventLog(log_path) as log:
        log.append(b"payload")
    with pytest.raises(EventLogError, match="record boundary"):
        read_event_log(log_path, start_offset=len(MAGIC) + 3)


def test_closed_log_refuses_appends(log_path):
    log = EventLog(log_path)
    log.close()
    assert log.closed
    log.close()  # idempotent
    with pytest.raises(EventLogError, match="closed"):
        log.append(b"late")


def test_bad_magic_raises(log_path):
    log_path.write_bytes(b"NOTALOG!" + b"\x00" * 16)
    with pytest.raises(EventLogError, match="magic"):
        read_event_log(log_path)


# ----------------------------------------------------------------------
# torn tails (crash shapes) vs mid-file corruption (real damage)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("tail", [b"\x07", b"\x07\x00\x00\x00", b"\x07\x00\x00\x00\xaa\xbb\xcc\xdd\x01\x02"])
def test_torn_tail_is_truncated_on_open(log_path, tail):
    with EventLog(log_path) as log:
        log.append(b"kept")
        valid_end = log.offset
    with log_path.open("ab") as stream:
        stream.write(tail)  # torn header or torn payload
    scan = scan_event_log(log_path)
    assert scan.torn and scan.valid_end == valid_end
    with EventLog(log_path) as log:  # open repairs the tail
        assert log.offset == valid_end
        log.append(b"after-repair")
    assert read_event_log(log_path) == [b"kept", b"after-repair"]


def test_crc_bad_final_record_counts_as_torn(log_path):
    with EventLog(log_path) as log:
        log.append(b"kept")
        valid_end = log.offset
        log.append(b"damaged-final")
    data = bytearray(log_path.read_bytes())
    data[-1] ^= 0xFF  # flip a payload byte of the final record
    log_path.write_bytes(bytes(data))
    scan = scan_event_log(log_path)
    assert scan.torn and scan.valid_end == valid_end
    assert read_event_log(log_path) == [b"kept"]


def test_crc_bad_mid_file_record_raises(log_path):
    with EventLog(log_path) as log:
        first_end = log.append(b"kept")
        log.append(b"will-be-damaged")
        log.append(b"after")
    data = bytearray(log_path.read_bytes())
    data[first_end + 8 + 1] ^= 0xFF  # inside the middle record's payload
    log_path.write_bytes(bytes(data))
    with pytest.raises(EventLogError, match="corrupt"):
        read_event_log(log_path)


def test_truncation_at_every_offset_of_the_final_frame_is_torn(log_path):
    """Byte-exhaustive torn-tail boundary sweep over the last frame.

    The crash shape the repair path exists for: the file ends anywhere
    inside the final record's ``<len, crc32>`` header (1–7 bytes present)
    or its payload.  Every such cut must classify as a torn tail ending at
    the previous record — never as mid-file corruption, never a hang —
    and reopening must repair to exactly that boundary.
    """
    with EventLog(log_path) as log:
        log.append(b"first")
        log.append(b"second")
        prev_end = log.offset
        log.append(b"final-frame-pad")  # 8-byte header + 15-byte payload
    full = log_path.read_bytes()
    assert prev_end < len(full)
    for cut in range(prev_end + 1, len(full)):
        log_path.write_bytes(full[:cut])
        scan = scan_event_log(log_path)
        present = cut - prev_end
        assert scan.torn, f"{present} tail bytes misread as clean"
        assert scan.valid_end == prev_end, (
            f"cut {present} bytes into the final frame: valid_end "
            f"{scan.valid_end}, expected {prev_end}"
        )
        assert [r.payload for r in scan.records] == [b"first", b"second"]
        with EventLog(log_path) as log:  # repair, then keep appending
            assert log.offset == prev_end
            log.append(b"resumed")
        assert read_event_log(log_path) == [b"first", b"second", b"resumed"]
    # Cutting exactly at the previous record's end is a clean file.
    log_path.write_bytes(full[:prev_end])
    scan = scan_event_log(log_path)
    assert not scan.torn and scan.valid_end == prev_end


def test_truncation_inside_the_only_record_repairs_to_genesis(log_path):
    """A log whose single record is torn repairs back to the bare magic."""
    with EventLog(log_path) as log:
        log.append(b"solo")
    full = log_path.read_bytes()
    for cut in range(len(MAGIC) + 1, len(full)):
        log_path.write_bytes(full[:cut])
        scan = scan_event_log(log_path)
        assert scan.torn and scan.valid_end == len(MAGIC)
        assert scan.records == []
        with EventLog(log_path) as log:
            assert log.offset == len(MAGIC)


def test_sync_flag_controls_buffering_not_correctness(log_path):
    with EventLog(log_path, sync=False) as log:
        log.append(b"buffered")
        log.sync()  # explicit fsync path
    assert read_event_log(log_path) == [b"buffered"]


# ----------------------------------------------------------------------
# batch codec (what the log stores)
# ----------------------------------------------------------------------
def test_encode_decode_batch_roundtrip():
    batch = UpdateBatch(timestamp=7)
    batch.add_object_move(1, NetworkLocation(0, 0.25), NetworkLocation(1, 0.75))
    batch.add_query_move(100, NetworkLocation(2, 0.5), NetworkLocation(2, 0.6))
    batch.add_edge_change(3, 10.0, 12.5)
    clone = decode_batch(encode_batch(batch))
    assert clone.timestamp == 7
    assert clone.object_updates == batch.object_updates
    assert clone.query_updates == batch.query_updates
    assert clone.edge_updates == batch.edge_updates
    # determinism: identical batches encode to identical bytes
    assert encode_batch(batch) == encode_batch(clone)


def test_decode_batch_rejects_garbage_and_bad_versions():
    with pytest.raises(EventLogError):
        decode_batch(b"not a pickle")
    import pickle

    bad_version = pickle.dumps((999, 0, [], [], []))
    with pytest.raises(EventLogError, match="version"):
        decode_batch(bad_version)


# ----------------------------------------------------------------------
# checkpoint framing
# ----------------------------------------------------------------------
def test_checkpoint_write_read_roundtrip(tmp_path):
    from repro.service.durable import _read_checkpoint, _write_checkpoint

    path = _write_checkpoint(tmp_path, 12, 345, b"state-blob")
    assert path.name == "ckpt-0000000012.bin"
    record = _read_checkpoint(path)
    assert record == {"timestamp": 12, "log_offset": 345, "state": b"state-blob"}


def test_torn_checkpoint_is_detected(tmp_path):
    from repro.service.durable import _read_checkpoint, _write_checkpoint

    path = _write_checkpoint(tmp_path, 3, 99, b"x" * 64)
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 2])  # crash mid-write
    with pytest.raises(RecoveryError, match="truncated"):
        _read_checkpoint(path)
    path.write_bytes(b"WRONGMAG" + data[8:])
    with pytest.raises(RecoveryError, match="magic"):
        _read_checkpoint(path)
    flipped = bytearray(data)
    flipped[-1] ^= 0xFF
    path.write_bytes(bytes(flipped))
    with pytest.raises(RecoveryError, match="CRC"):
        _read_checkpoint(path)


def test_checkpoint_replace_is_atomic_no_tmp_left_behind(tmp_path):
    from repro.service.durable import _write_checkpoint

    _write_checkpoint(tmp_path, 1, 10, b"blob")
    assert [p.name for p in sorted(tmp_path.iterdir())] == ["ckpt-0000000001.bin"]
    assert not list(tmp_path.glob("*.tmp"))


def test_fsync_is_called_on_append(log_path, monkeypatch):
    calls = []
    real_fsync = os.fsync
    monkeypatch.setattr(os, "fsync", lambda fd: (calls.append(fd), real_fsync(fd)))
    with EventLog(log_path, sync=True) as log:
        calls.clear()
        log.append(b"durable")
        assert calls, "sync=True append must fsync before returning"
