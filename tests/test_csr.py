"""Tests of the flat-array CSR kernel (:mod:`repro.network.csr`).

Three layers of coverage:

* **snapshot equivalence** — the CSR adjacency columns describe exactly the
  same traversable graph as :meth:`RoadNetwork.neighbors`;
* **refresh protocol** — ``set_edge_weight`` patches the columns in place
  (no rebuild), topology edits trigger a rebuild;
* **differential testing** — the CSR-based :func:`expand_knn` returns
  results identical to the preserved dict-based reference implementation on
  seeded random networks, across fresh searches, source-node searches,
  exclusions, candidate seeding and resumed (pre-verified) searches.
"""

from __future__ import annotations

import random

import pytest

from repro.core.search import expand_knn
from repro.core.search_legacy import expand_knn_legacy
from repro.exceptions import EdgeNotFoundError
from repro.network.builders import city_network, grid_network
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


def _adjacency_from_csr(csr: CSRGraph, node_id: int):
    """``{(edge_id, neighbor_id, weight)}`` reachable from *node_id*."""
    idx = csr.index_of_node(node_id)
    return {
        (edge_id, csr.node_ids[neighbor_idx], weight)
        for edge_id, neighbor_idx, weight in csr.neighbors_of_index(idx)
    }


class TestSnapshotEquivalence:
    def test_matches_network_adjacency(self, small_city):
        csr = csr_snapshot(small_city)
        assert csr.node_count == small_city.node_count
        assert csr.edge_count == small_city.edge_count
        for node_id in small_city.node_ids():
            expected = set(small_city.neighbors(node_id))
            assert _adjacency_from_csr(csr, node_id) == expected

    def test_oneway_edges_traversable_one_direction(self):
        network = RoadNetwork()
        network.add_node(0, 0.0, 0.0)
        network.add_node(1, 100.0, 0.0)
        network.add_node(2, 200.0, 0.0)
        network.add_edge(0, 0, 1, oneway=True)
        network.add_edge(1, 1, 2)
        csr = csr_snapshot(network)
        assert _adjacency_from_csr(csr, 0) == {(0, 1, 100.0)}
        # Node 1 cannot go back through the one-way edge.
        assert _adjacency_from_csr(csr, 1) == {(1, 2, 100.0)}

    def test_snapshot_is_cached_per_network(self, small_grid):
        assert csr_snapshot(small_grid) is csr_snapshot(small_grid)

    def test_distinct_networks_get_distinct_snapshots(self, small_grid, line_network):
        assert csr_snapshot(small_grid) is not csr_snapshot(line_network)

    def test_snapshot_cache_does_not_leak_networks(self):
        """Regression: the cached snapshot must not keep its network alive."""
        import gc
        import weakref

        network = grid_network(3, 3, spacing=10.0)
        csr_snapshot(network)
        probe = weakref.ref(network)
        del network
        gc.collect()
        assert probe() is None

    def test_direct_snapshots_do_not_pin_listeners(self):
        """Regression: loop-constructed CSRGraphs must not accumulate on the
        network's listener list once garbage-collected."""
        import gc

        network = grid_network(3, 3, spacing=10.0)
        for _ in range(10):
            CSRGraph(network)
        gc.collect()
        # The next weight change lets every dead wrapper unregister itself.
        edge_id = next(network.edge_ids())
        network.set_edge_weight(edge_id, 123.0)
        assert len(network._weight_listeners) <= 1  # at most the cached one

    def test_close_detaches_snapshot(self, small_grid):
        snapshot = CSRGraph(small_grid)
        edge_id = next(small_grid.edge_ids())
        snapshot.close()
        snapshot.close()  # idempotent
        small_grid.set_edge_weight(edge_id, 321.0)
        position = snapshot.index_of_edge(edge_id)
        assert snapshot.edge_weight[position] != 321.0  # no longer tracking


class TestWeightRefresh:
    def test_set_edge_weight_patches_in_place(self, small_city):
        csr = csr_snapshot(small_city)
        edge_id = next(small_city.edge_ids())
        small_city.set_edge_weight(edge_id, 123.5)
        refreshed = csr_snapshot(small_city)
        assert refreshed is csr  # incremental patch, not a rebuild
        position = refreshed.index_of_edge(edge_id)
        assert refreshed.edge_weight[position] == 123.5
        edge = small_city.edge(edge_id)
        for endpoint in (edge.start, edge.end):
            weights = {
                weight
                for eid, _, weight in refreshed.neighbors_of_index(
                    refreshed.index_of_node(endpoint)
                )
                if eid == edge_id
            }
            if weights:  # one-way edges appear only at the start node
                assert weights == {123.5}

    def test_scale_edge_weight_propagates(self, small_grid):
        csr = csr_snapshot(small_grid)
        edge_id = next(small_grid.edge_ids())
        before = small_grid.edge(edge_id).weight
        small_grid.scale_edge_weight(edge_id, 2.0)
        position = csr.index_of_edge(edge_id)
        assert csr_snapshot(small_grid).edge_weight[position] == pytest.approx(
            2.0 * before
        )

    def test_reset_weights_refreshes_all(self, small_grid):
        csr = csr_snapshot(small_grid)
        edge_ids = list(small_grid.edge_ids())
        for edge_id in edge_ids[:5]:
            small_grid.set_edge_weight(edge_id, 999.0)
        small_grid.reset_weights()
        refreshed = csr_snapshot(small_grid)
        assert refreshed is csr
        for edge_id in edge_ids[:5]:
            position = refreshed.index_of_edge(edge_id)
            assert refreshed.edge_weight[position] == small_grid.edge(edge_id).weight


class TestTopologyRebuild:
    def test_add_edge_triggers_rebuild(self, small_grid):
        csr = csr_snapshot(small_grid)
        nodes = list(small_grid.node_ids())
        new_edge = small_grid.add_edge(99_999, nodes[0], nodes[-1], weight=42.0)
        refreshed = csr_snapshot(small_grid)
        assert refreshed.edge_count == small_grid.edge_count
        position = refreshed.index_of_edge(new_edge.edge_id)
        assert refreshed.edge_weight[position] == 42.0
        assert csr is refreshed  # same object, rebuilt columns

    def test_remove_edge_triggers_rebuild(self, small_grid):
        csr_snapshot(small_grid)
        edge_id = next(small_grid.edge_ids())
        small_grid.remove_edge(edge_id)
        refreshed = csr_snapshot(small_grid)
        with pytest.raises(EdgeNotFoundError):
            refreshed.index_of_edge(edge_id)
        assert refreshed.edge_count == small_grid.edge_count

    def test_weight_update_after_rebuild_still_incremental(self, small_grid):
        csr_snapshot(small_grid)
        nodes = list(small_grid.node_ids())
        small_grid.add_edge(88_888, nodes[0], nodes[-2], weight=10.0)
        refreshed = csr_snapshot(small_grid)
        small_grid.set_edge_weight(88_888, 20.0)
        assert (
            csr_snapshot(small_grid).edge_weight[refreshed.index_of_edge(88_888)]
            == 20.0
        )


def _assert_same_outcome(actual, expected):
    assert actual.neighbors == expected.neighbors
    assert actual.radius == expected.radius
    assert actual.state.node_dist == expected.state.node_dist
    assert actual.state.parent == expected.state.parent


class TestDifferentialAgainstLegacy:
    """The kernel must be indistinguishable from the reference search."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize("k", [1, 4, 10])
    def test_fresh_searches_identical(self, seed, k):
        rng = random.Random(seed)
        network = city_network(150, seed=seed)
        edge_table = EdgeTable(network, build_spatial_index=False)
        edge_ids = list(network.edge_ids())
        for object_id in range(60):
            edge_table.insert_object(
                object_id, NetworkLocation(rng.choice(edge_ids), rng.random())
            )
        for _ in range(25):
            query = NetworkLocation(rng.choice(edge_ids), rng.random())
            fast = expand_knn(network, edge_table, k, query_location=query)
            slow = expand_knn_legacy(network, edge_table, k, query_location=query)
            _assert_same_outcome(fast, slow)

    def test_fresh_searches_identical_after_weight_updates(self):
        rng = random.Random(42)
        network = grid_network(8, 8, spacing=50.0)
        edge_table = EdgeTable(network, build_spatial_index=False)
        edge_ids = list(network.edge_ids())
        for object_id in range(40):
            edge_table.insert_object(
                object_id, NetworkLocation(rng.choice(edge_ids), rng.random())
            )
        for round_number in range(10):
            for edge_id in rng.sample(edge_ids, 12):
                network.scale_edge_weight(edge_id, rng.uniform(0.7, 1.4))
            query = NetworkLocation(rng.choice(edge_ids), rng.random())
            fast = expand_knn(network, edge_table, 5, query_location=query)
            slow = expand_knn_legacy(network, edge_table, 5, query_location=query)
            _assert_same_outcome(fast, slow)

    def test_source_node_searches_identical(self, populated_city):
        network, edge_table, _ = populated_city
        rng = random.Random(5)
        nodes = list(network.node_ids())
        for _ in range(15):
            source = rng.choice(nodes)
            fast = expand_knn(network, edge_table, 3, source_node=source)
            slow = expand_knn_legacy(network, edge_table, 3, source_node=source)
            _assert_same_outcome(fast, slow)

    def test_excluded_objects_identical(self, populated_city):
        network, edge_table, locations = populated_city
        rng = random.Random(6)
        excluded = set(rng.sample(sorted(locations), 20))
        edge_ids = list(network.edge_ids())
        for _ in range(10):
            query = NetworkLocation(rng.choice(edge_ids), rng.random())
            fast = expand_knn(
                network, edge_table, 4, query_location=query, excluded_objects=excluded
            )
            slow = expand_knn_legacy(
                network, edge_table, 4, query_location=query, excluded_objects=excluded
            )
            _assert_same_outcome(fast, slow)

    def test_resumed_searches_identical(self, populated_city):
        """Pre-verified trees + candidates + coverage radius (IMA's resume)."""
        network, edge_table, _ = populated_city
        rng = random.Random(8)
        edge_ids = list(network.edge_ids())
        for _ in range(10):
            query = NetworkLocation(rng.choice(edge_ids), rng.random())
            initial = expand_knn(network, edge_table, 6, query_location=query)
            preverified = dict(initial.state.node_dist)
            parents = dict(initial.state.parent)
            candidates = list(initial.neighbors)
            coverage = initial.radius * 0.8 if initial.radius != float("inf") else None
            fast = expand_knn(
                network,
                edge_table,
                6,
                query_location=query,
                preverified=preverified,
                preverified_parent=parents,
                candidates=candidates,
                coverage_radius=coverage,
            )
            slow = expand_knn_legacy(
                network,
                edge_table,
                6,
                query_location=query,
                preverified=preverified,
                preverified_parent=parents,
                candidates=candidates,
                coverage_radius=coverage,
            )
            _assert_same_outcome(fast, slow)

    def test_counters_track_same_work(self, populated_city):
        network, edge_table, _ = populated_city
        from repro.core.search import SearchCounters

        rng = random.Random(9)
        edge_ids = list(network.edge_ids())
        fast_counters = SearchCounters()
        slow_counters = SearchCounters()
        for _ in range(10):
            query = NetworkLocation(rng.choice(edge_ids), rng.random())
            expand_knn(
                network, edge_table, 5, query_location=query, counters=fast_counters
            )
            expand_knn_legacy(
                network, edge_table, 5, query_location=query, counters=slow_counters
            )
        assert fast_counters.snapshot() == slow_counters.snapshot()
