"""Docstring coverage guards for the public API.

Two layers:

* :func:`test_pydocstyle_missing_docstrings` mirrors the ruff pydocstyle
  rules enabled in ``pyproject.toml`` (D100-D103: module / public class /
  public method / public function docstrings) over the same module
  allowlist, so violations surface in a plain ``pytest`` run even where
  ruff is not installed.
* :func:`test_public_exports_have_examples` requires every class and
  function exported from ``repro`` (the package ``__all__``) to carry a
  docstring with an ``Example::`` block or doctest, which the generated
  API reference (``scripts/gen_api_docs.py``) renders.
"""

from __future__ import annotations

import ast
import inspect
import pathlib

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

#: Modules under pydocstyle enforcement.  Keep in sync with the ruff
#: per-file-ignores in pyproject.toml (everything else ignores "D").
ENFORCED_MODULES = (
    "src/repro/__init__.py",
    "src/repro/exceptions.py",
    "src/repro/core/server.py",
    "src/repro/core/sharding.py",
    "src/repro/core/worker.py",
    "src/repro/core/base.py",
    "src/repro/core/dedup.py",
    "src/repro/core/events.py",
    "src/repro/core/queries.py",
    "src/repro/core/results.py",
    "src/repro/network/graph.py",
    "src/repro/network/csr.py",
    "src/repro/network/dial.py",
    "src/repro/network/edge_table.py",
    "src/repro/realism/__init__.py",
    "src/repro/realism/importer.py",
    "src/repro/realism/traffic.py",
    "src/repro/service/eventlog.py",
    "src/repro/service/durable.py",
    "src/repro/testing/harness.py",
    "src/repro/testing/scenarios.py",
    "src/repro/testing/oracle.py",
)


def _is_dunder(name: str) -> bool:
    return name.startswith("__") and name.endswith("__")


def _missing_docstrings(path: pathlib.Path) -> list:
    tree = ast.parse(path.read_text(encoding="utf-8"))
    problems = []
    if not ast.get_docstring(tree):
        problems.append(f"{path}:1 D100 missing module docstring")

    def visit(node, in_public_scope: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                public = in_public_scope and not child.name.startswith("_")
                if public and not ast.get_docstring(child):
                    problems.append(
                        f"{path}:{child.lineno} D101 class {child.name}"
                    )
                visit(child, public)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # D102/D103; dunders are D105/D107, which are not enforced.
                public = (
                    in_public_scope
                    and not _is_dunder(child.name)
                    and not child.name.startswith("_")
                )
                if public and not ast.get_docstring(child):
                    problems.append(
                        f"{path}:{child.lineno} D102/D103 def {child.name}"
                    )
                visit(child, public)
    visit(tree, True)
    return problems


def test_pydocstyle_missing_docstrings():
    problems = []
    for module in ENFORCED_MODULES:
        problems.extend(_missing_docstrings(REPO_ROOT / module))
    assert not problems, "undocumented public symbols:\n" + "\n".join(problems)


def test_public_exports_have_examples():
    missing_doc, missing_example = [], []
    for name in repro.__all__:
        obj = getattr(repro, name)
        if not (inspect.isclass(obj) or inspect.isfunction(obj)):
            continue  # data exports (dicts, version string) carry no __doc__
        doc = inspect.getdoc(obj) or ""
        if not doc.strip():
            missing_doc.append(name)
        elif "Example::" not in doc and ">>>" not in doc:
            missing_example.append(name)
    assert not missing_doc, f"exports without docstrings: {missing_doc}"
    assert not missing_example, f"exports without examples: {missing_example}"
