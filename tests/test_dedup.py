"""Multi-tenant query-dedup tests: frontend units, sharing, differentials.

Three layers of coverage for the dedup subsystem:

* :class:`~repro.core.dedup.DedupFrontend` unit behavior — reference
  counting, canonicalization (exact and snap-tolerance bucketing), group
  split/merge on movement and spec changes, pending-install semantics and
  the stats census;
* the shared-expansion cache — ``expand_knn_batch(..., share=True)`` and
  :func:`~repro.core.queries.evaluate_aggregates` must reproduce the
  unshared outcomes bit-for-bit with independent expansion states;
* oracle-backed differentials — the popular-venue preset (the workload the
  frontend exists for) through every server kernel and algorithm, sharded
  included, via ``run_differential_scenario(dedup=True)``; GMA/OVH venue
  runs additionally go through the harness's strict byte-identity branch.
"""

from __future__ import annotations

import pytest

from repro.core.dedup import DedupFrontend, DedupStats
from repro.core.events import QueryUpdate, UpdateBatch
from repro.core.queries import (
    QuerySpec,
    aggregate_knn,
    evaluate_aggregate,
    evaluate_aggregates,
    knn,
    range_query,
)
from repro.core.search import ExpansionRequest, expand_knn_batch
from repro.core.server import MonitoringServer
from repro.exceptions import (
    DuplicateQueryError,
    MonitoringError,
    UnknownQueryError,
)
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.testing import run_differential_scenario


def _frontend(algorithm="ima", seed=21, edges=120, snap_tolerance=0.0, objects=8):
    """A DedupFrontend over a small seeded server, with objects installed."""
    network = city_network(edges, seed=seed)
    edge_ids = sorted(network.edge_ids())
    server = MonitoringServer(
        network,
        algorithm,
        edge_table=EdgeTable(network, build_spatial_index=False),
    )
    frontend = DedupFrontend(server, snap_tolerance=snap_tolerance)
    for object_id in range(objects):
        frontend.add_object(object_id, NetworkLocation(edge_ids[object_id], 0.5))
    return frontend, edge_ids


# ----------------------------------------------------------------------
# reference counting
# ----------------------------------------------------------------------
def test_two_tenants_share_one_physical_query():
    """Co-located same-spec tenants install exactly one physical query."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=3)
    frontend.add_query(101, venue, k=3)
    frontend.tick()

    assert len(frontend.server.query_ids()) == 1
    assert frontend.query_ids() == {100, 101}
    first, second = frontend.result_of(100), frontend.result_of(101)
    assert first.query_id == 100 and second.query_id == 101
    assert first.neighbors == second.neighbors

    stats = frontend.dedup_stats()
    assert stats == DedupStats(
        logical_queries=2,
        physical_queries=1,
        largest_group=2,
        deduped_installs=1,
        physical_installs=1,
        physical_moves=0,
    )


def test_departure_never_kills_a_cotenant():
    """Removing one subscriber leaves the group's physical query running."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=3)
    frontend.add_query(101, venue, k=3)
    frontend.tick()
    before = frontend.result_of(101).neighbors

    frontend.remove_query(100)
    frontend.tick()
    assert frontend.result_of(101).neighbors == before
    assert len(frontend.server.query_ids()) == 1
    with pytest.raises(UnknownQueryError):
        frontend.result_of(100)

    frontend.remove_query(101)
    frontend.tick()
    assert frontend.server.query_ids() == set()
    assert frontend.dedup_stats().physical_queries == 0


def test_results_fan_out_to_every_subscriber():
    """``results()`` relabels the physical result once per subscriber."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[5], 0.75)
    for query_id in (200, 201, 202):
        frontend.add_query(query_id, venue, k=2)
    frontend.add_query(300, NetworkLocation(edges[9], 0.1), k=2)
    frontend.tick()

    fanned = frontend.results()
    assert set(fanned) == {200, 201, 202, 300}
    assert fanned[200].neighbors == fanned[202].neighbors
    for query_id, result in fanned.items():
        assert result.query_id == query_id


# ----------------------------------------------------------------------
# canonicalization
# ----------------------------------------------------------------------
def test_exact_tolerance_separates_distinct_fractions():
    """snap_tolerance=0: only exact location equality shares a group."""
    frontend, edges = _frontend(snap_tolerance=0.0)
    frontend.add_query(100, NetworkLocation(edges[3], 0.25), k=2)
    frontend.add_query(101, NetworkLocation(edges[3], 0.26), k=2)
    frontend.add_query(102, NetworkLocation(edges[3], 0.25), k=3)  # other spec
    assert frontend.dedup_stats().physical_queries == 3


def test_snap_tolerance_buckets_nearby_fractions():
    """A positive tolerance groups same-bucket tenants at the anchor."""
    frontend, edges = _frontend(snap_tolerance=0.1)
    anchor = NetworkLocation(edges[3], 0.21)
    frontend.add_query(100, anchor, k=2)
    frontend.add_query(101, NetworkLocation(edges[3], 0.29), k=2)  # same bucket
    frontend.add_query(102, NetworkLocation(edges[3], 0.31), k=2)  # next bucket
    frontend.tick()

    stats = frontend.dedup_stats()
    assert stats.physical_queries == 2 and stats.largest_group == 2
    # The shared physical query is anchored at the first subscriber, and
    # each tenant still reports its own exact (pre-snap) location.
    assert frontend.result_of(101).neighbors == frontend.result_of(100).neighbors
    assert frontend.query_location_of(101).fraction == 0.29

    spec = QuerySpec.knn(2)
    key = frontend.canonical_key(anchor, spec)
    assert key == frontend.canonical_key(NetworkLocation(edges[3], 0.29), spec)
    assert key != frontend.canonical_key(NetworkLocation(edges[3], 0.31), spec)


def test_snap_tolerance_must_be_finite_and_nonnegative():
    """Bad tolerances are rejected with the library's typed error."""
    frontend, _ = _frontend()
    for bad in (-0.1, float("inf"), float("nan")):
        with pytest.raises(MonitoringError):
            DedupFrontend(frontend.server, snap_tolerance=bad)


# ----------------------------------------------------------------------
# install / move / respec lifecycle
# ----------------------------------------------------------------------
def test_pending_install_raises_until_tick():
    """Plain-server parity: results exist only after the next tick."""
    frontend, edges = _frontend()
    frontend.add_query(100, NetworkLocation(edges[3], 0.25), k=2)
    with pytest.raises(UnknownQueryError):
        frontend.result_of(100)
    assert 100 not in frontend.results()
    report = frontend.tick()
    assert 100 in report.changed_queries
    assert frontend.result_of(100).query_id == 100


def test_joining_tenant_is_pending_even_when_group_is_live():
    """A mid-stream joiner has no result until its first tick."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.tick()
    frontend.add_query(101, venue, k=2)  # joins a live group
    with pytest.raises(UnknownQueryError):
        frontend.result_of(101)
    report = frontend.tick()
    assert 101 in report.changed_queries
    assert frontend.result_of(101).neighbors == frontend.result_of(100).neighbors


def test_duplicate_and_unknown_ids_raise_typed_errors():
    """Id misuse mirrors the plain server's typed exceptions."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    with pytest.raises(DuplicateQueryError):
        frontend.add_query(100, venue, k=4)
    with pytest.raises(UnknownQueryError):
        frontend.move_query(999, venue)
    with pytest.raises(UnknownQueryError):
        frontend.remove_query(999)
    with pytest.raises(UnknownQueryError):
        frontend.query_spec_of(999)
    with pytest.raises(UnknownQueryError):
        frontend.query_location_of(999)


def test_move_splits_subscriber_out_of_shared_group():
    """A shared group's mover splits into its own physical query."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.add_query(101, venue, k=2)
    frontend.tick()

    frontend.move_query(101, NetworkLocation(edges[7], 0.5))
    report = frontend.tick()
    assert 101 in report.changed_queries  # regrouped, result may differ
    stats = frontend.dedup_stats()
    assert stats.physical_queries == 2
    assert stats.physical_installs == 2  # the split re-installed physically
    assert frontend.result_of(100).query_id == 100

    # Moving back merges again: refcount 2 on one physical query.
    frontend.move_query(101, venue)
    frontend.tick()
    stats = frontend.dedup_stats()
    assert stats.physical_queries == 1 and stats.largest_group == 2
    assert frontend.result_of(101).neighbors == frontend.result_of(100).neighbors


def test_sole_subscriber_rides_incremental_move_path():
    """A singleton group's move keeps its physical query (no reinstall)."""
    frontend, edges = _frontend()
    frontend.add_query(100, NetworkLocation(edges[3], 0.25), k=2)
    frontend.tick()
    physical_ids = set(frontend.server.query_ids())

    frontend.move_query(100, NetworkLocation(edges[7], 0.5))
    frontend.tick()
    stats = frontend.dedup_stats()
    assert stats.physical_moves == 1
    assert stats.physical_installs == 1  # still the original install
    assert set(frontend.server.query_ids()) == physical_ids


def test_spec_change_through_batch_splits_group():
    """A respec (k change / kind change) leaves the group and rejoins."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.add_query(101, venue, k=2)
    frontend.tick()

    batch = UpdateBatch()
    batch.query_updates.append(QueryUpdate(101, venue, None))
    batch.query_updates.append(QueryUpdate(101, None, venue, k=range_query(40.0)))
    frontend.apply_updates(batch)
    frontend.tick()

    stats = frontend.dedup_stats()
    assert stats.physical_queries == 2
    assert frontend.query_spec_of(101) == QuerySpec.range(40.0)
    assert frontend.query_spec_of(100) == QuerySpec.knn(2)
    assert frontend.result_of(101).query_id == 101


def test_group_collapse_and_reform_same_tick():
    """A key emptying and refilling in one batch is terminate + install."""
    frontend, edges = _frontend()
    venue = NetworkLocation(edges[3], 0.25)
    frontend.add_query(100, venue, k=2)
    frontend.add_query(101, venue, k=2)
    frontend.tick()

    batch = UpdateBatch()
    batch.query_updates.append(QueryUpdate(100, venue, None))
    batch.query_updates.append(QueryUpdate(101, venue, None))
    batch.query_updates.append(QueryUpdate(102, None, venue, k=knn(2)))
    frontend.apply_updates(batch)
    frontend.tick()

    assert frontend.query_ids() == {102}
    stats = frontend.dedup_stats()
    assert stats.physical_queries == 1
    assert stats.physical_installs == 2  # fresh physical id, never reused
    assert frontend.result_of(102).query_id == 102


def test_passthrough_surface_mirrors_wrapped_server():
    """Object/edge updates and introspection delegate to the wrapped server."""
    frontend, edges = _frontend(objects=4)
    assert frontend.snap_tolerance == 0.0
    assert frontend.network is frontend.server.network
    assert frontend.edge_table is frontend.server.edge_table
    assert frontend.object_ids() == {0, 1, 2, 3}

    frontend.add_query(100, NetworkLocation(edges[3], 0.25), k=2)
    frontend.tick()
    before = frontend.current_timestamp
    frontend.move_object(0, NetworkLocation(edges[3], 0.24))
    frontend.remove_object(1)
    frontend.update_edge_weight(edges[3], 5.0)
    frontend.tick()
    assert frontend.current_timestamp == before + 1
    assert frontend.object_ids() == {0, 2, 3}
    assert 0 in frontend.result_of(100).object_ids


# ----------------------------------------------------------------------
# sharded fanout
# ----------------------------------------------------------------------
def test_dedup_over_sharded_server_fans_out():
    """The frontend composes with the sharded server's merged results."""
    network = city_network(120, seed=21)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    server = MonitoringServer(
        network, "ima", edge_table=edge_table, workers=2
    )
    with DedupFrontend(server) as frontend:
        for object_id in range(8):
            frontend.add_object(object_id, NetworkLocation(edges[object_id], 0.5))
        venue = NetworkLocation(edges[3], 0.25)
        for query_id in (100, 101, 102):
            frontend.add_query(query_id, venue, k=2)
        frontend.add_query(200, NetworkLocation(edges[9], 0.4), k=3)
        frontend.tick()
        fanned = frontend.results()
        assert set(fanned) == {100, 101, 102, 200}
        assert fanned[100].neighbors == fanned[102].neighbors
        assert frontend.dedup_stats().physical_queries == 2


# ----------------------------------------------------------------------
# shared-expansion cache
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["csr", "dial"])
def test_share_reproduces_unshared_outcomes(kernel):
    """share=True returns bit-identical outcomes to independent runs."""
    network = city_network(120, seed=9)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id in range(10):
        edge_table.insert_object(object_id, NetworkLocation(edges[object_id], 0.4))
    venue = NetworkLocation(edges[4], 0.3)
    requests = [
        ExpansionRequest(k=2, query_location=venue),
        ExpansionRequest(k=5, query_location=venue),
        ExpansionRequest(k=3, query_location=venue),
        ExpansionRequest(k=1, query_location=venue, fixed_radius=60.0),
        ExpansionRequest(k=2, query_location=NetworkLocation(edges[8], 0.7)),
    ]
    shared = expand_knn_batch(network, edge_table, requests, kernel=kernel, share=True)
    private = expand_knn_batch(network, edge_table, requests, kernel=kernel, share=False)
    for got, want in zip(shared, private):
        assert got.neighbors == want.neighbors
        assert got.radius == want.radius
        # A derived outcome carries the representative's (larger) settled
        # set; it must agree with the private run on every node the private
        # run settled — extra correctly-settled nodes are valid resume state.
        for node, dist in want.state.node_dist.items():
            assert got.state.node_dist[node] == dist


def test_share_derived_states_are_independent_copies():
    """Mutating one derived outcome's state leaves its siblings intact."""
    network = city_network(120, seed=9)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id in range(10):
        edge_table.insert_object(object_id, NetworkLocation(edges[object_id], 0.4))
    venue = NetworkLocation(edges[4], 0.3)
    requests = [
        ExpansionRequest(k=2, query_location=venue),
        ExpansionRequest(k=4, query_location=venue),
    ]
    outcomes = expand_knn_batch(network, edge_table, requests, kernel="csr", share=True)
    snapshot = dict(outcomes[1].state.node_dist)
    outcomes[0].state.node_dist.clear()  # IMA mutates states in place
    assert outcomes[1].state.node_dist == snapshot


def test_share_respects_excluded_objects():
    """Different exclusion sets never share one expansion."""
    network = city_network(120, seed=9)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id in range(10):
        edge_table.insert_object(object_id, NetworkLocation(edges[object_id], 0.4))
    venue = NetworkLocation(edges[4], 0.3)
    requests = [
        ExpansionRequest(k=3, query_location=venue),
        ExpansionRequest(k=3, query_location=venue, excluded_objects={0, 1}),
    ]
    shared = expand_knn_batch(network, edge_table, requests, kernel="csr", share=True)
    private = expand_knn_batch(network, edge_table, requests, kernel="csr", share=False)
    assert shared[1].neighbors == private[1].neighbors
    assert not {0, 1} & {object_id for object_id, _ in shared[1].neighbors}


@pytest.mark.parametrize("kernel", ["csr", "dial", "legacy"])
def test_evaluate_aggregates_matches_per_item_path(kernel):
    """The batched aggregate evaluator equals evaluate_aggregate item-wise."""
    network = city_network(120, seed=9)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    for object_id in range(10):
        edge_table.insert_object(object_id, NetworkLocation(edges[object_id], 0.4))
    depot = NetworkLocation(edges[6], 0.5)
    items = [
        (NetworkLocation(edges[4], 0.3), aggregate_knn(2, (depot,), "sum")),
        (NetworkLocation(edges[4], 0.3), aggregate_knn(3, (depot,), "max")),
        (NetworkLocation(edges[8], 0.7), aggregate_knn(2, (), "sum")),
    ]
    batched = evaluate_aggregates(network, edge_table, items, kernel=kernel)
    for (location, spec), got in zip(items, batched):
        want = evaluate_aggregate(network, edge_table, location, spec, kernel="csr")
        assert got == want


def test_evaluate_aggregates_empty_and_objectless():
    """Degenerate inputs: no items, and no objects in the table."""
    network = city_network(60, seed=9)
    edges = sorted(network.edge_ids())
    edge_table = EdgeTable(network, build_spatial_index=False)
    assert evaluate_aggregates(network, edge_table, []) == []
    results = evaluate_aggregates(
        network,
        edge_table,
        [(NetworkLocation(edges[0], 0.5), aggregate_knn(2))],
    )
    assert results == [([], float("inf"))]


# ----------------------------------------------------------------------
# oracle-backed differentials on the venue workload
# ----------------------------------------------------------------------
@pytest.mark.parametrize("kernel", ["csr", "dial", "legacy"])
def test_popular_venue_dedup_matches_oracle(kernel):
    """Every server kernel serves correct per-tenant results under dedup."""
    report = run_differential_scenario(
        "popular-venue",
        seed=1404 + {"csr": 0, "dial": 1, "legacy": 2}[kernel],
        algorithms=(),
        dedup=True,
        server_kernel=kernel,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


@pytest.mark.parametrize("algorithm", ["gma", "ovh"])
def test_popular_venue_dedup_byte_identical_for_stateless(algorithm):
    """GMA/OVH venue runs survive the harness's strict byte-identity branch.

    These monitors recompute per tick without per-query float history, so
    dedup-on results must equal dedup-off results *bitwise* even when
    tenants join live groups mid-stream (the IMA carve-out documented in
    ``run_differential_scenario`` does not apply).
    """
    report = run_differential_scenario(
        "popular-venue",
        seed=2006,
        algorithms=(),
        dedup=True,
        server_algorithm=algorithm,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_popular_venue_dedup_sharded():
    """Dedup over the sharded server matches the oracle on the venue mix."""
    report = run_differential_scenario(
        "popular-venue",
        seed=4111,
        algorithms=(),
        dedup=True,
        workers=2,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()
