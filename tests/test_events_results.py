"""Tests for the update/event model and the k-NN result containers."""

from __future__ import annotations

import pytest

from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.results import KnnResult, NeighborList, results_equal
from repro.exceptions import InvalidQueryError, SimulationError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation


class TestUpdateRecords:
    def test_object_update_requires_some_location(self):
        with pytest.raises(SimulationError):
            ObjectUpdate(1, None, None)

    def test_object_update_classification(self):
        insert = ObjectUpdate(1, None, NetworkLocation(0, 0.5))
        delete = ObjectUpdate(1, NetworkLocation(0, 0.5), None)
        move = ObjectUpdate(1, NetworkLocation(0, 0.5), NetworkLocation(1, 0.5))
        assert insert.is_insertion and not insert.is_deletion
        assert delete.is_deletion and not delete.is_insertion
        assert not move.is_insertion and not move.is_deletion

    def test_query_installation_requires_k(self):
        with pytest.raises(InvalidQueryError):
            QueryUpdate(1, None, NetworkLocation(0, 0.5))
        update = QueryUpdate(1, None, NetworkLocation(0, 0.5), k=3)
        assert update.is_installation

    def test_edge_update_rejects_non_positive_weight(self):
        with pytest.raises(SimulationError):
            EdgeWeightUpdate(0, 10.0, 0.0)

    def test_edge_update_direction_flags(self):
        assert EdgeWeightUpdate(0, 10.0, 11.0).is_increase
        assert EdgeWeightUpdate(0, 10.0, 9.0).is_decrease
        assert EdgeWeightUpdate(0, 10.0, 9.0).delta == pytest.approx(-1.0)


class TestBatch:
    def test_len_and_is_empty(self):
        batch = UpdateBatch()
        assert batch.is_empty()
        batch.add_edge_change(0, 10.0, 11.0)
        assert len(batch) == 1

    def test_convenience_adders(self):
        batch = UpdateBatch()
        batch.add_object_move(1, NetworkLocation(0, 0.1), NetworkLocation(0, 0.2))
        batch.add_query_move(2, NetworkLocation(0, 0.1), NetworkLocation(0, 0.2))
        batch.add_edge_change(3, 1.0, 2.0)
        assert len(batch) == 3

    def test_normalized_collapses_object_updates(self):
        a, b, c = (NetworkLocation(0, f) for f in (0.1, 0.5, 0.9))
        batch = UpdateBatch()
        batch.add_object_move(1, a, b)
        batch.add_object_move(1, b, c)
        merged = batch.normalized()
        assert len(merged.object_updates) == 1
        update = merged.object_updates[0]
        assert update.old_location == a and update.new_location == c

    def test_normalized_collapses_edge_updates_and_drops_noops(self):
        batch = UpdateBatch()
        batch.add_edge_change(0, 10.0, 12.0)
        batch.add_edge_change(0, 12.0, 10.0)
        batch.add_edge_change(1, 5.0, 6.0)
        merged = batch.normalized()
        assert [update.edge_id for update in merged.edge_updates] == [1]

    def test_normalized_collapses_query_updates(self):
        a, b, c = (NetworkLocation(0, f) for f in (0.1, 0.5, 0.9))
        batch = UpdateBatch()
        batch.add_query_move(7, a, b)
        batch.add_query_move(7, b, c)
        merged = batch.normalized()
        assert len(merged.query_updates) == 1
        assert merged.query_updates[0].old_location == a
        assert merged.query_updates[0].new_location == c

    def test_apply_batch_mutates_shared_state(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(5, NetworkLocation(0, 0.5))
        batch = UpdateBatch()
        batch.add_edge_change(0, line_network.edge(0).weight, 150.0)
        batch.add_object_move(5, NetworkLocation(0, 0.5), NetworkLocation(2, 0.5))
        batch.object_updates.append(ObjectUpdate(6, None, NetworkLocation(1, 0.1)))
        apply_batch(line_network, table, batch)
        assert line_network.edge(0).weight == pytest.approx(150.0)
        assert table.location_of(5) == NetworkLocation(2, 0.5)
        assert table.has_object(6)

    def test_apply_batch_handles_deletions(self, line_network):
        table = EdgeTable(line_network)
        table.insert_object(5, NetworkLocation(0, 0.5))
        batch = UpdateBatch()
        batch.object_updates.append(ObjectUpdate(5, NetworkLocation(0, 0.5), None))
        apply_batch(line_network, table, batch)
        assert not table.has_object(5)


class TestNeighborList:
    def test_requires_positive_k(self):
        with pytest.raises(InvalidQueryError):
            NeighborList(0)

    def test_offer_keeps_minimum(self):
        neighbors = NeighborList(2)
        assert neighbors.offer(1, 10.0)
        assert not neighbors.offer(1, 12.0)
        assert neighbors.offer(1, 5.0)
        assert neighbors.distance_of(1) == 5.0

    def test_radius_is_kth_distance(self):
        neighbors = NeighborList(2, [(1, 5.0), (2, 9.0), (3, 3.0)])
        assert neighbors.radius == pytest.approx(5.0)

    def test_radius_infinite_when_fewer_than_k(self):
        neighbors = NeighborList(3, [(1, 5.0)])
        assert neighbors.radius == float("inf")

    def test_top_k_sorted_with_tiebreak(self):
        neighbors = NeighborList(3, [(2, 5.0), (1, 5.0), (3, 1.0)])
        assert neighbors.top_k() == [(3, 1.0), (1, 5.0), (2, 5.0)]

    def test_assign_overwrites(self):
        neighbors = NeighborList(2, [(1, 5.0)])
        neighbors.assign(1, 9.0)
        assert neighbors.distance_of(1) == 9.0

    def test_discard(self):
        neighbors = NeighborList(2, [(1, 5.0)])
        assert neighbors.discard(1)
        assert not neighbors.discard(1)
        assert 1 not in neighbors

    def test_trim_to_k(self):
        neighbors = NeighborList(2, [(1, 1.0), (2, 2.0), (3, 3.0)])
        neighbors.trim_to_k()
        assert len(neighbors) == 2
        assert 3 not in neighbors

    def test_as_result(self):
        neighbors = NeighborList(2, [(1, 1.0), (2, 2.0), (3, 3.0)])
        result = neighbors.as_result(query_id=9)
        assert isinstance(result, KnnResult)
        assert result.object_ids == (1, 2)
        assert result.radius == pytest.approx(2.0)
        assert result.is_complete


class TestKnnResult:
    def test_distance_of(self):
        result = KnnResult(1, 2, ((5, 1.0), (6, 2.0)), 2.0)
        assert result.distance_of(6) == 2.0
        assert result.distance_of(7) is None

    def test_same_objects(self):
        a = KnnResult(1, 2, ((5, 1.0), (6, 2.0)), 2.0)
        b = KnnResult(1, 2, ((6, 2.0), (5, 1.0)), 2.0)
        assert a.same_objects(b)

    def test_incomplete_result(self):
        result = KnnResult(1, 5, ((5, 1.0),), float("inf"))
        assert not result.is_complete

    def test_results_equal_compares_distance_profiles(self):
        assert results_equal([(1, 1.0), (2, 2.0)], [(9, 1.0), (8, 2.0)])
        assert not results_equal([(1, 1.0)], [(1, 1.0), (2, 2.0)])
        assert not results_equal([(1, 1.0)], [(1, 1.5)])
