"""Tests for planar geometry primitives (points, rectangles, segments)."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial.geometry import Point, Rect, Segment, segment_intersection


class TestPoint:
    def test_distance_to_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_distance_is_symmetric(self):
        a, b = Point(1, 2), Point(-4, 7)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    def test_translated(self):
        assert Point(1, 1).translated(2, -1) == Point(3, 0)

    def test_as_tuple(self):
        assert Point(2.5, -1.0).as_tuple() == (2.5, -1.0)


class TestRect:
    def test_degenerate_rect_raises(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_from_points(self):
        rect = Rect.from_points([Point(1, 5), Point(3, 2)])
        assert (rect.min_x, rect.min_y, rect.max_x, rect.max_y) == (1, 2, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            Rect.from_points([])

    def test_dimensions_and_center(self):
        rect = Rect(0, 0, 4, 2)
        assert rect.width == 4
        assert rect.height == 2
        assert rect.area == 8
        assert rect.center == Point(2, 1)

    def test_contains_point_boundaries(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains_point(Point(0, 0))
        assert rect.contains_point(Point(2, 2))
        assert not rect.contains_point(Point(2.1, 1))

    def test_intersects_overlapping(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))

    def test_intersects_touching(self):
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_intersects_disjoint(self):
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))

    def test_quadrants_tile_parent(self):
        rect = Rect(0, 0, 4, 4)
        quadrants = rect.quadrants()
        assert len(quadrants) == 4
        assert sum(q.area for q in quadrants) == pytest.approx(rect.area)
        for q in quadrants:
            assert rect.intersects(q)

    def test_expanded(self):
        rect = Rect(0, 0, 1, 1).expanded(0.5)
        assert (rect.min_x, rect.max_x) == (-0.5, 1.5)


class TestSegment:
    def test_length(self):
        assert Segment(Point(0, 0), Point(3, 4)).length == pytest.approx(5.0)

    def test_bounding_box(self):
        box = Segment(Point(2, 5), Point(0, 1)).bounding_box
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, 1, 2, 5)

    def test_point_at_fraction(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at_fraction(0.3) == Point(3, 0)

    def test_point_at_fraction_clamps(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.point_at_fraction(1.5) == Point(10, 0)

    def test_project_fraction_midpoint(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.project_fraction(Point(5, 3)) == pytest.approx(0.5)

    def test_project_fraction_beyond_ends_clamps(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.project_fraction(Point(-5, 0)) == 0.0
        assert segment.project_fraction(Point(15, 0)) == 1.0

    def test_distance_to_point_perpendicular(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(5, 4)) == pytest.approx(4.0)

    def test_distance_to_point_past_endpoint(self):
        segment = Segment(Point(0, 0), Point(10, 0))
        assert segment.distance_to_point(Point(13, 4)) == pytest.approx(5.0)

    def test_intersects_rect_crossing(self):
        segment = Segment(Point(-1, 0.5), Point(2, 0.5))
        assert segment.intersects_rect(Rect(0, 0, 1, 1))

    def test_intersects_rect_endpoint_inside(self):
        segment = Segment(Point(0.5, 0.5), Point(5, 5))
        assert segment.intersects_rect(Rect(0, 0, 1, 1))

    def test_intersects_rect_disjoint(self):
        segment = Segment(Point(3, 3), Point(5, 5))
        assert not segment.intersects_rect(Rect(0, 0, 1, 1))

    def test_intersects_rect_diagonal_miss(self):
        # The segment's bounding box overlaps the rect but the segment itself
        # passes outside the corner.
        segment = Segment(Point(2.5, 0), Point(0, 2.5))
        assert not segment.intersects_rect(Rect(0, 0, 1, 1))


class TestSegmentIntersection:
    def test_crossing_segments(self):
        point = segment_intersection(
            Segment(Point(0, 0), Point(2, 2)), Segment(Point(0, 2), Point(2, 0))
        )
        assert point is not None
        assert point.x == pytest.approx(1.0)
        assert point.y == pytest.approx(1.0)

    def test_parallel_segments_do_not_intersect(self):
        assert (
            segment_intersection(
                Segment(Point(0, 0), Point(1, 0)), Segment(Point(0, 1), Point(1, 1))
            )
            is None
        )

    def test_collinear_overlapping_segments_share_a_point(self):
        point = segment_intersection(
            Segment(Point(0, 0), Point(2, 0)), Segment(Point(1, 0), Point(3, 0))
        )
        assert point is not None

    def test_non_crossing_segments(self):
        assert (
            segment_intersection(
                Segment(Point(0, 0), Point(1, 1)), Segment(Point(2, 2), Point(3, 2))
            )
            is None
        )


@settings(max_examples=60, deadline=None)
@given(
    ax=st.floats(-100, 100), ay=st.floats(-100, 100),
    bx=st.floats(-100, 100), by=st.floats(-100, 100),
    px=st.floats(-100, 100), py=st.floats(-100, 100),
)
def test_property_projection_is_nearest_point(ax, ay, bx, by, px, py):
    """The projected point is at least as close as either endpoint."""
    segment = Segment(Point(ax, ay), Point(bx, by))
    point = Point(px, py)
    nearest = segment.distance_to_point(point)
    assert nearest <= point.distance_to(segment.start) + 1e-9
    assert nearest <= point.distance_to(segment.end) + 1e-9
