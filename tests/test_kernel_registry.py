"""The kernel registry: names, capability flags, validation, enforcement.

:mod:`repro.network.kernels` is the single home of the kernel-name string
literals; everything else resolves names through it.  These tests pin the
registry's contents, the typed :class:`UnknownKernelError` every entry
point raises at construction, and — via an AST sweep over the package —
the invariant that no bare kernel-name literal survives anywhere else in
``src/repro``.
"""

from __future__ import annotations

import ast
import pathlib

import pytest

import repro
from repro.exceptions import MonitoringError, UnknownKernelError
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.kernels import (
    DEFAULT_BATCH_KERNEL,
    DEFAULT_KERNEL,
    KERNEL_CSR,
    KERNEL_DIAL,
    KERNEL_LEGACY,
    KERNEL_NATIVE,
    available_kernels,
    registered_kernels,
    resolve_kernel,
    validate_kernel,
)
from repro.network.native import native_available


@pytest.fixture(scope="module")
def small_world():
    network = city_network(80, seed=11)
    return network, EdgeTable(network, build_spatial_index=False)


# ---------------------------------------------------------------------------
# registry contents
# ---------------------------------------------------------------------------
def test_registered_kernels_names_every_engine():
    assert registered_kernels() == (
        KERNEL_CSR,
        KERNEL_DIAL,
        KERNEL_NATIVE,
        KERNEL_LEGACY,
    )


def test_available_kernels_subset_tracks_native_probe():
    available = available_kernels()
    assert set(available) <= set(registered_kernels())
    assert KERNEL_CSR in available and KERNEL_DIAL in available
    assert (KERNEL_NATIVE in available) == native_available()


def test_defaults_resolve():
    assert resolve_kernel(DEFAULT_KERNEL).name == KERNEL_CSR
    assert resolve_kernel(DEFAULT_BATCH_KERNEL).name == KERNEL_DIAL


def test_capability_flags():
    assert not resolve_kernel(KERNEL_CSR).batch
    assert resolve_kernel(KERNEL_DIAL).batch
    native = resolve_kernel(KERNEL_NATIVE)
    assert native.batch and native.compiled
    legacy = resolve_kernel(KERNEL_LEGACY)
    assert not legacy.shared_memory and not legacy.compiled
    for name in registered_kernels():
        spec = resolve_kernel(name)
        assert spec.name == name and spec.description
        if name != KERNEL_NATIVE:
            assert spec.available  # pure-python engines always run


def test_validate_kernel_round_trips():
    for name in registered_kernels():
        assert validate_kernel(name) == name


# ---------------------------------------------------------------------------
# typed rejection
# ---------------------------------------------------------------------------
def test_unknown_kernel_error_carries_choices():
    with pytest.raises(UnknownKernelError) as excinfo:
        resolve_kernel("simd")
    err = excinfo.value
    assert err.kernel == "simd"
    assert err.choices == registered_kernels()
    for name in registered_kernels():
        assert repr(name) in str(err)
    assert isinstance(err, MonitoringError)  # old except-clauses keep working


@pytest.mark.parametrize("algorithm", ["ovh", "ima", "gma"])
def test_monitors_reject_unknown_kernel_at_construction(small_world, algorithm):
    from repro.core.server import ALGORITHMS

    network, table = small_world
    with pytest.raises(UnknownKernelError):
        ALGORITHMS[algorithm](network, table, kernel="diall")


def test_server_and_simulator_reject_unknown_kernel_at_construction(small_world):
    from repro.sim.simulator import Simulator
    from repro.sim.workload import WorkloadConfig

    network, table = small_world
    with pytest.raises(UnknownKernelError):
        repro.MonitoringServer(network, "ima", edge_table=table, kernel="nativ")
    simulator = Simulator(
        WorkloadConfig(num_objects=10, num_queries=2, network_edges=120)
    )
    with pytest.raises(UnknownKernelError):
        simulator.make_server(kernel="nativ")


def test_server_validates_even_with_prebuilt_monitor(small_world):
    # kernel= is ignored for monitor instances, but a typo still fails fast.
    network, table = small_world
    monitor = repro.ImaMonitor(network, table)
    with pytest.raises(UnknownKernelError):
        repro.MonitoringServer(network, monitor, edge_table=table, kernel="oops")


def test_evaluate_aggregate_rejects_unknown_kernel(small_world):
    from repro.core.queries import QuerySpec, evaluate_aggregate
    from repro.network.graph import NetworkLocation

    network, table = small_world
    edge_id = next(iter(network.edge_ids()))
    with pytest.raises(UnknownKernelError):
        evaluate_aggregate(
            network,
            table,
            NetworkLocation(edge_id, 0.5),
            QuerySpec.knn(1),
            kernel="quantum",
        )


def test_top_level_exports():
    assert repro.registered_kernels is registered_kernels
    assert repro.available_kernels is available_kernels
    assert repro.resolve_kernel is resolve_kernel
    assert repro.native_available is native_available
    assert repro.UnknownKernelError is UnknownKernelError
    assert "KernelSpec" in repro.__all__


# ---------------------------------------------------------------------------
# single-home enforcement: no bare kernel literals outside the registry
# ---------------------------------------------------------------------------
def _docstring_ids(tree: ast.AST) -> set:
    ids = set()
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.Module, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            body = getattr(node, "body", [])
            if (
                body
                and isinstance(body[0], ast.Expr)
                and isinstance(body[0].value, ast.Constant)
                and isinstance(body[0].value.value, str)
            ):
                ids.add(id(body[0].value))
    return ids


def test_no_bare_kernel_literals_outside_registry():
    """Every ``src/repro`` module resolves kernel names through the registry.

    Docstrings are exempt (prose and examples legitimately spell the
    names); everything else — defaults, comparisons, dispatch tables —
    must use the ``KERNEL_*`` constants so a grep for ``"dial"`` in code
    hits exactly one module.
    """
    names = set(registered_kernels())
    package_root = pathlib.Path(repro.__file__).resolve().parent
    offenders = []
    for path in sorted(package_root.rglob("*.py")):
        relative = path.relative_to(package_root).as_posix()
        if relative == "network/kernels.py":
            continue
        tree = ast.parse(path.read_text(encoding="utf-8"))
        docstrings = _docstring_ids(tree)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and node.value in names
                and id(node) not in docstrings
            ):
                offenders.append(f"{relative}:{node.lineno}: {node.value!r}")
    assert not offenders, (
        "bare kernel-name literals outside repro.network.kernels:\n  "
        + "\n  ".join(offenders)
    )
