"""Golden-file tests for the ways importer.

Each ``tests/data/realism/<name>.ways`` fixture has a committed
``<name>.golden.json`` capturing the imported network's CSR columns,
speed-class map and pipeline stats.  The import pipeline is fully
deterministic, so the comparison is exact — any refactor that changes
dedup order, component selection or weight mapping shows up as a readable
JSON diff.  Regenerate after an intentional change with::

    PYTHONPATH=src python -m pytest tests/test_realism_goldens.py --regen-goldens
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.network.csr import csr_snapshot
from repro.realism import import_road_network

DATA_DIR = Path(__file__).parent / "data" / "realism"
FIXTURES = ("triangle_city", "motorway_loop")


def _golden_payload(name: str) -> dict:
    """The canonical JSON-able description of one imported fixture."""
    result = import_road_network(DATA_DIR / f"{name}.ways")
    csr = csr_snapshot(result.network)
    return {
        "stats": dataclasses.asdict(result.stats),
        "speed_classes": {str(k): v for k, v in sorted(result.speed_classes.items())},
        "node_ids": list(csr.node_ids),
        "edge_ids": list(csr.edge_ids),
        "indptr": list(csr.indptr),
        "adj_node": list(csr.adj_node),
        "adj_weight": list(csr.adj_weight),
        "edge_start": list(csr.edge_start),
        "edge_end": list(csr.edge_end),
        "edge_weight": list(csr.edge_weight),
    }


@pytest.mark.parametrize("name", FIXTURES)
def test_importer_matches_golden(name, request):
    """The imported CSR of each fixture matches its committed golden."""
    golden_path = DATA_DIR / f"{name}.golden.json"
    payload = _golden_payload(name)
    if request.config.getoption("--regen-goldens"):
        golden_path.write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n", encoding="utf-8"
        )
        pytest.skip(f"regenerated {golden_path.name}")
    assert golden_path.exists(), (
        f"{golden_path} missing; run with --regen-goldens to create it"
    )
    golden = json.loads(golden_path.read_text(encoding="utf-8"))
    assert payload == golden, (
        f"importer output for {name}.ways diverged from {golden_path.name}; "
        "if the change is intentional, rerun with --regen-goldens"
    )


def test_triangle_city_pipeline_effects():
    """The triangle fixture exercises every drop path with known counts."""
    result = import_road_network(DATA_DIR / "triangle_city.ways")
    stats = result.stats
    assert stats.self_loops_dropped == 1          # way 13: 3 -> 3
    assert stats.parallel_dropped == 1            # way 12 loses to way 10's 1-2
    assert stats.components == 2                  # core + island
    assert stats.component_nodes_dropped == 2     # nodes 5, 6
    assert result.network.node_count == 4
    assert result.network.edge_count == 4
    # The surviving 1-2 edge is the cheaper street, not the side road.
    street_edges = [e for e, c in result.speed_classes.items() if c == "street"]
    assert len(street_edges) == 3
    assert result.network.is_connected()


def test_motorway_loop_pipeline_effects():
    """The loop fixture covers zero-length segments and isolated nodes."""
    result = import_road_network(DATA_DIR / "motorway_loop.ways")
    stats = result.stats
    assert stats.zero_length_segments == 1        # coincident nodes 3 / 4
    assert stats.isolated_nodes_dropped == 1      # node 7
    assert stats.components == 1
    assert result.network.node_count == 6
    assert result.network.is_connected()
    # Motorway weights beat street weights for the same geometry: the two
    # 100-unit motorway segments are cheaper than the 100-unit streets.
    weights = {
        result.speed_classes[e.edge_id]: e.weight for e in result.network.edges()
    }
    assert weights["motorway"] < weights["street"]
