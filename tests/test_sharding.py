"""Unit tests for the sharded execution layer.

Covers the shared-memory CSR transport (export / attach / weight deltas),
the shard router, the :class:`ShardedMonitoringServer` lifecycle, and the
equivalence of sharded and single-process results on identical update
streams.  The oracle-backed end-to-end runs live in
``test_sharded_differential.py``.
"""

from __future__ import annotations

import pickle

import pytest

from repro import (
    MonitoringServer,
    ShardedMonitoringServer,
    city_network,
    csr_snapshot,
    shard_of,
)
from repro.core.events import UpdateBatch
from repro.core.sharding import default_start_method
from repro.exceptions import (
    DuplicateObjectError,
    MonitoringError,
    ServerFailedError,
    UnknownQueryError,
)
from repro.network.csr import SharedCSR, attach_shared_csr

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


# ----------------------------------------------------------------------
# shard router
# ----------------------------------------------------------------------
def test_shard_of_is_deterministic_and_in_range():
    for query_id in (0, 1, 7, 1_000_000, 1_000_001, 2**40):
        for shards in (1, 2, 3, 8):
            shard = shard_of(query_id, shards)
            assert 0 <= shard < shards
            assert shard == shard_of(query_id, shards)


def test_shard_of_balances_sequential_and_strided_ids():
    for stride in (1, 2, 4, 8):
        counts = [0, 0, 0, 0]
        for index in range(400):
            counts[shard_of(1_000_000 + index * stride, 4)] += 1
        # No shard should be starved or hog the assignment.
        assert min(counts) > 40, (stride, counts)


# ----------------------------------------------------------------------
# network pickling (state shipping)
# ----------------------------------------------------------------------
def test_network_pickles_without_listeners():
    network = city_network(80, seed=1)
    csr_snapshot(network)  # registers a weight listener
    assert network._weight_listeners
    replica = pickle.loads(pickle.dumps(network))
    assert replica._weight_listeners == []
    assert replica.topology_version == network.topology_version
    assert sorted(replica.edge_ids()) == sorted(network.edge_ids())
    edge_id = next(iter(network.edge_ids()))
    assert replica.edge(edge_id).weight == network.edge(edge_id).weight
    # The replica is independent: mutating it leaves the original alone.
    replica.set_edge_weight(edge_id, 123.0)
    assert network.edge(edge_id).weight != 123.0


# ----------------------------------------------------------------------
# shared-memory CSR transport
# ----------------------------------------------------------------------
@pytest.mark.parametrize("zero_copy", [True, False])
def test_shared_csr_roundtrip(zero_copy):
    network = city_network(60, seed=2)
    snapshot = csr_snapshot(network)
    reference = {
        "indptr": list(snapshot.indptr),
        "adj_node": list(snapshot.adj_node),
        "adj_eid": list(snapshot.adj_eid),
        "adj_weight": list(snapshot.adj_weight),
        "edge_weight": list(snapshot.edge_weight),
        "inc_edge": list(snapshot.inc_edge),
    }
    shared = SharedCSR(snapshot)
    try:
        replica = pickle.loads(pickle.dumps(network))
        handle = pickle.loads(pickle.dumps(shared.handle))  # ships through pipes
        attached = attach_shared_csr(replica, handle, zero_copy=zero_copy)
        for name, expected in reference.items():
            assert list(getattr(attached, name)) == expected, name
        assert attached.node_ids == snapshot.node_ids
        assert attached.edge_ids == snapshot.edge_ids
        # Weight patch on the exporting side: zero-copy views see it
        # immediately; private copies rely on their own network's listener.
        edge_id = snapshot.edge_ids[0]
        position = snapshot.index_of_edge(edge_id)
        network.set_edge_weight(edge_id, 77.0)
        if zero_copy:
            assert float(attached.edge_weight[position]) == 77.0
        replica.set_edge_weight(edge_id, 77.0)
        assert float(attached.edge_weight[position]) == 77.0
        assert all(
            float(attached.adj_weight[slot]) == 77.0
            for slot in attached._entry_slots[position]
        )
        attached.close()
    finally:
        shared.unlink()
        shared.close()


def test_shared_csr_delta_application():
    network = city_network(40, seed=3)
    snapshot = csr_snapshot(network)
    shared = SharedCSR(snapshot)
    try:
        replica = pickle.loads(pickle.dumps(network))
        attached = attach_shared_csr(replica, shared.handle, zero_copy=False)
        edge_id = snapshot.edge_ids[1]
        attached.apply_weight_deltas([(edge_id, 55.0), (10**9, 1.0)])  # unknown id ignored
        position = attached.index_of_edge(edge_id)
        assert float(attached.edge_weight[position]) == 55.0
        attached.close()
    finally:
        shared.unlink()
        shared.close()


def test_attach_rejects_topology_mismatch():
    network = city_network(40, seed=4)
    shared = SharedCSR(csr_snapshot(network))
    try:
        replica = pickle.loads(pickle.dumps(network))
        node_id = max(replica.node_ids()) + 1
        replica.add_node(node_id, 0.0, 0.0)
        with pytest.raises(MonitoringError):
            attach_shared_csr(replica, shared.handle)
    finally:
        shared.unlink()
        shared.close()


def test_expand_knn_over_attached_snapshot_matches_original():
    """The kernel returns identical results over shared numpy columns."""
    from repro.core.search import expand_knn
    from repro.network.csr import install_snapshot
    from repro.network.edge_table import EdgeTable
    from repro.network.graph import NetworkLocation

    network = city_network(100, seed=5)
    edge_table = EdgeTable(network, build_spatial_index=False)
    edge_ids = sorted(network.edge_ids())
    for object_id in range(12):
        edge_table.insert_object(
            object_id, NetworkLocation(edge_ids[(object_id * 7) % len(edge_ids)], 0.25)
        )
    query = NetworkLocation(edge_ids[3], 0.5)
    expected = expand_knn(network, edge_table, k=4, query_location=query)

    shared = SharedCSR(csr_snapshot(network), adopt=False)
    try:
        replica = pickle.loads(pickle.dumps(network))
        replica_table = EdgeTable(replica, build_spatial_index=False)
        for object_id, location in edge_table.all_objects():
            replica_table.insert_object(object_id, location)
        attached = attach_shared_csr(replica, shared.handle, zero_copy=True)
        install_snapshot(replica, attached)
        outcome = expand_knn(replica, replica_table, k=4, query_location=query)
        assert [
            (int(i), float(d)) for i, d in outcome.neighbors
        ] == list(expected.neighbors)
        assert float(outcome.radius) == expected.radius
        attached.close()
    finally:
        shared.unlink()
        shared.close()


# ----------------------------------------------------------------------
# sharded server lifecycle and equivalence
# ----------------------------------------------------------------------
def _populate(server, network):
    box = network.bounding_box()
    for object_id in range(24):
        server.add_object_at(
            object_id,
            x=box.min_x + (box.max_x - box.min_x) * ((object_id * 37) % 100) / 100.0,
            y=box.min_y + (box.max_y - box.min_y) * ((object_id * 61) % 100) / 100.0,
        )
    for index in range(9):
        server.add_query_at(
            1_000_000 + index,
            x=box.min_x + (box.max_x - box.min_x) * ((index * 29) % 100) / 100.0,
            y=box.min_y + (box.max_y - box.min_y) * ((index * 53) % 100) / 100.0,
            k=3,
        )


def _drive(server, network):
    reports = [server.tick()]
    edge_ids = sorted(network.edge_ids())
    box = network.bounding_box()
    for step in range(1, 4):
        server.move_object_at(step, x=box.center.x + 11.0 * step, y=box.center.y)
        server.move_query_at(1_000_000 + step, x=box.center.x, y=box.center.y - 9.0 * step)
        server.update_edge_weight(
            edge_ids[step], network.edge(edge_ids[step]).weight * (1.0 + 0.1 * step)
        )
        if step == 2:
            server.remove_object(7)
            server.remove_query(1_000_008)
            server.add_object_at(100 + step, x=box.center.x, y=box.center.y)
        reports.append(server.tick())
    return reports


@pytest.mark.parametrize("algorithm", ["ima", "gma", "ovh"])
def test_sharded_results_match_single_process(algorithm):
    single_net = city_network(250, seed=11)
    sharded_net = city_network(250, seed=11)
    single = MonitoringServer(single_net, algorithm=algorithm)
    with MonitoringServer(sharded_net, algorithm=algorithm, workers=3) as sharded:
        assert isinstance(sharded, ShardedMonitoringServer)
        assert sharded.workers == 3
        assert sharded.algorithm_name == single.algorithm_name
        _populate(single, single_net)
        _populate(sharded, sharded_net)
        single_reports = _drive(single, single_net)
        sharded_reports = _drive(sharded, sharded_net)
        for expected, actual in zip(single_reports, sharded_reports):
            assert expected.timestamp == actual.timestamp
            assert expected.changed_queries == actual.changed_queries
            assert expected.counters.keys() == actual.counters.keys()
            if algorithm != "gma":
                # OVH/IMA process queries independently, so summed work
                # counters are partition-invariant.  GMA's shared execution
                # legitimately does different (usually more) total work when
                # its query groups are split across shards.
                assert expected.counters == actual.counters
        assert single.results().keys() == sharded.results().keys()
        for query_id, expected in single.results().items():
            actual = sharded.result_of(query_id)
            assert actual.neighbors == expected.neighbors
            assert actual.radius == expected.radius


def test_workers_one_builds_plain_server():
    network = city_network(60, seed=12)
    server = MonitoringServer(network, workers=1)
    assert type(server) is MonitoringServer
    server.close()  # base close() is a no-op, but uniform


def test_sharded_server_validation_and_errors():
    network = city_network(60, seed=13)
    with pytest.raises(MonitoringError):
        ShardedMonitoringServer(network, workers=0)
    with pytest.raises(MonitoringError):
        ShardedMonitoringServer(network, algorithm="nope", workers=2)
    with MonitoringServer(network, workers=2) as server:
        server.add_object_at(1, x=10.0, y=10.0)
        with pytest.raises(DuplicateObjectError):
            server.add_object_at(1, x=20.0, y=20.0)
        with pytest.raises(UnknownQueryError):
            server.result_of(42)
        # AttributeError (not MonitoringError) so hasattr/getattr behave.
        with pytest.raises(AttributeError):
            _ = server.monitor
        assert getattr(server, "monitor", None) is None
    # After close, processing raises and closing again is a no-op.
    with pytest.raises(MonitoringError):
        server.tick()
    server.close()


def test_sharded_server_topology_resync():
    single_net = city_network(150, seed=14)
    sharded_net = city_network(150, seed=14)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(sharded_net, algorithm="ima", workers=2) as sharded:
        _populate(single, single_net)
        _populate(sharded, sharded_net)
        single.tick()
        sharded.tick()
        # Out-of-band topology edit on both networks -> the sharded server
        # must re-ship state and snapshot on the next tick.
        for net, server in ((single_net, single), (sharded_net, sharded)):
            node_id = max(net.node_ids()) + 1
            anchor = net.node(next(iter(net.node_ids())))
            net.add_node(node_id, anchor.x + 3.0, anchor.y + 3.0)
            net.add_edge(max(net.edge_ids()) + 1, anchor.node_id, node_id, 25.0)
            server.move_object_at(2, x=anchor.x, y=anchor.y)
            server.tick()
        for query_id, expected in single.results().items():
            assert sharded.result_of(query_id).neighbors == expected.neighbors


def test_same_tick_reinstall_with_new_k():
    """remove_query + add_query of one id in one tick must adopt the new k.

    Section 4.5 normalization collapses the pair into a movement carrying
    the new k; monitors must split it back into terminate + install (the k
    cannot be applied as a movement), and the sharded server must stay
    identical to the single-process one — including across a topology
    resync, which re-registers queries with the parent's k.
    """
    single_net = city_network(150, seed=23)
    sharded_net = city_network(150, seed=23)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(sharded_net, algorithm="ima", workers=2) as sharded:
        _populate(single, single_net)
        _populate(sharded, sharded_net)
        single.tick()
        sharded.tick()
        for server in (single, sharded):
            location = server.snap(100.0, 100.0)
            server.remove_query(1_000_002)
            server.add_query(1_000_002, location, k=7)
            server.tick()
        assert len(single.result_of(1_000_002).neighbors) == 7
        assert sharded.result_of(1_000_002).neighbors == single.result_of(
            1_000_002
        ).neighbors
        # Now bump topology: resync re-registers with k=7 on the workers;
        # the single server must agree afterwards too.
        for net, server in ((single_net, single), (sharded_net, sharded)):
            node_id = max(net.node_ids()) + 1
            anchor = net.node(next(iter(net.node_ids())))
            net.add_node(node_id, anchor.x + 2.0, anchor.y + 2.0)
            net.add_edge(max(net.edge_ids()) + 1, anchor.node_id, node_id, 40.0)
            server.move_object_at(1, x=anchor.x, y=anchor.y)
            server.tick()
        assert sharded.result_of(1_000_002).neighbors == single.result_of(
            1_000_002
        ).neighbors


def test_apply_updates_preserves_reinstall_k():
    """A pre-normalized terminate+reinstall batch keeps its new k end to end."""
    from repro.core.events import QueryUpdate, UpdateBatch

    single_net = city_network(120, seed=27)
    sharded_net = city_network(120, seed=27)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(sharded_net, algorithm="ima", workers=2) as sharded:
        for server in (single, sharded):
            server.add_object_at(1, x=20.0, y=20.0)
            server.add_object_at(2, x=60.0, y=50.0)
            server.add_object_at(3, x=90.0, y=90.0)
            location = server.add_query_at(100, x=40.0, y=40.0, k=1)
            server.tick()
            batch = UpdateBatch()
            batch.query_updates.append(QueryUpdate(100, location, None))
            batch.query_updates.append(QueryUpdate(100, None, location, k=3))
            server.apply_updates(batch.normalized())
            server.tick()
            assert server.result_of(100).k == 3
            assert len(server.result_of(100).neighbors) == 3
        assert sharded.result_of(100).neighbors == single.result_of(100).neighbors


def test_every_public_method_raises_typed_error_after_close():
    """Use-after-close raises MonitoringError everywhere — never a hang or
    AttributeError.  Results are no exception: a closed fleet can never
    refresh the cache, so serving it would silently return stale answers;
    callers keep the dict returned by results() *before* closing instead."""
    network = city_network(80, seed=24)
    with MonitoringServer(network, algorithm="ima", workers=2) as server:
        server.add_object_at(1, x=30.0, y=30.0)
        server.add_query_at(1_000_000, x=35.0, y=40.0, k=1)
        server.tick()
        final = server.results()
    assert set(final) == {1_000_000}
    with pytest.raises(MonitoringError, match="closed"):
        server.tick()
    with pytest.raises(MonitoringError, match="closed"):
        server.take_pending_batch()
    with pytest.raises(MonitoringError, match="closed"):
        server.apply_taken_batch(UpdateBatch(timestamp=99))
    with pytest.raises(MonitoringError, match="closed"):
        server.snapshot_state()
    with pytest.raises(MonitoringError, match="closed"):
        server.result_of(1_000_000)
    with pytest.raises(MonitoringError, match="closed"):
        server.results()
    with pytest.raises(MonitoringError, match="closed"):
        server.discard_pending()
    with pytest.raises(MonitoringError, match="closed"):
        server.worker_peak_rss()
    # Ingestion fails fast too — buffered updates could never be processed.
    with pytest.raises(MonitoringError, match="closed"):
        server.add_object_at(2, x=50.0, y=50.0)
    with pytest.raises(MonitoringError, match="closed"):
        server.remove_query(1_000_000)
    # close() stays idempotent, and the errors stay typed (MonitoringError,
    # not ServerFailedError — the server was closed deliberately).
    server.close()
    try:
        server.results()
    except MonitoringError as exc:
        assert not isinstance(exc, ServerFailedError)


def test_plain_subclass_rejects_workers():
    """A direct subclass cannot silently swallow workers > 1."""

    class LoggingServer(MonitoringServer):
        pass

    network = city_network(60, seed=28)
    assert type(LoggingServer(network)) is LoggingServer
    with pytest.raises(MonitoringError, match="in-process"):
        LoggingServer(network, workers=4)


def test_close_restores_adopted_snapshot_columns():
    """close() hands the parent's cached snapshot back to private lists."""
    network = city_network(80, seed=26)
    with MonitoringServer(network, algorithm="ima", workers=2) as server:
        server.add_object_at(1, x=30.0, y=30.0)
        server.add_query_at(1_000_000, x=35.0, y=40.0, k=1)
        server.tick()
        snapshot = csr_snapshot(network)
        assert not isinstance(snapshot.adj_weight, list)  # adopted shm views
    snapshot = csr_snapshot(network)
    assert isinstance(snapshot.adj_weight, list)  # restored on close
    # The restored snapshot still tracks weight changes in-process.
    edge_id = snapshot.edge_ids[0]
    network.set_edge_weight(edge_id, 99.0)
    assert snapshot.edge_weight[snapshot.index_of_edge(edge_id)] == 99.0


def test_workers_zero_rejected_everywhere():
    network = city_network(60, seed=25)
    with pytest.raises(MonitoringError):
        MonitoringServer(network, workers=0)
    with pytest.raises(MonitoringError):
        MonitoringServer(network, workers=-2)


def test_resync_with_pending_termination():
    """A topology bump with an un-ticked remove_query must not crash resync."""
    single_net = city_network(120, seed=21)
    sharded_net = city_network(120, seed=21)
    single = MonitoringServer(single_net, algorithm="ima")
    with MonitoringServer(sharded_net, algorithm="ima", workers=2) as sharded:
        _populate(single, single_net)
        _populate(sharded, sharded_net)
        single.tick()
        sharded.tick()
        for net, server in ((single_net, single), (sharded_net, sharded)):
            server.remove_query(1_000_004)  # termination pending at bump time
            node_id = max(net.node_ids()) + 1
            anchor = net.node(next(iter(net.node_ids())))
            net.add_node(node_id, anchor.x + 2.0, anchor.y + 2.0)
            net.add_edge(max(net.edge_ids()) + 1, anchor.node_id, node_id, 30.0)
            server.tick()
        assert single.results().keys() == sharded.results().keys()
        assert 1_000_004 not in sharded.results()
        for query_id, expected in single.results().items():
            assert sharded.result_of(query_id).neighbors == expected.neighbors


def test_dead_worker_fails_closed():
    """A killed worker turns the next tick into MonitoringError + closed server."""
    network = city_network(80, seed=22)
    server = ShardedMonitoringServer(network, algorithm="ima", workers=2)
    try:
        server.add_object_at(1, x=30.0, y=30.0)
        server.add_query_at(1_000_000, x=35.0, y=40.0, k=1)
        server.tick()
        server._shards[0].process.terminate()
        server._shards[0].process.join(timeout=5.0)
        server.add_object_at(2, x=60.0, y=60.0)
        with pytest.raises(MonitoringError):
            server.tick()
        # Fail-closed: the server refuses further work instead of silently
        # serving results from an out-of-sync fleet.
        with pytest.raises(MonitoringError, match="closed"):
            server.tick()
    finally:
        server.close()  # idempotent


def test_harness_single_worker_leg_still_compares_two_servers():
    """workers=1 must drive a sharded server against the in-process baseline."""
    from repro.testing import run_differential_scenario

    reference = run_differential_scenario(
        "uniform-drift", seed=77, algorithms=(), workers=4, timestamps=3
    )
    single_leg = run_differential_scenario(
        "uniform-drift", seed=77, algorithms=(), workers=1, timestamps=3
    )
    assert single_leg.ok, single_leg.failure_message()
    # Same number of per-query checks in both legs: two servers each.
    assert single_leg.checks == reference.checks > 0


def test_sharded_server_spawn_start_method():
    """One run under 'spawn' proves the state shipping is fork-independent."""
    if "spawn" not in __import__("multiprocessing").get_all_start_methods():
        pytest.skip("spawn start method unavailable")
    network = city_network(80, seed=15)
    with ShardedMonitoringServer(
        network, algorithm="ima", workers=2, start_method="spawn"
    ) as server:
        server.add_object_at(1, x=40.0, y=40.0)
        server.add_query_at(1_000_000, x=45.0, y=50.0, k=1)
        report = server.tick()
        assert report.timestamp == 0
        assert server.result_of(1_000_000).neighbors


def test_default_start_method_is_supported():
    import multiprocessing

    assert default_start_method() in multiprocessing.get_all_start_methods()


def test_simulator_make_server_workers_passthrough():
    from repro.experiments.config import SMOKE_DEFAULTS
    from repro.sim.simulator import Simulator

    single_sim = Simulator(SMOKE_DEFAULTS)
    sharded_sim = Simulator(SMOKE_DEFAULTS)
    single = single_sim.make_server("ima")
    with sharded_sim.make_server("ima", workers=2) as sharded:
        assert isinstance(sharded, ShardedMonitoringServer)
        expected = single_sim.drive_server(single, timestamps=2)
        actual = sharded_sim.drive_server(sharded, timestamps=2)
        for expected_report, actual_report in zip(expected, actual):
            assert expected_report.timestamp == actual_report.timestamp
            assert expected_report.changed_queries == actual_report.changed_queries
        for query_id, result in single.results().items():
            assert sharded.result_of(query_id).neighbors == result.neighbors
