"""Tests for the sequence decomposition (GMA's sequence table)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.builders import city_network, grid_network, linear_network, star_network
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.sequences import SequenceTable


class TestSimpleTopologies:
    def test_path_graph_is_single_sequence(self):
        network = linear_network(5)
        table = SequenceTable(network)
        assert len(table) == 1
        info = next(iter(table))
        assert info.edge_count == 4
        assert set(info.endpoints()) == {0, 4}
        assert info.interior_nodes() == (1, 2, 3)

    def test_star_has_one_sequence_per_branch(self):
        network = star_network(4, branch_length=3)
        table = SequenceTable(network)
        assert len(table) == 4
        for info in table:
            assert info.edge_count == 3
            assert 0 in info.endpoints()

    def test_grid_without_shape_points_has_one_sequence_per_edge(self):
        network = grid_network(3, 3)
        table = SequenceTable(network)
        # Interior grid nodes have degree 4 and corners degree 2... corners of
        # a 3x3 grid have degree 2, so the two edges at each corner join into
        # one sequence: 12 edges total, 4 corner pairs -> 8 sequences.
        assert table.is_partition()
        assert sum(info.edge_count for info in table) == network.edge_count

    def test_pure_cycle_is_one_sequence(self):
        network = RoadNetwork()
        for node_id in range(4):
            network.add_node(node_id, float(node_id), 0.0)
        network.add_edge(0, 0, 1)
        network.add_edge(1, 1, 2)
        network.add_edge(2, 2, 3)
        network.add_edge(3, 3, 0)
        table = SequenceTable(network)
        assert table.is_partition()
        assert len(table) == 1
        info = next(iter(table))
        assert info.start_node == info.end_node

    def test_sequences_at_node(self):
        network = star_network(3, branch_length=2)
        table = SequenceTable(network)
        assert len(table.sequences_at_node(0)) == 3

    def test_sequence_of_edge_lookup(self):
        network = linear_network(4)
        table = SequenceTable(network)
        assert table.sequence_of_edge(1).sequence_id == table.sequence_id_of_edge(2)

    def test_statistics(self):
        network = star_network(3, branch_length=2)
        stats = SequenceTable(network).statistics()
        assert stats["sequences"] == 3
        assert stats["avg_edges"] == pytest.approx(2.0)


class TestDistancesAlongSequence:
    def test_distances_to_endpoints_on_path(self):
        network = linear_network(4, spacing=100.0)  # nodes 0..3, edges 0..2
        table = SequenceTable(network)
        # Location in the middle edge (edge 1), 25% from node 1 towards node 2.
        to_start, to_end = table.distances_to_endpoints(NetworkLocation(1, 0.25))
        info = table.sequence_of_edge(1)
        if info.start_node == 0:
            assert to_start == pytest.approx(125.0)
            assert to_end == pytest.approx(175.0)
        else:
            assert to_start == pytest.approx(175.0)
            assert to_end == pytest.approx(125.0)

    def test_distances_respect_current_weights(self):
        network = linear_network(3, spacing=100.0)
        table = SequenceTable(network)
        network.set_edge_weight(0, 300.0)
        to_start, to_end = table.distances_to_endpoints(NetworkLocation(1, 0.5))
        # The sequence now weighs 300 + 100; the two endpoint distances of any
        # interior location must add up to the full sequence weight.
        assert to_start + to_end == pytest.approx(400.0)

    def test_total_weight(self):
        network = linear_network(3, spacing=100.0)
        table = SequenceTable(network)
        sequence_id = table.sequence_id_of_edge(0)
        assert table.total_weight(sequence_id) == pytest.approx(200.0)


class TestPartitionProperty:
    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_city_network_decomposition_is_a_partition(self, seed):
        network = city_network(150, seed=seed)
        table = SequenceTable(network)
        assert table.is_partition()
        for info in table:
            # Interior nodes must have degree exactly 2.
            for node_id in info.interior_nodes():
                assert network.degree(node_id) == 2
            # Consecutive node pairs must be connected by the listed edges.
            assert len(info.node_ids) == info.edge_count + 1
            for edge_id, (u, v) in zip(
                info.edge_ids, zip(info.node_ids, info.node_ids[1:])
            ):
                edge = network.edge(edge_id)
                assert {edge.start, edge.end} == {u, v}

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_property_every_edge_in_exactly_one_sequence(self, seed):
        network = city_network(80, seed=seed)
        table = SequenceTable(network)
        seen = [edge_id for info in table for edge_id in info.edge_ids]
        assert sorted(seen) == sorted(network.edge_ids())
