"""Fault-handling tests for the sharded server (the bugfix satellites).

Pins the three repaired behaviours:

* a shard dying mid-tick fails the server *closed* — connections drained,
  workers stopped, and every later call raises the typed
  :class:`ServerFailedError` instead of wedging on a dead pipe;
* ``_recv`` is bounded by ``recv_timeout`` so a stuck (not dead) worker
  can no longer freeze the parent forever;
* shared-memory teardown closes the mapping *before* unlinking the name.
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro import ShardedMonitoringServer, city_network
from repro.exceptions import MonitoringError, ServerFailedError


@pytest.fixture
def sharded():
    network = city_network(100, seed=21)
    server = ShardedMonitoringServer(network, algorithm="ima", workers=2)
    for object_id, (x, y) in enumerate([(50.0, 50.0), (150.0, 80.0), (90.0, 140.0)]):
        server.add_object_at(object_id, x=x, y=y)
    for query_id in (100, 101, 102, 103):
        server.add_query_at(query_id, x=60.0 + 10 * query_id % 70, y=70.0, k=2)
    server.tick()
    yield server
    server.close()


def test_killed_worker_mid_tick_fails_server_closed(sharded):
    """SIGKILL a worker, tick: MonitoringError now, ServerFailedError after."""
    victim = sharded._shards[0].process
    os.kill(victim.pid, signal.SIGKILL)
    victim.join(timeout=5.0)
    sharded.move_object_at(1, x=70.0, y=60.0)
    with pytest.raises(MonitoringError) as excinfo:
        sharded.tick()
    assert not isinstance(excinfo.value, ServerFailedError)  # the first report
    # fail-closed: the whole fleet is torn down, not just the dead shard
    assert all(not shard.process.is_alive() for shard in sharded._shards)
    assert sharded._shared is None
    # every further use raises the typed error carrying the original cause
    for attempt in (
        sharded.tick,
        lambda: sharded.add_object_at(9, x=10.0, y=10.0),
        sharded.snapshot_state,
    ):
        with pytest.raises(ServerFailedError) as reuse:
            attempt()
        assert "shard 0" in reuse.value.cause  # carries the original failure
    # close() after failure stays idempotent
    sharded.close()


def test_deliberate_close_is_not_a_failure(sharded):
    sharded.close()
    with pytest.raises(MonitoringError, match="closed") as excinfo:
        sharded.tick()
    assert not isinstance(excinfo.value, ServerFailedError)


def test_stuck_worker_trips_recv_timeout():
    """A SIGSTOPped worker neither replies nor dies: the deadline fires."""
    network = city_network(80, seed=22)
    server = ShardedMonitoringServer(
        network, algorithm="ima", workers=2, recv_timeout=1.0
    )
    try:
        server.add_object_at(1, x=50.0, y=50.0)
        server.add_query_at(100, x=60.0, y=60.0, k=1)
        server.tick()
        victim = server._shards[0].process
        os.kill(victim.pid, signal.SIGSTOP)
        # resume the worker shortly after the deadline so close()'s bounded
        # join(5s) succeeds without having to terminate it
        resume = threading.Timer(1.5, os.kill, args=(victim.pid, signal.SIGCONT))
        resume.start()
        try:
            server.move_object_at(1, x=55.0, y=55.0)
            started = time.monotonic()
            with pytest.raises(MonitoringError, match="did not reply"):
                server.tick()
            assert time.monotonic() - started < 10.0  # bounded, not forever
        finally:
            resume.join()
        with pytest.raises(ServerFailedError):
            server.tick()
    finally:
        server.close()


def test_recv_timeout_validation():
    network = city_network(60, seed=23)
    with pytest.raises(MonitoringError, match="recv_timeout"):
        ShardedMonitoringServer(network, workers=2, recv_timeout=0.0)
    with pytest.raises(MonitoringError, match="recv_timeout"):
        ShardedMonitoringServer(network, workers=2, recv_timeout=-1.0)


def test_shared_memory_closed_before_unlink():
    """Teardown order: close() the mapping first, then unlink() the name."""
    network = city_network(80, seed=24)
    server = ShardedMonitoringServer(network, algorithm="ima", workers=2)
    shared = server._shared
    assert shared is not None
    order = []
    real_close, real_unlink = shared.close, shared.unlink
    shared.close = lambda: (order.append("close"), real_close())[1]
    shared.unlink = lambda: (order.append("unlink"), real_unlink())[1]
    server.close()
    assert order == ["close", "unlink"]
