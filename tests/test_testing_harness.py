"""Unit tests of the verification harness itself (oracle, engine, wiring)."""

from __future__ import annotations

import pytest

from repro.core.events import apply_batch
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.server import MonitoringServer
from repro.exceptions import MonitoringError, SimulationError
from repro.network.builders import city_network
from repro.network.distance import brute_force_knn
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation
from repro.sim.simulator import Simulator
from repro.sim.workload import WorkloadConfig
from repro.testing import (
    SCENARIO_PRESETS,
    OracleMonitor,
    ScenarioEngine,
    ScenarioSpec,
    resolve_scenario,
)


@pytest.fixture
def small_world():
    network = city_network(100, seed=4)
    table = EdgeTable(network, build_spatial_index=False)
    edges = sorted(network.edge_ids())
    for object_id in range(12):
        table.insert_object(object_id, NetworkLocation(edges[3 * object_id], 0.5))
    return network, table, edges


class TestOracleMonitor:
    def test_matches_brute_force_and_tracks_updates(self, small_world):
        network, table, edges = small_world
        oracle = OracleMonitor(network, table)
        location = NetworkLocation(edges[5], 0.25)
        result = oracle.register_query(1, location, 3)
        assert list(result.neighbors) == brute_force_knn(network, table, location, 3)

        engine = ScenarioEngine(
            network,
            ScenarioSpec(
                name="unit",
                object_move_fraction=0.4,
                edge_storm_fraction=0.1,
                query_move_fraction=0.0,  # keep q1 put: compared at `location`
            ),
            seed=5,
            initial_objects={i: table.location_of(i) for i in range(12)},
            initial_queries={1: (location, 3)},
        )
        for batch in engine.batches(4):
            apply_batch(network, table, batch.normalized())
            report = oracle.process_batch(batch)
            assert report.timestamp == batch.timestamp
            fresh = brute_force_knn(network, table, location, 3)
            assert list(oracle.result_of(1).neighbors) == fresh

    def test_radius_infinite_when_fewer_than_k(self, small_world):
        network, table, edges = small_world
        oracle = OracleMonitor(network, table)
        result = oracle.register_query(9, NetworkLocation(edges[0], 0.1), 50)
        assert result.radius == float("inf")
        assert len(result.neighbors) == 12


class TestScenarioEngine:
    def test_same_seed_same_stream(self):
        network = city_network(80, seed=2)
        streams = []
        for _ in range(2):
            engine = ScenarioEngine(network, "mixed-stress", seed=123)
            streams.append([
                (
                    tuple(batch.object_updates),
                    tuple(batch.query_updates),
                    tuple(batch.edge_updates),
                )
                for batch in engine.batches()
            ])
        assert streams[0] == streams[1]

    def test_different_seeds_differ(self):
        network = city_network(80, seed=2)
        first = list(ScenarioEngine(network, "mixed-stress", seed=1).batches())
        second = list(ScenarioEngine(network, "mixed-stress", seed=2).batches())
        assert any(
            tuple(a.object_updates) != tuple(b.object_updates)
            for a, b in zip(first, second)
        )

    def test_materialized_stream_has_consistent_edge_weights(self):
        """old_weight chains correctly even when batches are pre-generated."""
        network = city_network(80, seed=2)
        engine = ScenarioEngine(network, "weight-storm", seed=9)
        batches = list(engine.batches(6))
        last_seen = {}
        for batch in batches:
            for update in batch.edge_updates:
                if update.edge_id in last_seen:
                    assert update.old_weight == last_seen[update.edge_id]
                assert update.new_weight > 0
                last_seen[update.edge_id] = update.new_weight

    def test_presets_resolve_and_unknown_rejected(self):
        for name, spec in SCENARIO_PRESETS.items():
            assert resolve_scenario(name) is spec
        spec = ScenarioSpec(name="custom")
        assert resolve_scenario(spec) is spec
        with pytest.raises(SimulationError):
            resolve_scenario("no-such-scenario")

    def test_registries_track_churn(self):
        network = city_network(80, seed=6)
        engine = ScenarioEngine(network, "churn-heavy", seed=3)
        initial = set(engine.initial_objects())
        for _ in engine.batches():
            pass
        assert set(engine.initial_objects()) == initial  # snapshot frozen
        for location in engine.live_objects().values():
            network.validate_location(location)
        for location, spec in engine.live_queries().values():
            network.validate_location(location)
            assert spec.k >= 1


class TestSimulatorScenarioWiring:
    def test_run_scenario_validates_against_oracle(self):
        config = WorkloadConfig(
            num_objects=120, num_queries=10, k=3, network_edges=120,
            timestamps=3, seed=11,
        )
        result = Simulator(config).run_scenario(
            "hotspot", algorithms=("IMA", "GMA"), validate=True, oracle=True
        )
        assert result.validated
        assert result.validation_mismatches == 0
        assert result.config_description["scenario"] == "hotspot"
        for metrics in result.metrics.values():
            assert len(metrics.seconds_per_timestamp) == SCENARIO_PRESETS["hotspot"].timestamps

    def test_run_scenario_rejects_vacuous_validation(self):
        config = WorkloadConfig(
            num_objects=30, num_queries=3, k=2, network_edges=80,
            timestamps=1, seed=5,
        )
        with pytest.raises(SimulationError):
            Simulator(config).run_scenario(
                "uniform-drift", algorithms=("IMA",), validate=True
            )
        with pytest.raises(SimulationError):
            Simulator(config).run_scenario("uniform-drift", oracle=True)

    def test_scenario_engine_adopts_simulator_state(self):
        config = WorkloadConfig(
            num_objects=50, num_queries=5, k=2, network_edges=100,
            timestamps=2, seed=7,
        )
        simulator = Simulator(config)
        engine = simulator.scenario_engine("uniform-drift", seed=4)
        assert engine.initial_objects() == simulator.object_locations()
        assert set(engine.initial_queries()) == set(simulator.query_locations())


class TestKernelPlumbing:
    def test_monitors_report_kernel(self, small_world):
        network, table, _ = small_world
        assert ImaMonitor(network, table).kernel == "csr"
        assert ImaMonitor(network, table, kernel="legacy").kernel == "legacy"
        gma = GmaMonitor(network, table, kernel="legacy")
        assert gma.kernel == "legacy"
        assert gma.active_node_monitor.kernel == "legacy"

    def test_unknown_kernel_rejected(self, small_world):
        network, table, _ = small_world
        with pytest.raises(MonitoringError):
            ImaMonitor(network, table, kernel="simd")
        with pytest.raises(MonitoringError):
            MonitoringServer(network, "ima", kernel="simd")

    def test_server_kernel_passthrough(self, small_world):
        network, table, _ = small_world
        server = MonitoringServer(network, "gma", edge_table=table, kernel="legacy")
        assert server.monitor.kernel == "legacy"
