"""Oracle-backed differential runs through the sharded server.

Every scenario preset is driven through two :class:`MonitoringServer`
instances — single-process and sharded — via the batched
``apply_updates`` + ``tick`` pipeline; both must match the brute-force
oracle at every timestamp and each other exactly (see
``run_differential_scenario(workers=...)``).

The worker count comes from ``SHARDED_WORKERS`` (CI runs a 1-vs-4 matrix in
the fuzz job; the default is 4) and the base seed rotates with
``FUZZ_BASE_SEED`` exactly like the main fuzz suite, so failures replay
with the same one-command recipe.
"""

from __future__ import annotations

import os

import pytest

from repro.testing import SCENARIO_PRESETS, run_differential_scenario

#: Rotating base seed, shared with tests/test_fuzz_differential.py.
BASE_SEED = int(os.environ.get("FUZZ_BASE_SEED", "20060912"))

#: Worker count of the sharded server under test (CI matrixes 1 vs 4).
WORKERS = int(os.environ.get("SHARDED_WORKERS", "4"))

#: Search kernel the servers run on (CI matrixes csr vs dial).
KERNEL = os.environ.get("SHARDED_KERNEL", "csr")

#: Query-type overlay shared with the main fuzz suite (CI matrixes
#: default vs mixed): the sharded server must partition and merge every
#: query type, not just k-NN.
QUERY_TYPES = os.environ.get("FUZZ_QUERY_TYPES", "default")

#: Dedup overlay shared with the main fuzz suite (``FUZZ_DEDUP=1``): adds
#: DedupFrontend-wrapped single and sharded servers to every run, so the
#: canonical-id fanout is exercised across worker partitioning too.
DEDUP = os.environ.get("FUZZ_DEDUP", "0") == "1"

#: Partitioning of the sharded leg (CI matrixes replica vs graph):
#: ``graph`` adds a third server over network-partitioned region shards
#: that must stay byte-identical to the single-process reference outside
#: its own ``divergent_query_ids`` carve-out.
PARTITIONING = os.environ.get("SHARDED_PARTITIONING", "replica")


#: Spread per-scenario seeds apart, mirroring the main fuzz suite, so each
#: CI run exercises a different (query-id population, shard assignment)
#: point per preset instead of one shared seed.
_SEED_STRIDE = 99_991


@pytest.mark.parametrize(
    "index,scenario", list(enumerate(sorted(SCENARIO_PRESETS)))
)
def test_sharded_server_matches_oracle(index, scenario):
    """Sharded and single-process servers agree with the oracle every tick."""
    report = run_differential_scenario(
        scenario,
        seed=(BASE_SEED + 7_919 + index * _SEED_STRIDE) % 2_000_000_011,
        algorithms=(),  # the in-process monitor panel is covered elsewhere
        workers=WORKERS,
        server_kernel=KERNEL,
        query_types=QUERY_TYPES,
        dedup=DEDUP,
        partitioning=PARTITIONING,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()


def test_sharded_server_matches_oracle_gma():
    """The grouped algorithm also survives query partitioning."""
    report = run_differential_scenario(
        "mixed-stress",
        seed=(BASE_SEED + 104_729) % 2_000_000_011,
        algorithms=(),
        workers=WORKERS,
        server_algorithm="gma",
        server_kernel=KERNEL,
        query_types=QUERY_TYPES,
        dedup=DEDUP,
        partitioning=PARTITIONING,
    )
    assert report.checks > 0
    assert report.ok, report.failure_message()
