"""Unit tests for the rush-hour traffic model and its engine integration.

The model's contract: deterministic from ``(spec, seed)``, every emitted
update is a valid :class:`EdgeWeightUpdate` whose ``old_weight`` matches
the stream so far, closures pin edges to the finite
:data:`CLOSED_EDGE_WEIGHT` sentinel and reopen on schedule, and embedding
it in a :class:`ScenarioEngine` leaves every legacy preset's RNG stream
untouched.
"""

from __future__ import annotations

import pytest

from repro.core.events import UpdateBatch, apply_batch
from repro.exceptions import SimulationError
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import CLOSED_EDGE_WEIGHT
from repro.realism import RushHourModel, RushHourSpec, classify_edges
from repro.realism.importer import synthetic_city_network
from repro.testing.scenarios import SCENARIO_PRESETS, ScenarioEngine


def _city(edges=150, seed=4):
    return city_network(edges, seed=seed)


def _stream(network, spec, seed, ticks=40):
    model = RushHourModel(network.copy(), spec=spec, seed=seed)
    return [model.tick(t) for t in range(ticks)]


def test_stream_is_deterministic_from_spec_and_seed():
    network = _city()
    spec = RushHourSpec(closure_rate=0.5)
    assert _stream(network, spec, seed=7) == _stream(network, spec, seed=7)
    assert _stream(network, spec, seed=7) != _stream(network, spec, seed=8)


def test_updates_chain_and_apply_cleanly():
    """old_weight values chain tick to tick and apply to a real network."""
    network = _city()
    model = RushHourModel(network, spec=RushHourSpec(closure_rate=0.4), seed=2)
    current = {e.edge_id: e.weight for e in network.edges()}
    for timestamp in range(30):
        updates = model.tick(timestamp)
        batch = UpdateBatch(timestamp=timestamp)
        for update in updates:
            assert update.old_weight == current[update.edge_id]
            assert update.new_weight > 0.0
            assert update.new_weight != float("inf")
            current[update.edge_id] = update.new_weight
        batch.edge_updates.extend(updates)
        apply_batch(network, EdgeTable(network, build_spatial_index=False), batch)
    for edge in network.edges():
        assert edge.weight == current[edge.edge_id]


def test_congestion_wave_peaks_and_relaxes():
    """Weights climb into the morning peak and fall back toward free flow."""
    spec = RushHourSpec(
        ticks_per_day=24,
        incident_rate=0.0,
        congestion_update_fraction=1.0,
        smoothing=1.0,
    )
    assert spec.wave(int(24 * spec.morning_peak)) > 0.9
    network = _city()
    model = RushHourModel(network, spec=spec, seed=0)
    base_total = sum(e.base_weight for e in network.edges())
    totals = {}
    weights = {e.edge_id: e.weight for e in network.edges()}
    for timestamp in range(24):
        for update in model.tick(timestamp):
            weights[update.edge_id] = update.new_weight
        totals[timestamp] = sum(weights.values())
    peak_tick = int(24 * spec.morning_peak)
    trough_tick = 0
    assert totals[peak_tick] > 1.2 * base_total
    assert totals[trough_tick] < totals[peak_tick]
    # Never below free flow, never above the amplitude cap.
    for edge in network.edges():
        amplitude = max(a for _, a in spec.class_amplitudes)
        assert weights[edge.edge_id] <= edge.base_weight * amplitude * 1.001


def test_incidents_spike_then_decay():
    spec = RushHourSpec(
        ticks_per_day=1_000_000,  # hold the wave at ~0: isolate incidents
        incident_rate=1.5,
        congestion_update_fraction=0.0,
        smoothing=1.0,
    )
    network = _city()
    model = RushHourModel(network, spec=spec, seed=5)
    base = {e.edge_id: e.base_weight for e in network.edges()}
    series = {}
    for timestamp in range(20):
        for update in model.tick(timestamp):
            series.setdefault(update.edge_id, []).append(update.new_weight)
    spiked = [
        e for e, ws in series.items() if any(w > 2.0 * base[e] for w in ws)
    ]
    assert spiked  # fresh incidents jump to incident_factor x free flow
    # After its last (re-)spike, every incident edge decays strictly
    # monotonically back toward free flow.
    for edge_id in spiked:
        weights = series[edge_id]
        last_spike = max(
            i for i, w in enumerate(weights) if w > 2.0 * base[edge_id]
        )
        tail = weights[last_spike:]
        assert all(a > b for a, b in zip(tail, tail[1:]))


def test_closures_pin_to_sentinel_and_reopen():
    spec = RushHourSpec(
        incident_rate=0.0,
        closure_rate=2.0,
        closure_duration=(2, 3),
        congestion_update_fraction=0.05,
    )
    network = _city()
    model = RushHourModel(network, spec=spec, seed=1)
    closed_seen = set()
    reopened = set()
    weights = {e.edge_id: e.weight for e in network.edges()}
    for timestamp in range(30):
        updates = model.tick(timestamp)
        for update in updates:
            if update.new_weight == CLOSED_EDGE_WEIGHT:
                closed_seen.add(update.edge_id)
            elif update.old_weight == CLOSED_EDGE_WEIGHT:
                reopened.add(update.edge_id)
                assert update.new_weight < CLOSED_EDGE_WEIGHT / 1e6
            weights[update.edge_id] = update.new_weight
        assert set(model.closed_edges()) == {
            e for e, w in weights.items() if w == CLOSED_EDGE_WEIGHT
        }
    assert closed_seen
    assert reopened  # durations are 2-3 ticks, so reopenings must occur
    assert reopened <= closed_seen


def test_speed_classes_respected_and_classifier_covers_all_edges():
    result = synthetic_city_network(400, seed=3)
    model = RushHourModel(
        result.network, spec=RushHourSpec(), seed=0, speed_classes=result.speed_classes
    )
    assert model.spec.ticks_per_day == 48
    inferred = classify_edges(result.network)
    assert set(inferred) == set(result.network.edge_ids())
    assert set(inferred.values()) == {"motorway", "arterial", "street", "side"}
    # Deterministic: same network, same classes.
    assert inferred == classify_edges(result.network)


def test_spec_validation():
    network = _city(60)
    with pytest.raises(SimulationError):
        RushHourModel(network, spec=RushHourSpec(smoothing=0.0))
    with pytest.raises(SimulationError):
        RushHourModel(network, spec=RushHourSpec(closure_duration=(3, 1)))
    with pytest.raises(SimulationError):
        RushHourModel(
            network,
            spec=RushHourSpec(class_amplitudes=(("street", 1.5),)),
            speed_classes={e: "motorway" for e in network.edge_ids()},
        )


# ----------------------------------------------------------------------
# scenario-engine integration
# ----------------------------------------------------------------------

def test_rush_hour_presets_are_registered_with_traffic_specs():
    assert SCENARIO_PRESETS["rush-hour"].traffic_spec is not None
    assert SCENARIO_PRESETS["rush-hour"].traffic_spec.closure_rate == 0.0
    assert SCENARIO_PRESETS["gridlock-closures"].traffic_spec.closure_rate > 0.0


def test_engine_stream_carries_traffic_and_stays_deterministic():
    network = _city(120, seed=8)

    def materialize(seed):
        engine = ScenarioEngine(network, "gridlock-closures", seed=seed)
        return [engine.batch(t) for t in range(12)]

    stream_a = materialize(3)
    stream_b = materialize(3)
    assert stream_a == stream_b
    edge_updates = [u for batch in stream_a for u in batch.edge_updates]
    assert edge_updates
    assert any(u.new_weight == CLOSED_EDGE_WEIGHT for u in edge_updates)
    # Closures reopen within the stream (durations are 1-3 ticks).
    assert any(
        u.old_weight == CLOSED_EDGE_WEIGHT and u.new_weight != CLOSED_EDGE_WEIGHT
        for u in edge_updates
    )


def test_legacy_presets_keep_their_rng_streams():
    """Presets without a traffic_spec generate exactly as before the model.

    The rush-hour layer owns a namespaced RNG, so the engine's own stream
    for a legacy preset must be byte-identical whether or not the realism
    module is loaded — guarded here by comparing against a twin engine of a
    spec that sets ``traffic_spec=None`` explicitly.
    """
    network = _city(100, seed=6)
    spec = SCENARIO_PRESETS["weight-storm"]
    assert spec.traffic_spec is None
    explicit = spec.with_overrides(traffic_spec=None)
    engine_a = ScenarioEngine(network, spec, seed=4)
    engine_b = ScenarioEngine(network, explicit, seed=4)
    stream_a = [engine_a.batch(t) for t in range(6)]
    stream_b = [engine_b.batch(t) for t in range(6)]
    assert stream_a == stream_b
