"""Exact network-distance oracle (Dijkstra) used as ground truth.

The monitoring algorithms never call this module on their hot path — they
use the incremental expansion engine in :mod:`repro.core.search`.  This
module exists as the *reference implementation*: a plain, obviously-correct
Dijkstra over the road network that tests and the verification harness use
to validate every k-NN result produced by OVH, IMA and GMA.

It also provides the shortest-path queries that the Brinkhoff-style mobility
generator needs (objects follow shortest paths towards random destinations).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.exceptions import DisconnectedNetworkError, NodeNotFoundError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


def node_distances(
    network: RoadNetwork,
    source: int,
    max_distance: float = float("inf"),
) -> Dict[int, float]:
    """Shortest-path distances from *source* to every reachable node.

    Args:
        network: the road network.
        source: source node id.
        max_distance: stop expanding once the frontier exceeds this value;
            nodes farther than it may be missing from the result.

    Raises:
        NodeNotFoundError: if *source* does not exist.
    """
    if not network.has_node(source):
        raise NodeNotFoundError(source)
    dist: Dict[int, float] = {source: 0.0}
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        if d > max_distance:
            break
        settled[node] = d
        for _, neighbor, weight in network.neighbors(node):
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return settled


def multi_source_node_distances(
    network: RoadNetwork,
    sources: Dict[int, float],
    max_distance: float = float("inf"),
) -> Dict[int, float]:
    """Dijkstra from several sources with per-source starting distances."""
    dist: Dict[int, float] = dict(sources)
    settled: Dict[int, float] = {}
    heap: List[Tuple[float, int]] = [(d, node) for node, d in sources.items()]
    heapq.heapify(heap)
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled or d > dist.get(node, float("inf")):
            continue
        if d > max_distance:
            break
        settled[node] = d
        for _, neighbor, weight in network.neighbors(node):
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return settled


def location_sources(network: RoadNetwork, location: NetworkLocation) -> Dict[int, float]:
    """Seed distances of the two endpoints of the edge containing *location*."""
    edge = network.edge(location.edge_id)
    sources: Dict[int, float] = {}
    start_cost = location.offset(edge.weight)
    end_cost = location.reversed_offset(edge.weight)
    if edge.oneway:
        # Travelling backwards along a one-way edge is not allowed: only the
        # end node is reachable directly from a point on the edge.
        sources[edge.end] = end_cost
    else:
        sources[edge.start] = start_cost
        sources[edge.end] = end_cost
    # Keep the smaller seed when the edge is a loop-like parallel pair.
    return sources


def network_distance(
    network: RoadNetwork,
    origin: NetworkLocation,
    target: NetworkLocation,
) -> float:
    """Exact network distance between two locations.

    Handles the same-edge case (direct travel along the edge versus a detour
    through the endpoints) and returns ``float('inf')`` when the target is
    unreachable.

    Example::

        distance = network_distance(network, location_a, location_b)
    """
    best = float("inf")
    origin_edge = network.edge(origin.edge_id)
    target_edge = network.edge(target.edge_id)

    if origin.edge_id == target.edge_id:
        direct = abs(origin.fraction - target.fraction) * origin_edge.weight
        if origin_edge.oneway and target.fraction < origin.fraction:
            direct = float("inf")
        best = min(best, direct)

    origin_dists = multi_source_node_distances(network, location_sources(network, origin))

    # Reach the target through either endpoint of its edge.
    target_start_cost = target.offset(target_edge.weight)
    target_end_cost = target.reversed_offset(target_edge.weight)
    via_start = origin_dists.get(target_edge.start, float("inf")) + target_start_cost
    via_end = origin_dists.get(target_edge.end, float("inf")) + target_end_cost
    if target_edge.oneway:
        # A one-way edge can only be entered at its start node.
        via_end = float("inf")
    return min(best, via_start, via_end)


def shortest_path_nodes(
    network: RoadNetwork,
    source: int,
    target: int,
) -> Tuple[float, List[int]]:
    """Shortest path between two nodes as ``(distance, [node ids])``.

    Raises:
        NodeNotFoundError: if either node does not exist.
        DisconnectedNetworkError: if no path exists.
    """
    if not network.has_node(source):
        raise NodeNotFoundError(source)
    if not network.has_node(target):
        raise NodeNotFoundError(target)
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    settled: set[int] = set()
    heap: List[Tuple[float, int]] = [(0.0, source)]
    while heap:
        d, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        for _, neighbor, weight in network.neighbors(node):
            candidate = d + weight
            if candidate < dist.get(neighbor, float("inf")):
                dist[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    if target not in settled:
        raise DisconnectedNetworkError(
            f"no path between nodes {source} and {target}"
        )
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return dist[target], path


def brute_force_object_distances(
    network: RoadNetwork,
    edge_table: EdgeTable,
    query: NetworkLocation,
) -> List[Tuple[int, float]]:
    """Exact distance from *query* to every reachable object, sorted.

    One plain multi-source Dijkstra followed by a linear scan over *all*
    data objects (unreachable ones are omitted); the shared core of the
    brute-force ground-truth helpers below.  Ties sort by object id.

    Example::

        pairs = brute_force_object_distances(network, edge_table, location)
    """
    origin_dists = multi_source_node_distances(network, location_sources(network, query))
    query_edge = network.edge(query.edge_id)
    results: List[Tuple[int, float]] = []
    for object_id, location in edge_table.all_objects():
        edge = network.edge(location.edge_id)
        start_cost = location.offset(edge.weight)
        end_cost = location.reversed_offset(edge.weight)
        via_start = origin_dists.get(edge.start, float("inf")) + start_cost
        via_end = origin_dists.get(edge.end, float("inf")) + end_cost
        if edge.oneway:
            via_end = float("inf")
        distance = min(via_start, via_end)
        if location.edge_id == query.edge_id:
            direct = abs(query.fraction - location.fraction) * query_edge.weight
            if query_edge.oneway and location.fraction < query.fraction:
                direct = float("inf")
            distance = min(distance, direct)
        if distance != float("inf"):
            results.append((object_id, distance))
    results.sort(key=lambda item: (item[1], item[0]))
    return results


def brute_force_knn(
    network: RoadNetwork,
    edge_table: EdgeTable,
    query: NetworkLocation,
    k: int,
) -> List[Tuple[int, float]]:
    """Reference k-NN: compute the distance to *every* object and sort.

    Quadratic and slow by design — it is the ground truth the monitoring
    algorithms are validated against in the test suite.

    Returns:
        Up to *k* ``(object_id, distance)`` pairs ordered by distance, ties
        broken by object id for determinism.

    Example::

        truth = brute_force_knn(network, edge_table, query_location, k=4)
    """
    return brute_force_object_distances(network, edge_table, query)[:k]


def brute_force_range(
    network: RoadNetwork,
    edge_table: EdgeTable,
    query: NetworkLocation,
    radius: float,
) -> List[Tuple[int, float]]:
    """Reference range query: every object within *radius*, sorted.

    The ground truth of continuous range monitoring: the full
    ``(object_id, distance)`` list of objects at network distance at most
    *radius* (inclusive), ordered like :func:`brute_force_knn`.

    Example::

        in_range = brute_force_range(network, edge_table, location, 25.0)
    """
    return [
        pair
        for pair in brute_force_object_distances(network, edge_table, query)
        if pair[1] <= radius
    ]


def brute_force_aggregate_knn(
    network: RoadNetwork,
    edge_table: EdgeTable,
    points: Sequence[NetworkLocation],
    k: int,
    agg: str = "sum",
) -> List[Tuple[int, float]]:
    """Reference aggregate k-NN over several query points.

    The aggregate distance of an object is the ``"sum"`` or ``"max"`` of
    its exact network distances from every point; objects unreachable from
    any point aggregate to infinity and are omitted.  Returns up to *k*
    ``(object_id, aggregate_distance)`` pairs ordered by (distance, id).

    Example::

        truth = brute_force_aggregate_knn(network, edge_table, (a, b), k=3)
    """
    per_point = [
        dict(brute_force_object_distances(network, edge_table, point))
        for point in points
    ]
    if not per_point:
        return []
    merged: List[Tuple[float, int]] = []
    for object_id, total in per_point[0].items():
        for other in per_point[1:]:
            distance = other.get(object_id)
            if distance is None:
                break
            if agg == "sum":
                total += distance
            elif distance > total:
                total = distance
        else:
            merged.append((total, object_id))
    merged.sort()
    return [(object_id, distance) for distance, object_id in merged[:k]]


def eccentricity(network: RoadNetwork, source: int) -> float:
    """Largest finite shortest-path distance from *source* (diameter helper)."""
    distances = node_distances(network, source)
    return max(distances.values(), default=0.0)


def approximate_center_node(network: RoadNetwork, samples: Sequence[int] = ()) -> int:
    """Node that minimises the maximum distance to a sample of nodes.

    Used by the Gaussian placement model, which centres its distribution on
    the "middle" of the workspace.  With no samples provided the node closest
    to the bounding-box centre is returned, which is cheap and adequate.

    Raises:
        NodeNotFoundError: if the network has no nodes.
    """
    if network.node_count == 0:
        raise NodeNotFoundError(-1)
    if samples:
        best_node: Optional[int] = None
        best_value = float("inf")
        for node_id in samples:
            distances = node_distances(network, node_id)
            worst = max(distances.values(), default=float("inf"))
            if worst < best_value:
                best_value = worst
                best_node = node_id
        assert best_node is not None
        return best_node
    center = network.bounding_box().center
    return min(
        network.node_ids(),
        key=lambda node_id: network.node(node_id).point.distance_to(center),
    )
