"""First-class registry of the search kernels behind ``kernel=`` arguments.

Every monitor, server and batch entry point of the library accepts a
``kernel=`` string selecting the engine that runs the settle loop (bucket
drain + edge relaxation over the CSR columns).  Before this module existed
the valid names were bare string literals duplicated across a dozen
modules, so adding a backend meant touching every one of them.  The
registry makes the kernel set a single data structure:

* :data:`KERNEL_CSR` / :data:`KERNEL_DIAL` / :data:`KERNEL_NATIVE` /
  :data:`KERNEL_LEGACY` — the canonical names (the only place in the
  library where they appear as literals);
* :func:`registered_kernels` / :func:`available_kernels` — every name the
  registry knows vs the ones that can actually run on this machine (the
  compiled ``native`` backend is registered everywhere but *available*
  only where its shared library imports);
* :func:`resolve_kernel` — name -> :class:`KernelSpec` with per-kernel
  capability flags, raising a typed
  :class:`~repro.exceptions.UnknownKernelError` that names the valid
  choices.

The old string kwargs keep working unchanged: ``kernel="dial"`` still
means what it always did, it is just validated and dispatched through one
place.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.exceptions import UnknownKernelError

#: Canonical kernel names — the single home of the bare string literals.
KERNEL_CSR = "csr"
KERNEL_DIAL = "dial"
KERNEL_NATIVE = "native"
KERNEL_LEGACY = "legacy"

#: Default kernel of every monitor/server constructor (the per-query
#: flat-array heap engine).
DEFAULT_KERNEL = KERNEL_CSR

#: Default engine of :func:`repro.core.search.expand_knn_batch`.
DEFAULT_BATCH_KERNEL = KERNEL_DIAL


@dataclass(frozen=True)
class KernelSpec:
    """Capabilities of one registered search kernel.

    Attributes:
        name: the registry name (the value of the ``kernel=`` kwarg).
        description: one-line summary used by docs and error messages.
        batch: True when monitors should restructure ticks into
            collect-then-flush form and serve whole request batches through
            one :func:`~repro.core.search.expand_knn_batch` call (the dial
            and native engines); False for the per-query engines.
        shared_memory: True when the kernel runs unchanged over a
            :func:`~repro.network.csr.attach_shared_csr` snapshot inside a
            sharded worker process.
        compiled: True when the settle loop runs in machine code rather
            than the Python interpreter.

    Example::

        spec = resolve_kernel("dial")
        print(spec.batch, spec.compiled)
    """

    name: str
    description: str
    batch: bool = False
    shared_memory: bool = True
    compiled: bool = False
    #: Optional runtime probe; the kernel is listed by
    #: :func:`available_kernels` only when it returns True.
    probe: Optional[Callable[[], bool]] = field(default=None, compare=False)

    @property
    def available(self) -> bool:
        """True when the kernel can actually run on this machine.

        Example::

            assert resolve_kernel("csr").available
        """
        return self.probe is None or bool(self.probe())


def _native_probe() -> bool:
    """Whether the compiled native backend imports (lazy, cached there)."""
    from repro.network.native import native_available

    return native_available()


#: The registry proper, in documentation order.  ``native`` is registered
#: unconditionally — resolving it always succeeds, and when the compiled
#: library cannot be built the engine transparently serves requests through
#: the pure-python dial path — but :func:`available_kernels` lists it only
#: when the backend actually imports.
_REGISTRY: Dict[str, KernelSpec] = {
    spec.name: spec
    for spec in (
        KernelSpec(
            name=KERNEL_CSR,
            description="per-query flat-array binary-heap engine (default)",
        ),
        KernelSpec(
            name=KERNEL_DIAL,
            description="batched two-level bucket-queue engine",
            batch=True,
        ),
        KernelSpec(
            name=KERNEL_NATIVE,
            description=(
                "compiled (C via ctypes) settle loop over the CSR column "
                "mirrors; pure-python dial fallback when unavailable"
            ),
            batch=True,
            compiled=True,
            probe=_native_probe,
        ),
        KernelSpec(
            name=KERNEL_LEGACY,
            description="dict-walking reference implementation",
            shared_memory=False,
        ),
    )
}


def registered_kernels() -> Tuple[str, ...]:
    """Every kernel name the registry knows, in documentation order.

    Example::

        assert "dial" in registered_kernels()
    """
    return tuple(_REGISTRY)


def available_kernels() -> Tuple[str, ...]:
    """The registered kernels that can actually run on this machine.

    ``native`` appears only when the compiled backend imports (a C
    compiler was found, or a previously built library is cached); the
    pure-python kernels are always listed.  Test suites parametrize over
    this so new backends are swept automatically.

    Example::

        for kernel in available_kernels():
            print(kernel)
    """
    return tuple(name for name, spec in _REGISTRY.items() if spec.available)


def resolve_kernel(name: str) -> KernelSpec:
    """Look up a kernel by name; raise :class:`UnknownKernelError` otherwise.

    Resolution succeeds for every *registered* name — including ``native``
    on machines where the compiled backend is unavailable, because that
    kernel falls back to the pure-python dial engine at run time.  The
    error message of a failed lookup names the registered kernels and
    flags ``native`` when it would fall back.

    Example::

        spec = resolve_kernel("native")
        print(spec.compiled)
    """
    spec = _REGISTRY.get(name)
    if spec is None:
        native = _REGISTRY[KERNEL_NATIVE]
        detail = "" if native.available else (
            f"{KERNEL_NATIVE!r} is registered but its compiled backend is "
            "unavailable here, so it would run on the pure-python fallback"
        )
        raise UnknownKernelError(name, registered_kernels(), detail)
    return spec


def validate_kernel(name: str) -> str:
    """Resolve *name* and return it (constructor-argument validation).

    Example::

        kernel = validate_kernel("dial")
    """
    return resolve_kernel(name).name
