"""Sequence decomposition of a road network (the GMA sequence table *ST*).

A *sequence* (Section 5 of the paper) is a maximal path between two nodes
whose degree differs from 2, with every intermediate node of degree exactly
2.  Sequence endpoints are therefore intersection nodes (degree > 2) or
terminal nodes (degree 1).  Every edge belongs to exactly one sequence, so
the decomposition partitions the edge set.

Real road maps contain many degree-2 shape points, so sequences are long and
GMA's shared execution pays off — the experiment generators purposely
subdivide edges to recreate this property.

Special cases handled here:

* **Cycles of degree-2 nodes** (a roundabout disconnected from intersections)
  have no valid endpoint; we break the cycle at its smallest node id so that
  the decomposition remains a partition of the edges.
* **Both endpoints equal** (a loop attached to one intersection) is allowed;
  the sequence simply starts and ends at the same node.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence as Seq, Set, Tuple

from repro.exceptions import EdgeNotFoundError
from repro.network.graph import NetworkLocation, RoadNetwork


@dataclass(frozen=True)
class SequenceInfo:
    """One sequence of the decomposition.

    Attributes:
        sequence_id: identifier unique within the :class:`SequenceTable`.
        start_node: first endpoint (intersection/terminal node id).
        end_node: second endpoint.
        edge_ids: ordered edge ids from ``start_node`` towards ``end_node``.
        node_ids: ordered node ids visited, including both endpoints; has
            ``len(edge_ids) + 1`` entries.
    """

    sequence_id: int
    start_node: int
    end_node: int
    edge_ids: Tuple[int, ...]
    node_ids: Tuple[int, ...]

    @property
    def edge_count(self) -> int:
        return len(self.edge_ids)

    def endpoints(self) -> Tuple[int, int]:
        """Return ``(start_node, end_node)``."""
        return (self.start_node, self.end_node)

    def interior_nodes(self) -> Tuple[int, ...]:
        """Node ids strictly between the endpoints (all of degree 2)."""
        return self.node_ids[1:-1]


class SequenceTable:
    """The decomposition of a road network into sequences.

    Provides the lookups GMA needs:

    * the sequence containing a given edge (O(1)),
    * the endpoints of that sequence,
    * distances along the sequence from a location inside it to each
      endpoint (used to seed per-query evaluation with active-node results),
    * the set of objects/edges of a sequence.

    Example::

        sequences = SequenceTable(network)
        info = sequences.sequence_of_edge(10)
    """

    def __init__(self, network: RoadNetwork) -> None:
        self._network = network
        self._sequences: Dict[int, SequenceInfo] = {}
        self._edge_to_sequence: Dict[int, int] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        network = self._network
        visited_edges: Set[int] = set()
        next_id = 0

        endpoint_nodes = [
            node_id for node_id in network.node_ids() if network.degree(node_id) != 2
        ]

        # Pass 1: walk sequences starting from every endpoint node.
        for node_id in endpoint_nodes:
            for edge_id in network.incident_edges(node_id):
                if edge_id in visited_edges:
                    continue
                info = self._walk_sequence(next_id, node_id, edge_id, visited_edges)
                self._register(info)
                next_id += 1

        # Pass 2: pure cycles of degree-2 nodes (no endpoint on them).
        for edge in network.edges():
            if edge.edge_id in visited_edges:
                continue
            anchor = min(edge.start, edge.end)
            info = self._walk_sequence(next_id, anchor, edge.edge_id, visited_edges, cycle=True)
            self._register(info)
            next_id += 1

    def _walk_sequence(
        self,
        sequence_id: int,
        start_node: int,
        first_edge: int,
        visited_edges: Set[int],
        cycle: bool = False,
    ) -> SequenceInfo:
        network = self._network
        edge_ids: List[int] = []
        node_ids: List[int] = [start_node]
        current_node = start_node
        current_edge = first_edge

        while True:
            visited_edges.add(current_edge)
            edge_ids.append(current_edge)
            edge = network.edge(current_edge)
            current_node = edge.other_endpoint(current_node)
            node_ids.append(current_node)
            if cycle and current_node == start_node:
                break
            if network.degree(current_node) != 2:
                break
            # Degree-2 interior node: continue through its other edge.
            incident = network.incident_edges(current_node)
            next_edges = [eid for eid in incident if eid != current_edge]
            if not next_edges:
                break
            next_edge = next_edges[0]
            if next_edge in visited_edges:
                break
            current_edge = next_edge

        return SequenceInfo(
            sequence_id=sequence_id,
            start_node=start_node,
            end_node=current_node,
            edge_ids=tuple(edge_ids),
            node_ids=tuple(node_ids),
        )

    def _register(self, info: SequenceInfo) -> None:
        self._sequences[info.sequence_id] = info
        for edge_id in info.edge_ids:
            self._edge_to_sequence[edge_id] = info.sequence_id

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._sequences)

    def __iter__(self) -> Iterator[SequenceInfo]:
        return iter(self._sequences.values())

    def sequence(self, sequence_id: int) -> SequenceInfo:
        """Return the sequence with the given id (KeyError if unknown)."""
        return self._sequences[sequence_id]

    def sequence_of_edge(self, edge_id: int) -> SequenceInfo:
        """Return the sequence containing *edge_id*.

        Raises:
            EdgeNotFoundError: if the edge belongs to no sequence (unknown).
        """
        sequence_id = self._edge_to_sequence.get(edge_id)
        if sequence_id is None:
            raise EdgeNotFoundError(edge_id)
        return self._sequences[sequence_id]

    def sequence_id_of_edge(self, edge_id: int) -> int:
        """Return the id of the sequence containing *edge_id*."""
        return self.sequence_of_edge(edge_id).sequence_id

    def sequences_at_node(self, node_id: int) -> List[SequenceInfo]:
        """All sequences having *node_id* as an endpoint (``n.S`` in the paper)."""
        return [
            info
            for info in self._sequences.values()
            if node_id in (info.start_node, info.end_node)
        ]

    # ------------------------------------------------------------------
    # distances along a sequence
    # ------------------------------------------------------------------
    def distances_to_endpoints(
        self, location: NetworkLocation
    ) -> Tuple[float, float]:
        """Travel cost from *location* to the two endpoints along the sequence.

        The first value refers to ``sequence.start_node`` and the second to
        ``sequence.end_node``, both measured strictly along the sequence
        (i.e. upper bounds on the true network distances).  Costs use the
        *current* edge weights.
        """
        info = self.sequence_of_edge(location.edge_id)
        network = self._network
        edge = network.edge(location.edge_id)
        index = info.edge_ids.index(location.edge_id)

        # Orientation of the edge within the sequence walk: the walk enters
        # the edge at node_ids[index] and leaves at node_ids[index + 1].
        enter_node = info.node_ids[index]
        cost_to_enter = (
            location.offset(edge.weight)
            if enter_node == edge.start
            else location.reversed_offset(edge.weight)
        )
        cost_to_leave = edge.weight - cost_to_enter

        to_start = cost_to_enter + sum(
            network.edge(eid).weight for eid in info.edge_ids[:index]
        )
        to_end = cost_to_leave + sum(
            network.edge(eid).weight for eid in info.edge_ids[index + 1 :]
        )
        return (to_start, to_end)

    def total_weight(self, sequence_id: int) -> float:
        """Sum of the current weights of a sequence's edges."""
        info = self.sequence(sequence_id)
        return sum(self._network.edge(eid).weight for eid in info.edge_ids)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def is_partition(self) -> bool:
        """True if every network edge belongs to exactly one sequence."""
        covered = [eid for info in self._sequences.values() for eid in info.edge_ids]
        if len(covered) != self._network.edge_count:
            return False
        return len(set(covered)) == self._network.edge_count

    def statistics(self) -> Dict[str, float]:
        """Summary statistics (sequence count, average length, ...)."""
        lengths = [info.edge_count for info in self._sequences.values()]
        if not lengths:
            return {"sequences": 0.0, "avg_edges": 0.0, "max_edges": 0.0}
        return {
            "sequences": float(len(lengths)),
            "avg_edges": sum(lengths) / len(lengths),
            "max_edges": float(max(lengths)),
        }
