"""Road-network construction helpers and synthetic generators.

The paper evaluates on sub-networks of the San Francisco road map and on the
Oldenburg map, neither of which can be redistributed here.  The generators
in this module build synthetic networks with the same *statistical*
properties that matter to the algorithms:

* a planar, grid-like mesh of intersections (city blocks of irregular size),
* a tunable fraction of removed streets (dead ends, non-rectangular blocks),
* many degree-2 *shape points* obtained by subdividing streets, so that the
  sequence decomposition used by GMA produces long sequences — exactly the
  property the paper observes ("there are long sequences including many
  edges and queries").

All generators are deterministic given a seed.
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Sequence, Tuple

from repro.exceptions import NetworkError
from repro.network.graph import RoadNetwork
from repro.utils.rng import RandomLike, make_rng
from repro.utils.validation import (
    require_fraction,
    require_non_negative,
    require_positive,
    require_positive_int,
)


def build_network(
    node_coords: Dict[int, Tuple[float, float]],
    edge_list: Sequence[Tuple[int, int, int]],
    weights: Optional[Dict[int, float]] = None,
) -> RoadNetwork:
    """Build a network from explicit node coordinates and an edge list.

    Args:
        node_coords: mapping ``node_id -> (x, y)``.
        edge_list: triples ``(edge_id, start_node, end_node)``.
        weights: optional explicit weights per edge id; edges not listed get
            the Euclidean length of their segment.
    """
    network = RoadNetwork()
    for node_id, (x, y) in node_coords.items():
        network.add_node(node_id, x, y)
    for edge_id, start, end in edge_list:
        weight = None if weights is None else weights.get(edge_id)
        network.add_edge(edge_id, start, end, weight)
    return network


def grid_network(
    rows: int,
    columns: int,
    spacing: float = 100.0,
    jitter: float = 0.0,
    seed: RandomLike = None,
) -> RoadNetwork:
    """A rows x columns grid of intersections connected by streets.

    Args:
        rows: number of horizontal street rows (>= 2).
        columns: number of vertical street columns (>= 2).
        spacing: nominal block size in workspace units.
        jitter: maximum random displacement applied to every intersection, as
            a fraction of *spacing* (0 disables perturbation).
        seed: RNG seed (int), generator, or None for the library default.

    Example::

        network = grid_network(columns=8, rows=6)
    """
    require_positive_int(rows, "rows")
    require_positive_int(columns, "columns")
    require_positive(spacing, "spacing")
    require_non_negative(jitter, "jitter")
    if rows < 2 or columns < 2:
        raise NetworkError("a grid network needs at least 2 rows and 2 columns")

    rng = make_rng(seed)
    network = RoadNetwork()
    node_id = 0
    ids: Dict[Tuple[int, int], int] = {}
    for r in range(rows):
        for c in range(columns):
            dx = rng.uniform(-jitter, jitter) * spacing if jitter else 0.0
            dy = rng.uniform(-jitter, jitter) * spacing if jitter else 0.0
            network.add_node(node_id, c * spacing + dx, r * spacing + dy)
            ids[(r, c)] = node_id
            node_id += 1

    edge_id = 0
    for r in range(rows):
        for c in range(columns):
            if c + 1 < columns:
                network.add_edge(edge_id, ids[(r, c)], ids[(r, c + 1)])
                edge_id += 1
            if r + 1 < rows:
                network.add_edge(edge_id, ids[(r, c)], ids[(r + 1, c)])
                edge_id += 1
    return network


def remove_random_edges(
    network: RoadNetwork,
    fraction: float,
    seed: RandomLike = None,
) -> int:
    """Remove a fraction of edges while keeping the network connected.

    Candidate edges are processed in random order; an edge is removed only
    if the network stays connected without it.  Returns the number of edges
    actually removed (which may be smaller than requested near the
    connectivity limit).
    """
    require_fraction(fraction, "fraction")
    rng = make_rng(seed)
    target = int(round(fraction * network.edge_count))
    if target == 0:
        return 0
    edge_ids = list(network.edge_ids())
    rng.shuffle(edge_ids)
    removed = 0
    for edge_id in edge_ids:
        if removed >= target:
            break
        edge = network.edge(edge_id)
        # Quick degree check: never create isolated nodes.
        if network.degree(edge.start) <= 1 or network.degree(edge.end) <= 1:
            continue
        network.remove_edge(edge_id)
        if network.is_connected():
            removed += 1
        else:
            network.add_edge(edge_id, edge.start, edge.end, edge.weight)
    return removed


def subdivide_edges(
    network: RoadNetwork,
    segments_per_edge: int = 2,
    probability: float = 1.0,
    seed: RandomLike = None,
) -> RoadNetwork:
    """Return a new network where edges are split into chains of segments.

    Splitting inserts degree-2 *shape points* along each selected edge, which
    is how real road maps represent curved streets.  This is essential for
    the GMA experiments: without degree-2 nodes every sequence is a single
    edge and shared execution degenerates.

    Args:
        network: source network (left untouched).
        segments_per_edge: how many segments each subdivided edge becomes.
        probability: fraction of edges that get subdivided.
        seed: RNG seed controlling which edges are selected.
    """
    require_positive_int(segments_per_edge, "segments_per_edge")
    require_fraction(probability, "probability")
    rng = make_rng(seed)

    result = RoadNetwork()
    for node in network.nodes():
        result.add_node(node.node_id, node.x, node.y)

    next_node_id = max(network.node_ids(), default=-1) + 1
    next_edge_id = 0
    for edge in network.edges():
        pieces = segments_per_edge if rng.random() < probability else 1
        if pieces <= 1:
            result.add_edge(next_edge_id, edge.start, edge.end, edge.weight)
            next_edge_id += 1
            continue
        start_point = network.node(edge.start).point
        end_point = network.node(edge.end).point
        previous = edge.start
        for piece in range(1, pieces):
            t = piece / pieces
            x = start_point.x + t * (end_point.x - start_point.x)
            y = start_point.y + t * (end_point.y - start_point.y)
            result.add_node(next_node_id, x, y)
            result.add_edge(next_edge_id, previous, next_node_id, edge.weight / pieces)
            previous = next_node_id
            next_node_id += 1
            next_edge_id += 1
        result.add_edge(next_edge_id, previous, edge.end, edge.weight / pieces)
        next_edge_id += 1
    return result


def city_network(
    target_edges: int,
    seed: RandomLike = None,
    jitter: float = 0.15,
    removal_fraction: float = 0.12,
    subdivision: int = 3,
    spacing: float = 100.0,
) -> RoadNetwork:
    """Synthetic city road network with approximately *target_edges* edges.

    The construction pipeline is: perturbed grid -> random street removal
    (keeping connectivity) -> subdivision into shape points.  The resulting
    degree distribution (terminals, degree-2 shape points, 3- and 4-way
    intersections) matches what the San Francisco / Oldenburg maps exhibit,
    which is what the paper's experiments depend on.

    Args:
        target_edges: approximate number of edges in the final network.
        seed: RNG seed for reproducibility.
        jitter: intersection displacement as a fraction of the block size.
        removal_fraction: fraction of streets removed from the full grid.
        subdivision: number of segments each street is divided into.
        spacing: nominal block size in workspace units.

    Example::

        network = city_network(target_edges=500, seed=7)
        print(network.node_count, network.edge_count)
    """
    require_positive_int(target_edges, "target_edges")
    require_positive_int(subdivision, "subdivision")
    rng = make_rng(seed)

    # A rows x cols grid has about 2 * rows * cols edges; after removal and
    # subdivision the edge count becomes roughly
    # 2 * rows * cols * (1 - removal_fraction) * subdivision.
    base_edges = target_edges / (subdivision * (1.0 - removal_fraction))
    side = max(2, int(round(math.sqrt(base_edges / 2.0))))

    grid = grid_network(side, side, spacing=spacing, jitter=jitter, seed=rng)
    remove_random_edges(grid, removal_fraction, seed=rng)
    network = subdivide_edges(grid, segments_per_edge=subdivision, seed=rng)
    return network


def linear_network(num_nodes: int, spacing: float = 100.0) -> RoadNetwork:
    """A simple path graph — handy for unit tests and worked examples.

    Example::

        network = linear_network(num_nodes=10, spacing=50.0)
    """
    require_positive_int(num_nodes, "num_nodes")
    if num_nodes < 2:
        raise NetworkError("a linear network needs at least 2 nodes")
    network = RoadNetwork()
    for node_id in range(num_nodes):
        network.add_node(node_id, node_id * spacing, 0.0)
    for edge_id in range(num_nodes - 1):
        network.add_edge(edge_id, edge_id, edge_id + 1)
    return network


def star_network(num_branches: int, branch_length: int = 1, spacing: float = 100.0) -> RoadNetwork:
    """A star: one hub with *num_branches* chains of *branch_length* edges."""
    require_positive_int(num_branches, "num_branches")
    require_positive_int(branch_length, "branch_length")
    network = RoadNetwork()
    network.add_node(0, 0.0, 0.0)
    node_id = 1
    edge_id = 0
    for branch in range(num_branches):
        angle = 2.0 * math.pi * branch / num_branches
        previous = 0
        for step in range(1, branch_length + 1):
            x = math.cos(angle) * spacing * step
            y = math.sin(angle) * spacing * step
            network.add_node(node_id, x, y)
            network.add_edge(edge_id, previous, node_id)
            previous = node_id
            node_id += 1
            edge_id += 1
    return network
