"""Bucket-queue (Dial) expansion kernel with batched multi-query execution.

The monitoring hot path runs hundreds of network expansions per tick — IMA
resume/fresh searches, GMA barrier evaluations, OVH recomputations — each a
Dijkstra over the flat CSR columns with a binary-heap frontier.  This module
replaces the global heap with a *two-level bucket queue* (a Dial-1969
variant): tentative distances are quantized to buckets of width ``delta =
mean(edge weight)``, a push into a future bucket is one floor-division plus
a list append, the buckets drain in ascending id through a small heap of
*bucket ids* (one entry per active bucket instead of one per frontier
node), and the bucket currently draining is itself a min-heap so that
relaxations landing inside it are ordered exactly.

Exactness contract.  The kernel is **settle-order identical** to the heap
path of :func:`repro.core.search.expand_knn`, not merely
distance-equivalent, so the two produce byte-identical outcomes:

* a relaxation produces ``nd >= d`` (weights are positive), and the floor
  quantization is monotone, so a new entry lands either in the bucket being
  drained — where the current-bucket heap keeps exact ``(distance, node)``
  order — or in a later bucket, never behind the cursor; this is what frees
  the bucket width from the ``delta <= min(edge weight)`` constraint of
  textbook Dial;
* buckets are heapified when they start draining, so the global settle
  sequence (and therefore every candidate offer, radius update, and
  early-exit decision) matches the lazy-deletion heap exactly;
* pushes with ``nd >= radius`` are skipped entirely: such entries can never
  settle (the radius only shrinks, and the tracked value is always an upper
  bound of the true radius) and the heap path only ever pops them to
  terminate, so dropping them changes no observable outcome while removing
  the dead outer-shell frontier;
* a search whose bucket index overflows :data:`MAX_BUCKET_INDEX` raises
  :class:`DialAbort` and transparently re-runs on the heap path, and a
  snapshot whose quantization is structurally unusable (no positive mean
  weight) skips the bucket queue entirely.

Batching.  :func:`dial_expand_batch` accepts every expansion request a
monitor collected for one tick and runs them over one shared scratch set
(distance/settled columns, bucket dict, candidate maps), which removes the
per-search acquire/release and snapshot bookkeeping the per-query API pays.
Resume requests with a large pre-verified frontier are seeded by
:func:`_vector_seed` — coverage tests and frontier relaxation as numpy
gathers over the CSR adjacency mirrors — and the influence-map refreshes
that follow each adopted search are served by
:func:`influence_spans_vectorized`, which replaces the per-slot Python walk
with numpy gathers over the CSR incidence columns (``inc_indptr`` /
``inc_edge`` / ``edge_*``) and computes all span arithmetic element-wise —
the identical IEEE operations of the scalar code, so the spans match
exactly.

Quantization metadata (bucket width, numpy column mirrors, reusable
distance scratch) is cached per :attr:`CSRGraph.weights_epoch` in
:class:`DialSupport`, so a weight storm costs one rebuild at the next tick
rather than one per update.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import InvalidQueryError, NodeNotFoundError

try:  # numpy is optional (the "fast" extra); scalar fallbacks cover its absence
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via support.has_numpy gates
    _np = None

_INF = float("inf")

#: Shared empty exclusion set, mirroring repro.core.search.
_NO_EXCLUDED: frozenset = frozenset()

#: Hard cap on a search's bucket index; beyond it the heap path takes over.
MAX_BUCKET_INDEX = 1 << 22

#: Minimum verified-tree size for the vectorized influence path; below it
#: the numpy call overhead exceeds the scalar loop it replaces (measured
#: crossover on the dense defaults is ~150 nodes).
VECTOR_MIN_NODES = 160

#: Minimum pre-verified frontier size for the vectorized resume seeding.
VECTOR_MIN_SEED_NODES = 24

#: Span epsilon shared with repro.utils.intervals (kept numerically equal;
#: imported lazily there to avoid a utils dependency in this leaf module).
_SPAN_EPS = 1e-9


#: Lazily bound (ExpansionState, SearchOutcome, SearchCounters, expand_knn)
#: from repro.core — imported on the first batch to avoid a module cycle.
_CORE = None


def _pure_median(values) -> float:
    """Median of a non-empty sequence without numpy (even-length: midpoint)."""
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return float(ordered[mid])
    return (float(ordered[mid - 1]) + float(ordered[mid])) / 2.0


class DialAbort(Exception):
    """Raised when a bucket-queue run cannot preserve heap settle order.

    Triggers the exact per-search fallback to the heap kernel; with the
    two-level queue this only happens when a bucket index overflows
    :data:`MAX_BUCKET_INDEX` (distances astronomically larger than the mean
    edge weight).

    Example::

        try:
            raise DialAbort("bucket overflow")
        except DialAbort as exc:
            print(exc)
    """


class DialSupport:
    """Per-weights-epoch quantization and numpy metadata of a CSR snapshot.

    Built lazily by :meth:`repro.network.csr.CSRGraph.dial_support` and
    cached until the snapshot's ``weights_epoch`` moves.  Holds:

    * ``usable`` / ``bucket_width`` — whether the bucket queue applies and
      the bucket width (the mean adjacency weight);
    * numpy mirrors of the numeric CSR columns (``None`` without numpy),
      which the vectorized influence-map path gathers over;
    * a reusable full-size ``float64`` distance scratch column
      (``+inf``-filled, reset by touched indices after each use);
    * ``heap_fallbacks`` — how many searches aborted to the heap path since
      this support was built (diagnostics and tests).

    Example::

        support = csr_snapshot(network).dial_support()
        print(support.usable, support.bucket_width)
    """

    __slots__ = (
        "epoch",
        "usable",
        "min_weight",
        "max_weight",
        "bucket_width",
        "heap_fallbacks",
        "np_indptr",
        "np_adj_node",
        "np_adj_weight",
        "np_inc_indptr",
        "np_inc_edge",
        "np_edge_weight",
        "np_edge_start",
        "np_edge_end",
        "_node_dist_scratch",
        "_node_count",
    )

    def __init__(self) -> None:
        self.epoch = -1
        self.usable = False
        self.min_weight = 0.0
        self.max_weight = 0.0
        self.bucket_width = 0.0
        self.heap_fallbacks = 0
        self.np_indptr = None
        self.np_adj_node = None
        self.np_adj_weight = None
        self.np_inc_indptr = None
        self.np_inc_edge = None
        self.np_edge_weight = None
        self.np_edge_start = None
        self.np_edge_end = None
        self._node_dist_scratch = None
        self._node_count = 0

    @property
    def has_numpy(self) -> bool:
        """True when the numpy column mirrors (and vector paths) exist."""
        return self.np_edge_weight is not None

    @classmethod
    def build(cls, csr) -> "DialSupport":
        """Derive the support for *csr* at its current weights epoch.

        Example::

            support = DialSupport.build(csr_snapshot(network))
        """
        support = cls()
        support.epoch = csr._weights_epoch
        support._node_count = len(csr.node_ids)
        adj_weight = csr.adj_weight
        if _np is not None:
            support.np_indptr = _np.asarray(csr.indptr, dtype=_np.int64)
            support.np_adj_node = _np.asarray(csr.adj_node, dtype=_np.int64)
            support.np_adj_weight = _np.asarray(csr.adj_weight, dtype=_np.float64)
            support.np_inc_indptr = _np.asarray(csr.inc_indptr, dtype=_np.int64)
            support.np_inc_edge = _np.asarray(csr.inc_edge, dtype=_np.int64)
            support.np_edge_weight = _np.asarray(csr.edge_weight, dtype=_np.float64)
            support.np_edge_start = _np.asarray(csr.edge_start, dtype=_np.int64)
            support.np_edge_end = _np.asarray(csr.edge_end, dtype=_np.int64)
            if len(adj_weight):
                support.min_weight = float(support.np_adj_weight.min())
                support.max_weight = float(support.np_adj_weight.max())
                # Median, not mean: results are identical for any positive
                # fixed width (settle order is quantization-independent), but
                # a handful of closed-road sentinel weights (CLOSED_EDGE_WEIGHT,
                # ~1e12) would drag a mean so high that every real distance
                # lands in bucket 0 and the kernel degrades to one big heap.
                support.bucket_width = float(_np.median(support.np_adj_weight))
        elif len(adj_weight):  # pragma: no cover - exercised without numpy
            support.min_weight = float(min(adj_weight))
            support.max_weight = float(max(adj_weight))
            support.bucket_width = float(_pure_median(adj_weight))
        support.usable = support.bucket_width > 0.0
        return support

    def node_dist_scratch(self):
        """The reusable ``+inf``-filled distance column (numpy, lazy).

        Callers must restore every index they wrote to ``inf`` before
        returning (the vectorized influence path does so in a ``finally``).

        Example::

            scratch = support.node_dist_scratch()
            assert scratch is support.node_dist_scratch()   # reused
        """
        scratch = self._node_dist_scratch
        if scratch is None:
            scratch = _np.full(self._node_count, _np.inf, dtype=_np.float64)
            self._node_dist_scratch = scratch
        return scratch


def influence_spans_vectorized(
    csr,
    support: DialSupport,
    node_dist: Dict[int, float],
    radius: float,
) -> Dict[int, tuple]:
    """Endpoint-based influencing intervals of every edge, via numpy gathers.

    The vectorized core of
    :func:`repro.core.expansion.compute_influence_map` for a *finite*
    radius: the caller overlays the query's own edge afterwards.  The span
    arithmetic applies the identical IEEE operations as the scalar loop
    (``reach = radius - dist``, ``anchor = weight - reach``, the same
    comparisons), element-wise over the deduplicated incident edges, so the
    produced spans are byte-identical.

    Example::

        spans = influence_spans_vectorized(csr, support, {7: 0.0}, 10.0)
    """
    np = _np
    count = len(node_dist)
    idx = np.fromiter(map(csr.node_index.__getitem__, node_dist.keys()), np.int64, count)
    dist = np.fromiter(node_dist.values(), np.float64, count)
    within = dist <= radius
    idx = idx[within]
    if idx.size == 0:
        return {}
    dist = dist[within]
    inc_indptr = support.np_inc_indptr
    starts = inc_indptr[idx]
    counts = inc_indptr[idx + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return {}
    cum = np.cumsum(counts)
    slots = np.repeat(starts - (cum - counts), counts) + np.arange(total)
    positions = np.unique(support.np_inc_edge[slots])

    dist_arr = support.node_dist_scratch()
    dist_arr[idx] = dist
    try:
        weight = support.np_edge_weight[positions]
        dist_start = dist_arr[support.np_edge_start[positions]]
        dist_end = dist_arr[support.np_edge_end[positions]]
    finally:
        dist_arr[idx] = np.inf

    reach_start = radius - dist_start
    reach_end = radius - dist_end
    low_high = np.where(weight < reach_start, weight, reach_start)
    anchor = weight - reach_end
    full_span = anchor <= low_high + _SPAN_EPS
    anchor_clamped = np.where(anchor > 0.0, anchor, 0.0)

    edge_ids = csr.edge_ids
    influences: Dict[int, tuple] = {}
    start_ok = (dist_start <= radius).tolist()
    end_ok = (dist_end <= radius).tolist()
    weight_list = weight.tolist()
    low_list = low_high.tolist()
    anchor_list = anchor_clamped.tolist()
    full_list = full_span.tolist()
    for i, position in enumerate(positions.tolist()):
        if start_ok[i]:
            if end_ok[i]:
                if full_list[i]:
                    spans = ((0.0, weight_list[i]),)
                else:
                    spans = ((0.0, low_list[i]), (anchor_list[i], weight_list[i]))
            else:
                spans = ((0.0, low_list[i]),)
        elif end_ok[i]:
            spans = ((anchor_list[i], weight_list[i]),)
        else:  # pragma: no cover - every scanned edge touches a verified node
            continue
        influences[edge_ids[position]] = spans
    return influences


def dial_expand_batch(
    network,
    edge_table,
    requests: Iterable,
    csr=None,
    counters=None,
) -> List:
    """Run a batch of expansion requests through the bucket-queue kernel.

    Each request is a :class:`repro.core.search.ExpansionRequest`; outcomes
    are returned in request order and are byte-identical to what
    :func:`repro.core.search.expand_knn` produces for the same arguments.
    All searches of the batch share one scratch set and one refreshed CSR
    snapshot; any search the quantization cannot serve exactly (see
    :class:`DialAbort`) transparently re-runs on the heap kernel.

    Example::

        from repro.core.search import ExpansionRequest, expand_knn_batch

        outcomes = expand_knn_batch(
            network, edge_table, [ExpansionRequest(k=2, query_location=loc)]
        )
    """
    global _CORE
    if _CORE is None:
        from repro.core.expansion import ExpansionState
        from repro.core.search import SearchCounters, SearchOutcome, expand_knn

        _CORE = (ExpansionState, SearchOutcome, SearchCounters, expand_knn)
    SearchCounters, expand_knn = _CORE[2], _CORE[3]
    from repro.network.csr import csr_snapshot

    if csr is None:
        csr = csr_snapshot(network)
    if counters is None:
        counters = SearchCounters()
    support = csr.dial_support()
    outcomes = []
    if not support.usable:
        for request in requests:
            outcomes.append(_run_heap(expand_knn, network, edge_table, request, csr, counters))
        return outcomes
    scratch = csr.acquire_scratch()
    try:
        for request in requests:
            if request.fixed_radius is not None:
                # Fixed-radius (range) searches terminate on a pinned bound
                # instead of the shrinking k-NN radius; the quantized push
                # gating below assumes the latter, so these requests are
                # served by the exact heap kernel over the same shared
                # snapshot (identical outcomes, same batch).
                outcomes.append(
                    _run_heap(expand_knn, network, edge_table, request, csr, counters)
                )
                continue
            try:
                outcomes.append(
                    _dial_search(network, edge_table, request, csr, support, scratch, counters)
                )
            except DialAbort:
                support.heap_fallbacks += 1
                outcomes.append(
                    _run_heap(expand_knn, network, edge_table, request, csr, counters)
                )
    finally:
        scratch.release([])
    return outcomes


def _run_heap(expand_knn, network, edge_table, request, csr, counters):
    """Serve one request through the exact heap kernel (fallback path)."""
    return expand_knn(
        network,
        edge_table,
        request.k,
        query_location=request.query_location,
        source_node=request.source_node,
        preverified=request.preverified,
        preverified_parent=request.preverified_parent,
        candidates=request.candidates,
        barrier_candidates=request.barrier_candidates,
        coverage_radius=request.coverage_radius,
        excluded_objects=request.excluded_objects,
        counters=counters,
        csr=csr,
        fixed_radius=request.fixed_radius,
    )


def _dial_search(network, edge_table, request, csr, support, scratch, counters):
    """One expansion over the bucket queue; raises DialAbort on anomalies.

    This mirrors :func:`repro.core.search.expand_knn` statement by
    statement — only the frontier structure differs — and MUST be kept in
    sync with it (the differential suites compare the two exactly).  See
    the module docstring for why the settle order is identical.
    """
    ExpansionState, SearchOutcome = _CORE[0], _CORE[1]

    k = request.k
    query_location = request.query_location
    source_node = request.source_node
    preverified = request.preverified
    barrier_candidates = request.barrier_candidates
    coverage_radius = request.coverage_radius

    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    if query_location is None and source_node is None:
        raise InvalidQueryError("expand_knn needs a query_location or a source_node")

    excluded = request.excluded_objects or _NO_EXCLUDED
    barriers = barrier_candidates or {}
    cand: Dict[int, float] = {}
    cand_get = cand.get
    for object_id, distance in request.candidates:
        if object_id not in excluded:
            previous = cand_get(object_id)
            if previous is None or distance < previous:
                cand[object_id] = distance
    radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF

    indptr = csr.indptr
    adj_node = csr.adj_node
    adj_eid = csr.adj_eid
    adj_weight = csr.adj_weight
    adj_forward = csr.adj_forward
    node_index = csr.node_index
    node_ids = csr.node_ids
    fractions_of = edge_table.edge_object_fractions
    fraction_cache_get = edge_table.fraction_cache.get

    best = scratch.best
    tentative = scratch.tentative
    settled = scratch.settled
    tparent = scratch.tentative_parent
    touched: List[int] = []

    # The bucket queue: bucket id -> [(distance, node index), ...], drained
    # in ascending id order through a heap of the active ids.  Keys are the
    # floor-divided distances (floats): one interpreter op per push, and any
    # monotone fixed-width quantization preserves the settle-order argument.
    delta = support.bucket_width
    buckets: Dict[int, List[Tuple[float, int]]] = {}
    buckets_get = buckets.get
    border: List[int] = []
    settled_new: List[int] = []

    barrier_by_idx: Dict[int, Iterable] = {}
    if barriers:
        for node_id, barrier_list in barriers.items():
            idx = node_index.get(node_id)
            if idx is not None:
                barrier_by_idx[idx] = barrier_list

    edges_scanned = 0
    objects_considered = 0
    heap_pushes = 0
    nodes_expanded = 0
    radius_dirty = False
    seeds: List[Tuple[int, float]] = []

    try:
        # --------------------------------------------------------------
        # seeding (identical to expand_knn; pushes go to buckets)
        # --------------------------------------------------------------
        pre_entries: List[Tuple[int, float]] = []
        if preverified:
            for node_id, distance in preverified.items():
                idx = node_index.get(node_id)
                if idx is None:
                    raise NodeNotFoundError(node_id)
                settled[idx] = 1
                best[idx] = distance
                touched.append(idx)
                pre_entries.append((idx, distance))

        if query_location is not None:
            edge_pos = csr.index_of_edge(query_location.edge_id)
            weight = csr.edge_weight[edge_pos]
            query_fraction = query_location.fraction
            query_offset = query_fraction * weight
            oneway = csr.edge_oneway[edge_pos]
            pairs = fractions_of(query_location.edge_id)
            if pairs:
                if excluded:
                    pairs = [pair for pair in pairs if pair[0] not in excluded]
                if oneway:
                    pairs = [pair for pair in pairs if pair[1] >= query_fraction]
                objects_considered += len(pairs)
                for object_id, fraction in pairs:
                    total = (fraction - query_fraction) * weight
                    if total < 0.0:
                        total = -total
                    if total > radius:
                        continue
                    previous = cand_get(object_id)
                    if previous is None or total < previous:
                        cand[object_id] = total
                        if total < radius:
                            radius_dirty = True
            if oneway:
                seeds.append((csr.edge_end[edge_pos], weight - query_offset))
            else:
                seeds.append((csr.edge_start[edge_pos], query_offset))
                seeds.append((csr.edge_end[edge_pos], weight - query_offset))

        if source_node is not None:
            seeds.append((csr.index_of_node(source_node), 0.0))

        for v, nd in seeds:
            if not settled[v]:
                heap_pushes += 1
                if nd < radius and nd < tentative[v]:
                    if tentative[v] == _INF:
                        touched.append(v)
                    tentative[v] = nd
                    tparent[v] = -1
                    b = nd // delta
                    if b > MAX_BUCKET_INDEX:
                        raise DialAbort("bucket overflow while seeding")
                    entries = buckets_get(b)
                    if entries is None:
                        buckets[b] = [(nd, v)]
                        heappush(border, b)
                    else:
                        entries.append((nd, v))

        if (
            pre_entries
            and _np is not None
            and len(pre_entries) >= VECTOR_MIN_SEED_NODES
        ):
            extra = _vector_seed(
                pre_entries,
                request,
                csr,
                support,
                scratch,
                touched,
                buckets,
                border,
                cand,
                radius,
                excluded,
                edge_table,
            )
            edges_scanned += extra[0]
            objects_considered += extra[1]
            heap_pushes += extra[2]
            if extra[3]:
                radius_dirty = True
        elif pre_entries:
            for u, settled_distance in pre_entries:
                for slot in range(indptr[u], indptr[u + 1]):
                    w = adj_weight[slot]
                    v = adj_node[slot]
                    fully_covered = False
                    if coverage_radius is not None and settled[v]:
                        farthest = (settled_distance + best[v] + w) / 2.0
                        fully_covered = farthest <= coverage_radius + 1e-9
                    if not fully_covered:
                        edges_scanned += 1
                        eid = adj_eid[slot]
                        pairs = fraction_cache_get(eid)
                        if pairs is None:
                            pairs = fractions_of(eid)
                        if pairs:
                            if excluded:
                                pairs = [
                                    pair for pair in pairs if pair[0] not in excluded
                                ]
                            objects_considered += len(pairs)
                            if adj_forward[slot]:
                                for object_id, fraction in pairs:
                                    total = settled_distance + fraction * w
                                    if total > radius:
                                        continue  # can never reach the top-k
                                    previous = cand_get(object_id)
                                    if previous is None or total < previous:
                                        cand[object_id] = total
                                        if total < radius:
                                            radius_dirty = True
                            else:
                                for object_id, fraction in pairs:
                                    total = settled_distance + (1.0 - fraction) * w
                                    if total > radius:
                                        continue  # can never reach the top-k
                                    previous = cand_get(object_id)
                                    if previous is None or total < previous:
                                        cand[object_id] = total
                                        if total < radius:
                                            radius_dirty = True
                    if not settled[v]:
                        heap_pushes += 1
                        nd = settled_distance + w
                        if nd < radius and nd < tentative[v]:
                            if tentative[v] == _INF:
                                touched.append(v)
                            tentative[v] = nd
                            tparent[v] = u
                            b = nd // delta
                            if b > MAX_BUCKET_INDEX:
                                raise DialAbort("bucket overflow while seeding")
                            entries = buckets_get(b)
                            if entries is None:
                                buckets[b] = [(nd, v)]
                                heappush(border, b)
                            else:
                                entries.append((nd, v))

        # --------------------------------------------------------------
        # main loop: drain buckets in ascending id.  The *current* bucket
        # is heapified and drained as a min-heap, so a relaxation landing
        # inside it (``nd // delta == current``; never below, since ``nd >=
        # d`` and the floor is monotone) is enqueued in exact heap order —
        # which is what frees the bucket width from the min-edge-weight
        # constraint of textbook Dial.
        # --------------------------------------------------------------
        frontier: List[Tuple[float, int]] = []
        current = -1.0
        while True:
            if not frontier:
                if not border:
                    break
                current = heappop(border)
                frontier = buckets.pop(current)
                heapify(frontier)
            d, u = heappop(frontier)
            if settled[u] or d > tentative[u]:
                continue
            if radius_dirty:
                radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF
                radius_dirty = False
            if d >= radius:
                break
            settled[u] = 1
            best[u] = d
            settled_new.append(u)
            nodes_expanded += 1
            barrier = barrier_by_idx.get(u)
            if barrier is not None:
                for object_id, from_node_distance in barrier:
                    if radius_dirty:
                        radius = (
                            sorted(cand.values())[k - 1]
                            if len(cand) >= k
                            else _INF
                        )
                        radius_dirty = False
                    total = d + from_node_distance
                    if total >= radius:
                        break
                    if object_id not in excluded:
                        objects_considered += 1
                        previous = cand_get(object_id)
                        if previous is None or total < previous:
                            cand[object_id] = total
                            radius_dirty = True
                continue
            for slot in range(indptr[u], indptr[u + 1]):
                w = adj_weight[slot]
                edges_scanned += 1
                eid = adj_eid[slot]
                pairs = fraction_cache_get(eid)
                if pairs is None:
                    pairs = fractions_of(eid)
                if pairs:
                    if excluded:
                        pairs = [pair for pair in pairs if pair[0] not in excluded]
                    objects_considered += len(pairs)
                    if adj_forward[slot]:
                        for object_id, fraction in pairs:
                            total = d + fraction * w
                            if total > radius:
                                continue  # can never reach the top-k
                            previous = cand_get(object_id)
                            if previous is None or total < previous:
                                cand[object_id] = total
                                if total < radius:
                                    radius_dirty = True
                    else:
                        for object_id, fraction in pairs:
                            total = d + (1.0 - fraction) * w
                            if total > radius:
                                continue  # can never reach the top-k
                            previous = cand_get(object_id)
                            if previous is None or total < previous:
                                cand[object_id] = total
                                if total < radius:
                                    radius_dirty = True
                v = adj_node[slot]
                if not settled[v]:
                    heap_pushes += 1
                    nd = d + w
                    if nd < radius and nd < tentative[v]:
                        if tentative[v] == _INF:
                            touched.append(v)
                        tentative[v] = nd
                        tparent[v] = u
                        b = nd // delta
                        if b <= current:
                            # Landed inside the bucket being drained: keep
                            # exact order through the current heap.
                            heappush(frontier, (nd, v))
                        elif b > MAX_BUCKET_INDEX:
                            raise DialAbort("bucket overflow")
                        else:
                            try:
                                buckets[b].append((nd, v))
                            except KeyError:
                                buckets[b] = [(nd, v)]
                                heappush(border, b)

        # --------------------------------------------------------------
        # result assembly (identical to expand_knn)
        # --------------------------------------------------------------
        node_dist: Dict[int, float] = dict(preverified) if preverified else {}
        preverified_parent = request.preverified_parent
        if preverified_parent:
            parent: Dict[int, Optional[int]] = {
                node_id: preverified_parent.get(node_id) for node_id in node_dist
            }
        else:
            parent = dict.fromkeys(node_dist)
        for u in settled_new:
            node_id = node_ids[u]
            node_dist[node_id] = best[u]
            via = tparent[u]
            parent[node_id] = node_ids[via] if via >= 0 else None
    finally:
        for index in touched:
            best[index] = _INF
            tentative[index] = _INF
            settled[index] = 0
            tparent[index] = -1

    # Counters land only on success: an aborted run re-counts through the
    # heap fallback, so adding here as well would double-bill the search.
    counters.searches += 1
    counters.nodes_expanded += nodes_expanded
    counters.edges_scanned += edges_scanned
    counters.objects_considered += objects_considered
    counters.heap_pushes += heap_pushes

    if radius_dirty:
        radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF
    top = sorted(zip(cand.values(), cand.keys()))[:k]
    state = ExpansionState(node_dist=node_dist, parent=parent)
    return SearchOutcome(
        neighbors=[(oid, d) for d, oid in top],
        radius=radius,
        state=state,
    )


def _vector_seed(
    pre_entries,
    request,
    csr,
    support,
    scratch,
    touched,
    buckets,
    border,
    cand,
    radius,
    excluded,
    edge_table,
):
    """Vectorized resume seeding: the pre-verified frontier via numpy gathers.

    Replaces the per-slot Python walk over the pre-verified nodes'
    adjacency with array operations over the CSR column mirrors:

    * coverage tests and tentative distances are computed element-wise with
      the identical IEEE expressions of the scalar loop;
    * only the *non-covered* (mark) slots fall back to the scalar
      object-offer loop — on resume-heavy ticks almost everything is
      covered, which is where the win comes from;
    * the frontier relaxation picks, per neighbor, the first slot achieving
      the minimal tentative distance (stable lexsort), exactly the
      first-strict-improvement winner of the sequential loop, so parents
      and bucket contents match the scalar path (minus stale duplicate
      entries, which both kernels skip on pop).

    Candidate offers during seeding are order-independent — the radius is
    a constant here and offers min-accumulate — which is what makes this
    reordering exact.  Returns ``(edges_scanned, objects_considered,
    heap_pushes, radius_dirty)``.
    """
    np = _np
    count = len(pre_entries)
    pre_idx = np.fromiter((entry[0] for entry in pre_entries), np.int64, count)
    pre_dist = np.fromiter((entry[1] for entry in pre_entries), np.float64, count)

    indptr = support.np_indptr
    starts = indptr[pre_idx]
    counts = indptr[pre_idx + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return 0, 0, 0, False
    cum = np.cumsum(counts)
    slots = np.repeat(starts - (cum - counts), counts) + np.arange(total)
    u_rep = np.repeat(pre_idx, counts)
    du_rep = np.repeat(pre_dist, counts)
    w = support.np_adj_weight[slots]
    v = support.np_adj_node[slots]

    dist_arr = support.node_dist_scratch()
    dist_arr[pre_idx] = pre_dist
    try:
        best_v = dist_arr[v]
    finally:
        dist_arr[pre_idx] = np.inf
    settled_v = best_v != np.inf

    coverage_radius = request.coverage_radius
    if coverage_radius is not None:
        # Same expression tree as the scalar loop; non-settled slots hold
        # inf in best_v, making `farthest` inf and the test False.
        farthest = (du_rep + best_v + w) / 2.0
        covered = settled_v & (farthest <= coverage_radius + 1e-9)
        scan = ~covered
    else:
        scan = np.ones(total, dtype=bool)
    edges_scanned = int(scan.sum())

    # Object offers on the non-covered (mark) slots: scalar loop, identical
    # arithmetic; offer order is irrelevant during seeding (constant radius,
    # min-accumulating candidates).
    objects_considered = 0
    radius_dirty = False
    if edges_scanned:
        adj_eid = csr.adj_eid
        adj_forward = csr.adj_forward
        fractions_of = edge_table.edge_object_fractions
        fraction_cache_get = edge_table.fraction_cache.get
        cand_get = cand.get
        scan_slots = slots[scan].tolist()
        scan_du = du_rep[scan].tolist()
        scan_w = w[scan].tolist()
        for slot, settled_distance, slot_w in zip(scan_slots, scan_du, scan_w):
            eid = adj_eid[slot]
            pairs = fraction_cache_get(eid)
            if pairs is None:
                pairs = fractions_of(eid)
            if pairs:
                if excluded:
                    pairs = [pair for pair in pairs if pair[0] not in excluded]
                objects_considered += len(pairs)
                if adj_forward[slot]:
                    for object_id, fraction in pairs:
                        offer = settled_distance + fraction * slot_w
                        if offer > radius:
                            continue  # can never reach the top-k
                        previous = cand_get(object_id)
                        if previous is None or offer < previous:
                            cand[object_id] = offer
                            if offer < radius:
                                radius_dirty = True
                else:
                    for object_id, fraction in pairs:
                        offer = settled_distance + (1.0 - fraction) * slot_w
                        if offer > radius:
                            continue  # can never reach the top-k
                        previous = cand_get(object_id)
                        if previous is None or offer < previous:
                            cand[object_id] = offer
                            if offer < radius:
                                radius_dirty = True

    # Frontier relaxation: group-min per neighbor, first-slot tie-break.
    relax = ~settled_v
    heap_pushes = int(relax.sum())
    if heap_pushes:
        cand_v = v[relax]
        cand_nd = du_rep[relax] + w[relax]
        cand_u = u_rep[relax]
        order = np.lexsort((cand_nd, cand_v))
        v_sorted = cand_v[order]
        first = np.empty(v_sorted.size, dtype=bool)
        first[0] = True
        np.not_equal(v_sorted[1:], v_sorted[:-1], out=first[1:])
        win_v = v_sorted[first].tolist()
        win_nd = cand_nd[order][first].tolist()
        win_u = cand_u[order][first].tolist()

        tentative = scratch.tentative
        tparent = scratch.tentative_parent
        delta = support.bucket_width
        buckets_get = buckets.get
        for node, nd, via in zip(win_v, win_nd, win_u):
            if nd < radius and nd < tentative[node]:
                if tentative[node] == _INF:
                    touched.append(node)
                tentative[node] = nd
                tparent[node] = via
                b = nd // delta
                if b > MAX_BUCKET_INDEX:
                    raise DialAbort("bucket overflow while seeding")
                entries = buckets_get(b)
                if entries is None:
                    buckets[b] = [(nd, node)]
                    heappush(border, b)
                else:
                    entries.append((nd, node))
    return edges_scanned, objects_considered, heap_pushes, radius_dirty
