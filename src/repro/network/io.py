"""Saving and loading road networks in a simple text format.

Two formats are supported:

* the library's own ``.rnet`` format — a single text file listing nodes and
  edges, round-trips everything :class:`RoadNetwork` stores;
* the two-file *node/edge* format used by many public road-network datasets
  (and by the Brinkhoff generator's input maps): a ``.cnode`` file with
  ``node_id x y`` lines and a ``.cedge`` file with
  ``edge_id start end weight`` lines.  When real datasets are available this
  loader lets the experiments run on them unchanged.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterable, Union

from repro.exceptions import NetworkError
from repro.network.graph import RoadNetwork

PathLike = Union[str, os.PathLike]

_RNET_HEADER = "# repro road network v1"


def save_network(network: RoadNetwork, path: PathLike) -> None:
    """Write *network* to *path* in the ``.rnet`` text format.

    Example::

        save_network(network, "city.rnet")
    """
    lines = [_RNET_HEADER]
    lines.append(f"nodes {network.node_count}")
    for node in sorted(network.nodes(), key=lambda n: n.node_id):
        lines.append(f"n {node.node_id} {node.x!r} {node.y!r}")
    lines.append(f"edges {network.edge_count}")
    for edge in sorted(network.edges(), key=lambda e: e.edge_id):
        oneway = 1 if edge.oneway else 0
        lines.append(
            f"e {edge.edge_id} {edge.start} {edge.end} {edge.weight!r} "
            f"{edge.base_weight!r} {oneway}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_network(path: PathLike) -> RoadNetwork:
    """Load a network previously written by :func:`save_network`.

    Raises:
        NetworkError: if the file is malformed.

    Example::

        network = load_network("city.rnet")
    """
    text = Path(path).read_text(encoding="utf-8")
    lines = [line.strip() for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != _RNET_HEADER:
        raise NetworkError(f"{path}: not a repro road network file")
    network = RoadNetwork()
    for line in lines[1:]:
        if line.startswith("nodes ") or line.startswith("edges "):
            continue
        parts = line.split()
        try:
            if parts[0] == "n":
                network.add_node(int(parts[1]), float(parts[2]), float(parts[3]))
            elif parts[0] == "e":
                edge = network.add_edge(
                    int(parts[1]),
                    int(parts[2]),
                    int(parts[3]),
                    float(parts[4]),
                    oneway=bool(int(parts[6])),
                )
                edge.base_weight = float(parts[5])
            else:
                raise NetworkError(f"{path}: unknown record type {parts[0]!r}")
        except (IndexError, ValueError) as exc:
            raise NetworkError(f"{path}: malformed line {line!r}") from exc
    return network


def load_node_edge_files(node_path: PathLike, edge_path: PathLike) -> RoadNetwork:
    """Load a network from the public ``.cnode`` / ``.cedge`` pair format.

    Node lines: ``node_id x y``.  Edge lines: ``edge_id start end weight``
    (weight optional; Euclidean length is used when missing).

    Raises:
        NetworkError: if either file is malformed.
    """
    network = RoadNetwork()
    for line_no, line in enumerate(_data_lines(node_path), start=1):
        parts = line.split()
        if len(parts) < 3:
            raise NetworkError(f"{node_path}:{line_no}: expected 'id x y', got {line!r}")
        try:
            network.add_node(int(parts[0]), float(parts[1]), float(parts[2]))
        except ValueError as exc:
            raise NetworkError(f"{node_path}:{line_no}: malformed node line") from exc
    for line_no, line in enumerate(_data_lines(edge_path), start=1):
        parts = line.split()
        if len(parts) < 3:
            raise NetworkError(
                f"{edge_path}:{line_no}: expected 'id start end [weight]', got {line!r}"
            )
        try:
            edge_id, start, end = int(parts[0]), int(parts[1]), int(parts[2])
            weight = float(parts[3]) if len(parts) > 3 else None
            network.add_edge(edge_id, start, end, weight)
        except ValueError as exc:
            raise NetworkError(f"{edge_path}:{line_no}: malformed edge line") from exc
    return network


def save_node_edge_files(
    network: RoadNetwork, node_path: PathLike, edge_path: PathLike
) -> None:
    """Write *network* in the two-file node/edge format."""
    node_lines = [
        f"{node.node_id} {node.x!r} {node.y!r}"
        for node in sorted(network.nodes(), key=lambda n: n.node_id)
    ]
    edge_lines = [
        f"{edge.edge_id} {edge.start} {edge.end} {edge.weight!r}"
        for edge in sorted(network.edges(), key=lambda e: e.edge_id)
    ]
    Path(node_path).write_text("\n".join(node_lines) + "\n", encoding="utf-8")
    Path(edge_path).write_text("\n".join(edge_lines) + "\n", encoding="utf-8")


def _data_lines(path: PathLike) -> Iterable[str]:
    """Yield non-empty, non-comment lines from a text file."""
    text = Path(path).read_text(encoding="utf-8")
    for line in text.splitlines():
        stripped = line.strip()
        if stripped and not stripped.startswith("#"):
            yield stripped
