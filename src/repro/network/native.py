"""Compiled (``kernel="native"``) settle loop over the CSR column mirrors.

The dial kernel (:mod:`repro.network.dial`) already restructured every tick
into collect-then-flush batches, but its settle loop — bucket drain plus
edge relaxation — still executes one Python bytecode at a time.  This
module compiles that loop to machine code: a small C translation unit
(embedded below as :data:`_SOURCE`) is built **at import time of the first
use** with whatever C compiler the machine has (``cc``/``gcc``/``clang``),
cached on disk keyed by a hash of the source, and loaded through
:mod:`ctypes`.  No third-party build dependency (numba, Cython) is
required, and none is imported.

Exactness contract.  The C loop is a statement-by-statement translation of
the radius-gated heap engine — the settle order the dial kernel proves
identical to :func:`repro.core.search.expand_knn` — with three properties
that make the results *byte-identical*:

* every floating-point expression uses the same operations in the same
  association order as the Python code, compiled with FP contraction
  disabled (``-ffp-contract=off``), so each intermediate double matches
  CPython bit for bit;
* the frontier heap orders entries by ``(distance, node index)`` exactly
  like the ``heapq`` tuples, and since a node is only re-pushed on a
  *strict* improvement no two entries ever compare equal — any conforming
  binary heap therefore pops the identical sequence;
* candidate bookkeeping (min-accumulating offers, the k-th-smallest radius
  recompute, the final ``(distance, object id)`` sort) computes the same
  values from the same sets, and object ids are mapped to dense indices by
  **rank**, so index comparisons preserve id comparisons in tie-breaks.

Fallback contract (mirrors ``DialAbort`` -> heap).  When no compiler is
found, the build fails, numpy is absent, or ``REPRO_NATIVE_DISABLE=1`` is
set, :func:`native_expand_batch` transparently serves the whole batch
through the pure-python dial engine; a single search the C kernel cannot
serve exactly (fixed-radius range requests, or a frontier overflowing the
preallocated heap) falls back per-request to :func:`expand_knn`, exactly
like a dial bucket overflow.

Shared-memory attach.  The kernel reads only the numpy mirrors that
:class:`~repro.network.dial.DialSupport` derives per weights epoch, so it
runs unchanged over a worker's :func:`~repro.network.csr.attach_shared_csr`
snapshot — with ``zero_copy=True`` the C loop walks the parent's shared
block directly.
"""

from __future__ import annotations

import ctypes
import os
import shutil
import subprocess
import tempfile
import threading
from hashlib import sha256
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.exceptions import InvalidQueryError, NodeNotFoundError

try:  # numpy is optional (the "fast" extra); absence forces the dial fallback
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via the fallback tests
    _np = None

_INF = float("inf")

#: Shared empty exclusion set, mirroring repro.core.search.
_NO_EXCLUDED: frozenset = frozenset()

#: Environment variable that forces the pure-python fallback (CI proves the
#: fallback leg by setting it; users can set it to rule the compiler out).
DISABLE_ENV = "REPRO_NATIVE_DISABLE"

#: Environment variable overriding the on-disk build cache directory.
CACHE_ENV = "REPRO_NATIVE_CACHE"

#: Lazily bound (ExpansionState, SearchOutcome, SearchCounters, expand_knn)
#: from repro.core — imported on the first batch to avoid a module cycle.
_CORE = None

_SOURCE = r"""
/* Native settle loop for the repro road-network monitors.
 *
 * A statement-by-statement translation of the radius-gated heap engine of
 * repro.network.dial._dial_search / repro.core.search.expand_knn.  Keep in
 * sync with those; the differential suites compare the outcomes exactly.
 * All doubles are IEEE-754 binary64 with the same association order as the
 * Python expressions; compile with -ffp-contract=off and WITHOUT
 * -ffast-math.
 */
#include <math.h>
#include <stdint.h>
#include <stdlib.h>

typedef struct { double d; int64_t o; } rk_pair;

static int rk_cmp_pair(const void *pa, const void *pb) {
    const rk_pair *a = (const rk_pair *)pa;
    const rk_pair *b = (const rk_pair *)pb;
    if (a->d < b->d) return -1;
    if (a->d > b->d) return 1;
    if (a->o < b->o) return -1;
    if (a->o > b->o) return 1;
    return 0;
}

/* k-th smallest (1-based) of a[0..n); Hoare quickselect, median-of-three.
 * Returns the same value as Python's sorted(values)[k-1]. */
static double rk_kth_smallest(double *a, int64_t n, int64_t k) {
    int64_t lo = 0, hi = n - 1, target = k - 1;
    while (lo < hi) {
        int64_t mid = lo + (hi - lo) / 2;
        double p0 = a[lo], p1 = a[mid], p2 = a[hi], pivot;
        if (p0 < p1) {
            if (p1 < p2) pivot = p1; else pivot = (p0 < p2) ? p2 : p0;
        } else {
            if (p0 < p2) pivot = p0; else pivot = (p1 < p2) ? p2 : p1;
        }
        int64_t i = lo, j = hi;
        while (i <= j) {
            while (a[i] < pivot) i++;
            while (a[j] > pivot) j--;
            if (i <= j) {
                double t = a[i]; a[i] = a[j]; a[j] = t;
                i++; j--;
            }
        }
        if (target <= j) hi = j;
        else if (target >= i) lo = i;
        else return a[target];
    }
    return a[target];
}

/* Binary heap of (distance, node) with heapq tuple ordering.  Entries are
 * pairwise distinct (strict-improvement pushes), so pop order is the
 * unique ascending order of the live entries. */
static inline int rk_heap_push(double *hd, int64_t *hv, int64_t *n,
                               int64_t cap, double d, int64_t v) {
    if (*n >= cap) return 0;
    int64_t i = (*n)++;
    while (i > 0) {
        int64_t p = (i - 1) >> 1;
        double pd = hd[p];
        int64_t pv = hv[p];
        if (d < pd || (d == pd && v < pv)) { hd[i] = pd; hv[i] = pv; i = p; }
        else break;
    }
    hd[i] = d; hv[i] = v;
    return 1;
}

static inline void rk_heap_pop(double *hd, int64_t *hv, int64_t *n,
                               double *out_d, int64_t *out_v) {
    *out_d = hd[0];
    *out_v = hv[0];
    int64_t m = --(*n);
    double ld = hd[m];
    int64_t lv = hv[m];
    int64_t i = 0;
    for (;;) {
        int64_t c = 2 * i + 1;
        if (c >= m) break;
        if (c + 1 < m &&
            (hd[c + 1] < hd[c] || (hd[c + 1] == hd[c] && hv[c + 1] < hv[c])))
            c++;
        if (hd[c] < ld || (hd[c] == ld && hv[c] < lv)) {
            hd[i] = hd[c]; hv[i] = hv[c]; i = c;
        } else break;
    }
    hd[i] = ld; hv[i] = lv;
}

/* Candidate offer during expansion: min-accumulate; mark the radius dirty
 * on a strict improvement below it (mirrors the Python offer sites). */
#define RK_OFFER(o, total)                                                  \
    do {                                                                    \
        double prev__ = cand_val[(o)];                                      \
        if (prev__ == INFINITY) {                                           \
            cand_val[(o)] = (total);                                        \
            cand_touch[cand_n++] = (o);                                     \
            if ((total) < radius) radius_dirty = 1;                         \
        } else if ((total) < prev__) {                                      \
            cand_val[(o)] = (total);                                        \
            if ((total) < radius) radius_dirty = 1;                         \
        }                                                                   \
    } while (0)

#define RK_RECOMPUTE_RADIUS()                                               \
    do {                                                                    \
        if (cand_n >= k) {                                                  \
            for (int64_t s__ = 0; s__ < cand_n; s__++)                      \
                sel_buf[s__] = cand_val[cand_touch[s__]];                    \
            radius = rk_kth_smallest(sel_buf, cand_n, k);                    \
        } else radius = INFINITY;                                           \
    } while (0)

/* Return codes: 0 ok; 1 frontier overflow (caller falls back to the exact
 * Python heap kernel); 2 allocation failure (same fallback). */
int64_t rk_expand(
    /* graph */
    int64_t n_nodes,
    const int64_t *indptr,
    const int64_t *adj_node,
    const double *adj_weight,
    const int64_t *adj_epos,
    const uint8_t *adj_forward,
    const double *edge_weight,
    const int64_t *edge_start,
    const int64_t *edge_end,
    const uint8_t *edge_oneway,
    /* per-batch object columns (dense edge position -> objects) */
    const int64_t *obj_indptr,
    const int64_t *obj_id,
    const double *obj_frac,
    /* dense index -> caller-visible id maps, so outputs carry ids
     * directly and Python skips the gather */
    const int64_t *node_id_of,
    const int64_t *obj_id_of,
    /* request */
    int64_t k,
    int64_t q_epos,        /* -1: no query_location */
    double q_fraction,
    int64_t source_idx,    /* -1: none */
    const int64_t *pre_idx, const double *pre_dist, int64_t n_pre,
    const int64_t *cand_obj, const double *cand_dist, int64_t n_cand,
    const int64_t *excl_obj, int64_t n_excl,
    const int64_t *bar_node, const int64_t *bar_indptr,
    const int64_t *bar_obj, const double *bar_dist, int64_t n_bar,
    int64_t has_coverage, double coverage_radius,
    /* reusable scratch (caller keeps these initialised: best/tentative
     * +inf, settled 0, tparent -1, cand_val +inf, excl_flag 0, bar_of -1;
     * this function restores every slot it writes before returning) */
    double *best, double *tentative, uint8_t *settled, int64_t *tparent,
    int64_t *touch_nodes,
    double *heap_d, int64_t *heap_v, int64_t heap_cap,
    double *cand_val, int64_t *cand_touch, double *sel_buf,
    uint8_t *excl_flag, int64_t *bar_of,
    /* outputs (node/object slots carry caller-visible ids; root
     * positions index into the settled output, parent id -1 = root) */
    int64_t *out_set_nodes, double *out_set_dist, int64_t *out_set_parent,
    int64_t *out_root_pos,
    int64_t *out_top_obj, double *out_top_dist,
    int64_t *out_counts, double *out_radius)
{
    int64_t rc = 0;
    int64_t touch_n = 0, cand_n = 0, heap_n = 0, n_settled = 0;
    int64_t edges_scanned = 0, objects_considered = 0;
    int64_t heap_pushes = 0, nodes_expanded = 0;
    int radius_dirty = 0;
    double radius;
    int64_t i, slot, oslot;
    double cov_bound = coverage_radius + 1e-9;

    for (i = 0; i < n_excl; i++) excl_flag[excl_obj[i]] = 1;
    for (i = 0; i < n_bar; i++) bar_of[bar_node[i]] = i;

    /* ---- candidate seeding (no radius filter, no dirty flag) ---- */
    for (i = 0; i < n_cand; i++) {
        int64_t o = cand_obj[i];
        if (excl_flag[o]) continue;
        double d = cand_dist[i];
        double prev = cand_val[o];
        if (prev == INFINITY) { cand_val[o] = d; cand_touch[cand_n++] = o; }
        else if (d < prev) cand_val[o] = d;
    }
    RK_RECOMPUTE_RADIUS();
    radius_dirty = 0;

    /* ---- pre-verified nodes settle first ---- */
    for (i = 0; i < n_pre; i++) {
        int64_t idx = pre_idx[i];
        settled[idx] = 1;
        best[idx] = pre_dist[i];
        touch_nodes[touch_n++] = idx;
    }

    /* ---- query-location seeding ---- */
    int64_t seed_v[3];
    double seed_d[3];
    int64_t n_seed = 0;
    if (q_epos >= 0) {
        double weight = edge_weight[q_epos];
        double q_off = q_fraction * weight;
        int oneway = edge_oneway[q_epos];
        for (oslot = obj_indptr[q_epos]; oslot < obj_indptr[q_epos + 1]; oslot++) {
            int64_t o = obj_id[oslot];
            if (excl_flag[o]) continue;
            double f = obj_frac[oslot];
            if (oneway && !(f >= q_fraction)) continue;
            objects_considered++;
            double total = (f - q_fraction) * weight;
            if (total < 0.0) total = -total;
            if (total > radius) continue;
            RK_OFFER(o, total);
        }
        if (oneway) {
            seed_v[n_seed] = edge_end[q_epos];
            seed_d[n_seed++] = weight - q_off;
        } else {
            seed_v[n_seed] = edge_start[q_epos];
            seed_d[n_seed++] = q_off;
            seed_v[n_seed] = edge_end[q_epos];
            seed_d[n_seed++] = weight - q_off;
        }
    }
    if (source_idx >= 0) {
        seed_v[n_seed] = source_idx;
        seed_d[n_seed++] = 0.0;
    }
    for (i = 0; i < n_seed; i++) {
        int64_t v = seed_v[i];
        if (!settled[v]) {
            heap_pushes++;
            double nd = seed_d[i];
            if (nd < radius && nd < tentative[v]) {
                if (tentative[v] == INFINITY) touch_nodes[touch_n++] = v;
                tentative[v] = nd;
                tparent[v] = -1;
                if (!rk_heap_push(heap_d, heap_v, &heap_n, heap_cap, nd, v)) {
                    rc = 1; goto done;
                }
            }
        }
    }

    /* ---- resume seeding from the pre-verified frontier ---- */
    for (i = 0; i < n_pre; i++) {
        int64_t u = pre_idx[i];
        double du = pre_dist[i];
        for (slot = indptr[u]; slot < indptr[u + 1]; slot++) {
            double w = adj_weight[slot];
            int64_t v = adj_node[slot];
            int fully_covered = 0;
            if (has_coverage && settled[v]) {
                double farthest = (du + best[v] + w) / 2.0;
                fully_covered = farthest <= cov_bound;
            }
            if (!fully_covered) {
                edges_scanned++;
                int64_t e = adj_epos[slot];
                int fwd = adj_forward[slot];
                for (oslot = obj_indptr[e]; oslot < obj_indptr[e + 1]; oslot++) {
                    int64_t o = obj_id[oslot];
                    if (excl_flag[o]) continue;
                    objects_considered++;
                    double total = fwd ? du + obj_frac[oslot] * w
                                       : du + (1.0 - obj_frac[oslot]) * w;
                    if (total > radius) continue;
                    RK_OFFER(o, total);
                }
            }
            if (!settled[v]) {
                heap_pushes++;
                double nd = du + w;
                if (nd < radius && nd < tentative[v]) {
                    if (tentative[v] == INFINITY) touch_nodes[touch_n++] = v;
                    tentative[v] = nd;
                    tparent[v] = u;
                    if (!rk_heap_push(heap_d, heap_v, &heap_n, heap_cap, nd, v)) {
                        rc = 1; goto done;
                    }
                }
            }
        }
    }

    /* ---- main settle loop ---- */
    while (heap_n) {
        double d;
        int64_t u;
        rk_heap_pop(heap_d, heap_v, &heap_n, &d, &u);
        if (settled[u] || d > tentative[u]) continue;
        if (radius_dirty) { RK_RECOMPUTE_RADIUS(); radius_dirty = 0; }
        if (d >= radius) break;
        settled[u] = 1;
        best[u] = d;
        out_set_nodes[n_settled++] = u;
        nodes_expanded++;
        int64_t bi = bar_of[u];
        if (bi >= 0) {
            for (oslot = bar_indptr[bi]; oslot < bar_indptr[bi + 1]; oslot++) {
                if (radius_dirty) { RK_RECOMPUTE_RADIUS(); radius_dirty = 0; }
                double total = d + bar_dist[oslot];
                if (total >= radius) break;
                int64_t o = bar_obj[oslot];
                if (!excl_flag[o]) {
                    objects_considered++;
                    double prev = cand_val[o];
                    if (prev == INFINITY) {
                        cand_val[o] = total;
                        cand_touch[cand_n++] = o;
                        radius_dirty = 1;
                    } else if (total < prev) {
                        cand_val[o] = total;
                        radius_dirty = 1;
                    }
                }
            }
            continue;
        }
        for (slot = indptr[u]; slot < indptr[u + 1]; slot++) {
            double w = adj_weight[slot];
            edges_scanned++;
            int64_t e = adj_epos[slot];
            int fwd = adj_forward[slot];
            for (oslot = obj_indptr[e]; oslot < obj_indptr[e + 1]; oslot++) {
                int64_t o = obj_id[oslot];
                if (excl_flag[o]) continue;
                objects_considered++;
                double total = fwd ? d + obj_frac[oslot] * w
                                   : d + (1.0 - obj_frac[oslot]) * w;
                if (total > radius) continue;
                RK_OFFER(o, total);
            }
            int64_t v = adj_node[slot];
            if (!settled[v]) {
                heap_pushes++;
                double nd = d + w;
                if (nd < radius && nd < tentative[v]) {
                    if (tentative[v] == INFINITY) touch_nodes[touch_n++] = v;
                    tentative[v] = nd;
                    tparent[v] = u;
                    if (!rk_heap_push(heap_d, heap_v, &heap_n, heap_cap, nd, v)) {
                        rc = 1; goto done;
                    }
                }
            }
        }
    }

    /* ---- result assembly ---- */
    if (radius_dirty) { RK_RECOMPUTE_RADIUS(); radius_dirty = 0; }
    {
        int64_t n_roots = 0;
        for (i = 0; i < n_settled; i++) {
            int64_t u = out_set_nodes[i];
            int64_t p = tparent[u];
            out_set_dist[i] = best[u];
            out_set_parent[i] = (p >= 0) ? node_id_of[p] : -1;
            if (p < 0) out_root_pos[n_roots++] = i;
            out_set_nodes[i] = node_id_of[u];
        }
        out_counts[6] = n_roots;
    }
    {
        int64_t n_top = 0;
        if (cand_n > 0) {
            rk_pair *pairs = (rk_pair *)malloc((size_t)cand_n * sizeof(rk_pair));
            if (pairs == NULL) { rc = 2; goto done; }
            for (i = 0; i < cand_n; i++) {
                pairs[i].o = cand_touch[i];
                pairs[i].d = cand_val[cand_touch[i]];
            }
            qsort(pairs, (size_t)cand_n, sizeof(rk_pair), rk_cmp_pair);
            n_top = (k < cand_n) ? k : cand_n;
            for (i = 0; i < n_top; i++) {
                out_top_obj[i] = obj_id_of[pairs[i].o];
                out_top_dist[i] = pairs[i].d;
            }
            free(pairs);
        }
        out_counts[0] = nodes_expanded;
        out_counts[1] = edges_scanned;
        out_counts[2] = objects_considered;
        out_counts[3] = heap_pushes;
        out_counts[4] = n_settled;
        out_counts[5] = n_top;
        *out_radius = radius;
    }

done:
    for (i = 0; i < touch_n; i++) {
        int64_t idx = touch_nodes[i];
        best[idx] = INFINITY;
        tentative[idx] = INFINITY;
        settled[idx] = 0;
        tparent[idx] = -1;
    }
    for (i = 0; i < cand_n; i++) cand_val[cand_touch[i]] = INFINITY;
    for (i = 0; i < n_excl; i++) excl_flag[excl_obj[i]] = 0;
    for (i = 0; i < n_bar; i++) bar_of[bar_node[i]] = -1;
    return rc;
}
"""

#: Companion CPython-API helper: materialises one ``SearchOutcome``'s dict
#: and list payloads straight from the kernel's output columns (two dict
#: inserts per settled node, no intermediate lists/tuples).  It holds no
#: float arithmetic — outcome *values* are produced by ``rk_expand`` — so
#: it cannot perturb byte-identity; when Python headers are missing the
#: pure-numpy assembly in :func:`_native_search` serves instead.
_HELPER_SOURCE = r"""
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <stdint.h>

/* Fill node_dist/parent with the settled output (ids already translated
 * by rk_expand), set the expansion roots' parents to None, and return the
 * neighbors list of (object_id, distance) pairs as a new reference. */
PyObject *rk_outcome(
    const int64_t *set_ids, const double *set_dist, const int64_t *set_parent,
    const int64_t *root_pos, const int64_t *top_ids, const double *top_dist,
    int64_t n_settled, int64_t n_roots, int64_t n_top,
    PyObject *node_dist, PyObject *parent)
{
    int64_t i;
    for (i = 0; i < n_settled; i++) {
        PyObject *key = PyLong_FromLongLong((long long)set_ids[i]);
        if (key == NULL) return NULL;
        PyObject *val = PyFloat_FromDouble(set_dist[i]);
        if (val == NULL) { Py_DECREF(key); return NULL; }
        int rc = PyDict_SetItem(node_dist, key, val);
        Py_DECREF(val);
        if (rc != 0) { Py_DECREF(key); return NULL; }
        val = PyLong_FromLongLong((long long)set_parent[i]);
        if (val == NULL) { Py_DECREF(key); return NULL; }
        rc = PyDict_SetItem(parent, key, val);
        Py_DECREF(key);
        Py_DECREF(val);
        if (rc != 0) return NULL;
    }
    for (i = 0; i < n_roots; i++) {
        PyObject *key = PyLong_FromLongLong((long long)set_ids[root_pos[i]]);
        if (key == NULL) return NULL;
        int rc = PyDict_SetItem(parent, key, Py_None);
        Py_DECREF(key);
        if (rc != 0) return NULL;
    }
    PyObject *neighbors = PyList_New((Py_ssize_t)n_top);
    if (neighbors == NULL) return NULL;
    for (i = 0; i < n_top; i++) {
        PyObject *obj = PyLong_FromLongLong((long long)top_ids[i]);
        PyObject *dist = (obj == NULL) ? NULL : PyFloat_FromDouble(top_dist[i]);
        PyObject *pair = (dist == NULL) ? NULL : PyTuple_New(2);
        if (pair == NULL) {
            Py_XDECREF(obj);
            Py_XDECREF(dist);
            Py_DECREF(neighbors);
            return NULL;
        }
        PyTuple_SET_ITEM(pair, 0, obj);
        PyTuple_SET_ITEM(pair, 1, dist);
        PyList_SET_ITEM(neighbors, (Py_ssize_t)i, pair);
    }
    return neighbors;
}
"""

_LOCK = threading.Lock()
#: None = not probed yet; False = unavailable; ctypes.CDLL = loaded.
_LIB = None
#: Same tri-state for the CPython-API outcome helper (the bound
#: ``rk_outcome`` function when loaded).
_HELPER = None


def _candidate_cache_dirs() -> List[Path]:
    """Build-cache directories to try, most preferred first."""
    dirs: List[Path] = []
    override = os.environ.get(CACHE_ENV)
    if override:
        dirs.append(Path(override))
    try:
        dirs.append(Path.home() / ".cache" / "repro-native")
    except RuntimeError:  # pragma: no cover - no home directory
        pass
    uid = os.getuid() if hasattr(os, "getuid") else 0
    dirs.append(Path(tempfile.gettempdir()) / f"repro-native-{uid}")
    return dirs


def _find_compiler() -> Optional[str]:
    """Path of the first usable C compiler, or None."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _compile_library(
    cache_dir: Path, stem: str, source: str, include_dirs: Tuple[str, ...] = ()
) -> Optional[Path]:
    """Compile *source* into ``cache_dir/stem.so`` (atomic)."""
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        source_path = cache_dir / f"{stem}.c"
        source_path.write_text(source)
        tmp_path = cache_dir / f"{stem}.{os.getpid()}.tmp.so"
        lib_path = cache_dir / f"{stem}.so"
        # -ffp-contract=off keeps every double bit-identical to CPython's
        # (no fused multiply-add); never add -ffast-math here.
        result = subprocess.run(
            [
                compiler, "-O2", "-std=c11", "-fPIC", "-shared",
                "-ffp-contract=off", "-fno-fast-math", "-DNDEBUG",
                *[f"-I{directory}" for directory in include_dirs],
                str(source_path), "-o", str(tmp_path), "-lm",
            ],
            capture_output=True,
            timeout=120,
        )
        if result.returncode != 0:
            return None
        os.replace(tmp_path, lib_path)
        return lib_path
    except (OSError, subprocess.SubprocessError):  # pragma: no cover - env-specific
        return None


def _load_library():
    """Build (if needed) and dlopen the kernel; False when impossible."""
    if os.environ.get(DISABLE_ENV, "0") == "1":
        return False
    if _np is None:  # pragma: no cover - numpy is a test dependency
        return False
    stem = f"repro_native_{sha256(_SOURCE.encode()).hexdigest()[:16]}"
    for cache_dir in _candidate_cache_dirs():
        lib_path = cache_dir / f"{stem}.so"
        if not lib_path.exists():
            built = _compile_library(cache_dir, stem, _SOURCE)
            if built is None:
                continue
            lib_path = built
        try:
            lib = ctypes.CDLL(str(lib_path))
        except OSError:  # pragma: no cover - stale/foreign-arch cache entry
            continue
        fn = lib.rk_expand
        fn.restype = ctypes.c_int64
        # Typed signature: pointers are raw addresses of contiguous numpy
        # arrays passed as plain ints (ctypes skips per-argument
        # introspection when argtypes is set — measurably faster at this
        # call rate, and no wrapper objects are allocated per request).
        i64, f64, ptr = ctypes.c_int64, ctypes.c_double, ctypes.c_void_p
        fn.argtypes = (
            [i64] + [ptr] * 9          # graph columns
            + [ptr] * 3                # object columns
            + [ptr] * 2                # node/object id maps
            + [i64, i64, f64, i64]     # k, q_epos, q_fraction, source_idx
            + [ptr, ptr, i64]          # preverified
            + [ptr, ptr, i64]          # candidates
            + [ptr, i64]               # excluded
            + [ptr, ptr, ptr, ptr, i64]  # barriers
            + [i64, f64]               # coverage
            + [ptr] * 7 + [i64]        # scratch + heap_cap
            + [ptr] * 5                # universe scratch
            + [ptr] * 6                # settled/roots/top outputs
            + [ptr, ptr]               # counts, radius
        )
        return lib
    return False


def load_native_library():
    """The loaded compiled kernel (``ctypes.CDLL``) or ``None``.

    The probe runs once per process (building and caching the shared
    library on first use) and is re-attempted only after
    :func:`reset_native_library_cache`.

    Example::

        lib = load_native_library()
        print("compiled backend available:", lib is not None)
    """
    global _LIB
    lib = _LIB
    if lib is None:
        with _LOCK:
            if _LIB is None:
                _LIB = _load_library()
            lib = _LIB
    return None if lib is False else lib


def _load_helper():
    """Build (if needed) and bind ``rk_outcome``; False when impossible."""
    if os.environ.get(DISABLE_ENV, "0") == "1":
        return False
    import sysconfig

    include_dir = sysconfig.get_config_var("INCLUDEPY")
    if not include_dir or not (Path(include_dir) / "Python.h").exists():
        return False
    stem = f"repro_native_py_{sha256(_HELPER_SOURCE.encode()).hexdigest()[:16]}"
    for cache_dir in _candidate_cache_dirs():
        lib_path = cache_dir / f"{stem}.so"
        if not lib_path.exists():
            built = _compile_library(
                cache_dir, stem, _HELPER_SOURCE, include_dirs=(include_dir,)
            )
            if built is None:
                continue
            lib_path = built
        try:
            # PyDLL: calls keep the GIL held, as the C-API requires.
            helper = ctypes.PyDLL(str(lib_path))
        except OSError:  # pragma: no cover - stale/foreign-arch cache entry
            continue
        fn = helper.rk_outcome
        fn.restype = ctypes.py_object
        i64, ptr, obj = ctypes.c_int64, ctypes.c_void_p, ctypes.py_object
        fn.argtypes = [ptr] * 6 + [i64] * 3 + [obj, obj]
        fn._library = helper  # keep the CDLL alive alongside the function
        return fn
    return False


def load_outcome_helper():
    """The bound C-API outcome builder, or ``None`` to assemble in Python.

    Optional on top of :func:`load_native_library`: when CPython's headers
    are not installed the kernel still runs compiled and only the final
    dict/list materialisation stays in (vectorised) Python.

    Example::

        helper = load_outcome_helper()
        print("C-API outcome assembly:", helper is not None)
    """
    global _HELPER
    helper = _HELPER
    if helper is None:
        with _LOCK:
            if _HELPER is None:
                _HELPER = _load_helper()
            helper = _HELPER
    return None if helper is False else helper


def native_available() -> bool:
    """True when the compiled settle loop can serve requests here.

    Example::

        if native_available():
            print("kernel='native' runs compiled")
    """
    return load_native_library() is not None


def reset_native_library_cache() -> None:
    """Forget the load probes so the next call re-checks (tests use this).

    Example::

        reset_native_library_cache()
    """
    global _LIB, _HELPER
    with _LOCK:
        _LIB = None
        _HELPER = None


class NativeSupport:
    """Per-weights-epoch column mirrors + scratch of one CSR snapshot.

    Extends the numpy mirrors of :class:`~repro.network.dial.DialSupport`
    with the columns only the compiled loop needs (dense edge position per
    adjacency slot, direction/oneway flags) and owns the reusable C-side
    scratch buffers.  ``heap_fallbacks`` counts per-request falls to the
    exact Python heap kernel (fixed-radius requests and frontier
    overflows), mirroring the dial support's diagnostics.

    Example::

        support = native_support(csr_snapshot(network))
        print(support.usable)
    """

    __slots__ = (
        "epoch",
        "usable",
        "heap_fallbacks",
        "np_indptr",
        "np_adj_node",
        "np_adj_weight",
        "np_adj_epos",
        "np_adj_forward",
        "np_edge_weight",
        "np_edge_start",
        "np_edge_end",
        "np_edge_oneway",
        "np_node_ids",
        "best",
        "tentative",
        "settled",
        "tparent",
        "touch_nodes",
        "heap_d",
        "heap_v",
        "heap_cap",
        "bar_of",
        "out_set_nodes",
        "out_set_dist",
        "out_set_parent",
        "out_root_pos",
        "out_counts",
        "out_radius",
        "cand_val",
        "cand_touch",
        "sel_buf",
        "excl_flag",
        "out_top_obj",
        "out_top_dist",
        "obj_cache",
    )

    def __init__(self, csr) -> None:
        """Build the support for *csr* at its current weights epoch."""
        np = _np
        dial = csr.dial_support()
        self.epoch = csr._weights_epoch
        self.heap_fallbacks = 0
        self.usable = dial.has_numpy
        self.obj_cache = None
        if not self.usable:  # pragma: no cover - numpy-less guard
            return
        self.np_indptr = _contiguous(dial.np_indptr, np.int64)
        self.np_adj_node = _contiguous(dial.np_adj_node, np.int64)
        self.np_adj_weight = _contiguous(dial.np_adj_weight, np.float64)
        self.np_edge_weight = _contiguous(dial.np_edge_weight, np.float64)
        self.np_edge_start = _contiguous(dial.np_edge_start, np.int64)
        self.np_edge_end = _contiguous(dial.np_edge_end, np.int64)
        edge_index = csr.edge_index
        count = len(csr.adj_eid)
        self.np_adj_epos = np.fromiter(
            map(edge_index.__getitem__, csr.adj_eid), np.int64, count
        )
        self.np_adj_forward = np.frombuffer(
            bytes(csr.adj_forward), dtype=np.uint8
        ).copy()
        self.np_edge_oneway = np.frombuffer(
            bytes(csr.edge_oneway), dtype=np.uint8
        ).copy()
        n = len(csr.node_ids)
        try:
            self.np_node_ids = np.asarray(csr.node_ids, dtype=np.int64)
        except (OverflowError, TypeError, ValueError):
            # Node ids outside int64 cannot ride through the C outputs.
            self.usable = False
            return
        self.best = np.full(n, np.inf, dtype=np.float64)
        self.tentative = np.full(n, np.inf, dtype=np.float64)
        self.settled = np.zeros(n, dtype=np.uint8)
        self.tparent = np.full(n, -1, dtype=np.int64)
        self.touch_nodes = np.empty(n, dtype=np.int64)
        self.bar_of = np.full(n, -1, dtype=np.int64)
        self.heap_cap = count + 8
        self.heap_d = np.empty(self.heap_cap, dtype=np.float64)
        self.heap_v = np.empty(self.heap_cap, dtype=np.int64)
        self.out_set_nodes = np.empty(n, dtype=np.int64)
        self.out_set_dist = np.empty(n, dtype=np.float64)
        self.out_set_parent = np.empty(n, dtype=np.int64)
        self.out_root_pos = np.empty(n, dtype=np.int64)
        self.out_counts = np.zeros(7, dtype=np.int64)
        self.out_radius = np.zeros(1, dtype=np.float64)
        self.cand_val = np.empty(0, dtype=np.float64)
        self.cand_touch = np.empty(0, dtype=np.int64)
        self.sel_buf = np.empty(0, dtype=np.float64)
        self.excl_flag = np.empty(0, dtype=np.uint8)
        self.out_top_obj = np.empty(0, dtype=np.int64)
        self.out_top_dist = np.empty(0, dtype=np.float64)

    def ensure_universe(self, size: int) -> None:
        """Grow the object-universe scratch to at least *size* entries."""
        np = _np
        if len(self.cand_val) >= size:
            return
        self.cand_val = np.full(size, np.inf, dtype=np.float64)
        self.cand_touch = np.empty(size, dtype=np.int64)
        self.sel_buf = np.empty(size, dtype=np.float64)
        self.excl_flag = np.zeros(size, dtype=np.uint8)
        self.out_top_obj = np.empty(size, dtype=np.int64)
        self.out_top_dist = np.empty(size, dtype=np.float64)


def _contiguous(array, dtype):
    """A C-contiguous view/copy of *array* with *dtype*."""
    return _np.ascontiguousarray(array, dtype=dtype)


def native_support(csr) -> NativeSupport:
    """The cached :class:`NativeSupport` of *csr* at its weights epoch.

    Mirrors :meth:`~repro.network.csr.CSRGraph.dial_support`: rebuilt
    lazily whenever the snapshot's ``weights_epoch`` moves (one rebuild per
    storm, not one per update), stored on the snapshot itself.

    Example::

        support = native_support(csr_snapshot(network))
        assert support is native_support(csr_snapshot(network))
    """
    support = getattr(csr, "_native_support", None)
    if support is not None and support.epoch == csr._weights_epoch:
        return support
    support = NativeSupport(csr)
    csr._native_support = support
    return support


class _ObjectColumns:
    """Per-batch flattened object columns + the dense object-id universe."""

    __slots__ = ("ids", "np_ids", "dense", "obj_indptr", "obj_id", "obj_frac")

    def __init__(self, ids, np_ids, dense, obj_indptr, obj_id, obj_frac) -> None:
        self.ids = ids
        self.np_ids = np_ids
        self.dense = dense
        self.obj_indptr = obj_indptr
        self.obj_id = obj_id
        self.obj_frac = obj_frac


def _request_extra_ids(requests, edge_table) -> set:
    """Object ids referenced by *requests* that are not in the edge table.

    Candidate seeds, exclusion sets and barrier lists may reference objects
    that left the table (e.g. removed this tick); they must still join the
    dense universe so rank order — and therefore distance tie-breaking —
    matches Python's comparisons on the raw ids.
    """
    referenced: set = set()
    for request in requests:
        if request.fixed_radius is not None:
            continue
        candidates = request.candidates
        if candidates:
            referenced.update(pair[0] for pair in candidates)
        if request.excluded_objects:
            referenced.update(request.excluded_objects)
        if request.barrier_candidates:
            for barrier_list in request.barrier_candidates.values():
                referenced.update(pair[0] for pair in barrier_list)
    if not referenced:
        return referenced
    return referenced - edge_table.locations.keys()


def _build_object_columns(csr, edge_table, extras) -> _ObjectColumns:
    """Flatten the edge table into dense-edge-position CSR object columns."""
    np = _np
    ids = sorted(edge_table.object_ids())
    if extras:
        ids = sorted(set(ids).union(extras))
    dense = {object_id: index for index, object_id in enumerate(ids)}
    try:
        np_ids = np.asarray(ids, dtype=np.int64) if ids else np.empty(0, np.int64)
    except (OverflowError, TypeError, ValueError):
        # Object ids outside int64 cannot ride through the C outputs;
        # the batch falls back to the pure-python dial engine.
        np_ids = None
    edge_index = csr.edge_index
    positions: List[int] = []
    dense_ids: List[int] = []
    fractions: List[float] = []
    for object_id, location in edge_table.all_objects():
        position = edge_index.get(location.edge_id)
        if position is None:
            # The object sits on an edge outside this snapshot's topology;
            # the Python kernels never scan it either.
            continue
        positions.append(position)
        dense_ids.append(dense[object_id])
        fractions.append(location.fraction)
    n_edges = len(csr.edge_ids)
    if positions:
        pos_arr = np.asarray(positions, dtype=np.int64)
        order = np.argsort(pos_arr, kind="stable")
        obj_id = np.asarray(dense_ids, dtype=np.int64)[order]
        obj_frac = np.asarray(fractions, dtype=np.float64)[order]
        counts = np.bincount(pos_arr, minlength=n_edges)
        obj_indptr = np.zeros(n_edges + 1, dtype=np.int64)
        np.cumsum(counts, out=obj_indptr[1:])
    else:
        obj_id = np.empty(0, dtype=np.int64)
        obj_frac = np.empty(0, dtype=np.float64)
        obj_indptr = np.zeros(n_edges + 1, dtype=np.int64)
    return _ObjectColumns(ids, np_ids, dense, obj_indptr, obj_id, obj_frac)


def _object_columns(csr, support, edge_table, requests) -> _ObjectColumns:
    """The batch's object columns, cached per edge-table version."""
    extras = _request_extra_ids(requests, edge_table)
    version = edge_table.version
    if not extras:
        cached = support.obj_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        columns = _build_object_columns(csr, edge_table, extras)
        support.obj_cache = (version, columns)
        return columns
    return _build_object_columns(csr, edge_table, extras)


def _ptr(array):
    """Raw data address of a (C-contiguous) numpy array, as a plain int.

    ``rk_expand`` has typed ``argtypes``, so addresses (and every other
    scalar) are passed as Python ints/floats with no per-call ctypes
    wrapper objects.
    """
    return array.ctypes.data


def native_expand_batch(
    network,
    edge_table,
    requests: Iterable,
    csr=None,
    counters=None,
) -> List:
    """Run a batch of expansion requests through the compiled kernel.

    The drop-in ``kernel="native"`` counterpart of
    :func:`repro.network.dial.dial_expand_batch`: outcomes are returned in
    request order and are byte-identical to the dial and csr engines.
    When the compiled backend is unavailable (no compiler, numpy missing,
    or :data:`DISABLE_ENV` set) the whole batch transparently runs on the
    pure-python dial engine; individual requests the C loop cannot serve
    exactly (fixed-radius range searches, frontier overflow) fall back to
    :func:`~repro.core.search.expand_knn` per request.

    Example::

        from repro.core.search import ExpansionRequest, expand_knn_batch

        outcomes = expand_knn_batch(
            network, edge_table, [ExpansionRequest(k=2, query_location=loc)],
            kernel="native",
        )
    """
    global _CORE
    lib = load_native_library()
    if lib is None:
        from repro.network.dial import dial_expand_batch

        return dial_expand_batch(
            network, edge_table, requests, csr=csr, counters=counters
        )
    if _CORE is None:
        from repro.core.expansion import ExpansionState
        from repro.core.search import SearchCounters, SearchOutcome, expand_knn

        _CORE = (ExpansionState, SearchOutcome, SearchCounters, expand_knn)
    SearchCounters, expand_knn = _CORE[2], _CORE[3]
    from repro.network.csr import csr_snapshot

    if csr is None:
        csr = csr_snapshot(network)
    if counters is None:
        counters = SearchCounters()
    requests = list(requests)
    support = native_support(csr)
    if not support.usable:  # pragma: no cover - numpy-less guard
        from repro.network.dial import dial_expand_batch

        return dial_expand_batch(
            network, edge_table, requests, csr=csr, counters=counters
        )
    columns = _object_columns(csr, support, edge_table, requests)
    if columns.np_ids is None:
        from repro.network.dial import dial_expand_batch

        return dial_expand_batch(
            network, edge_table, requests, csr=csr, counters=counters
        )
    support.ensure_universe(len(columns.ids))
    # Arguments that are identical for every request of the batch are
    # wrapped for ctypes once here; only the per-request block in the
    # middle of the C signature is marshalled inside the loop.
    head = (
        len(csr.node_ids),
        _ptr(support.np_indptr),
        _ptr(support.np_adj_node),
        _ptr(support.np_adj_weight),
        _ptr(support.np_adj_epos),
        _ptr(support.np_adj_forward),
        _ptr(support.np_edge_weight),
        _ptr(support.np_edge_start),
        _ptr(support.np_edge_end),
        _ptr(support.np_edge_oneway),
        _ptr(columns.obj_indptr),
        _ptr(columns.obj_id),
        _ptr(columns.obj_frac),
        _ptr(support.np_node_ids),
        _ptr(columns.np_ids),
    )
    tail = (
        _ptr(support.best),
        _ptr(support.tentative),
        _ptr(support.settled),
        _ptr(support.tparent),
        _ptr(support.touch_nodes),
        _ptr(support.heap_d),
        _ptr(support.heap_v),
        support.heap_cap,
        _ptr(support.cand_val),
        _ptr(support.cand_touch),
        _ptr(support.sel_buf),
        _ptr(support.excl_flag),
        _ptr(support.bar_of),
        _ptr(support.out_set_nodes),
        _ptr(support.out_set_dist),
        _ptr(support.out_set_parent),
        _ptr(support.out_root_pos),
        _ptr(support.out_top_obj),
        _ptr(support.out_top_dist),
        _ptr(support.out_counts),
        _ptr(support.out_radius),
    )
    helper = load_outcome_helper()
    if helper is not None:
        # The helper's output-column addresses are also batch-constant.
        out_ptrs = (
            _ptr(support.out_set_nodes),
            _ptr(support.out_set_dist),
            _ptr(support.out_set_parent),
            _ptr(support.out_root_pos),
            _ptr(support.out_top_obj),
            _ptr(support.out_top_dist),
        )
    else:
        out_ptrs = None
    outcomes = []
    for request in requests:
        if request.fixed_radius is not None:
            # Fixed-radius (range) searches terminate on a pinned bound;
            # like the dial engine, serve them through the exact heap
            # kernel over the same shared snapshot.
            outcomes.append(_run_heap(expand_knn, network, edge_table, request, csr, counters))
            continue
        outcome = _native_search(
            lib, request, csr, support, columns, head, tail, counters,
            helper, out_ptrs,
        )
        if outcome is None:
            support.heap_fallbacks += 1
            outcomes.append(_run_heap(expand_knn, network, edge_table, request, csr, counters))
        else:
            outcomes.append(outcome)
    return outcomes


def _run_heap(expand_knn, network, edge_table, request, csr, counters):
    """Serve one request through the exact heap kernel (fallback path)."""
    return expand_knn(
        network,
        edge_table,
        request.k,
        query_location=request.query_location,
        source_node=request.source_node,
        preverified=request.preverified,
        preverified_parent=request.preverified_parent,
        candidates=request.candidates,
        barrier_candidates=request.barrier_candidates,
        coverage_radius=request.coverage_radius,
        excluded_objects=request.excluded_objects,
        counters=counters,
        csr=csr,
        fixed_radius=request.fixed_radius,
    )


def _native_search(
    lib, request, csr, support, columns, head, tail, counters,
    helper=None, out_ptrs=None,
):
    """One expansion through the C loop; None when the kernel must fall back.

    Marshals the request into dense arrays, invokes ``rk_expand`` and
    assembles the :class:`~repro.core.search.SearchOutcome` from the C
    outputs.  Raises the same typed errors, at the same points, as the
    Python kernels.
    """
    ExpansionState, SearchOutcome = _CORE[0], _CORE[1]
    np = _np

    k = request.k
    query_location = request.query_location
    source_node = request.source_node
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    if query_location is None and source_node is None:
        raise InvalidQueryError("expand_knn needs a query_location or a source_node")

    node_index = csr.node_index
    dense = columns.dense

    preverified = request.preverified
    if preverified:
        n_pre = len(preverified)
        try:
            pre_idx = np.fromiter(
                map(node_index.__getitem__, preverified.keys()), np.int64, n_pre
            )
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from exc
        pre_dist = np.fromiter(preverified.values(), np.float64, n_pre)
        pre_args = (pre_idx.ctypes.data, pre_dist.ctypes.data, n_pre)
    else:
        pre_args = (0, 0, 0)

    candidates = request.candidates or ()
    if candidates:
        cand_obj_list: List[int] = []
        cand_dist_list: List[float] = []
        for object_id, distance in candidates:
            cand_obj_list.append(dense[object_id])
            cand_dist_list.append(distance)
        cand_obj = np.asarray(cand_obj_list, dtype=np.int64)
        cand_dist = np.asarray(cand_dist_list, dtype=np.float64)
        cand_args = (
            cand_obj.ctypes.data, cand_dist.ctypes.data, len(cand_obj_list)
        )
    else:
        cand_args = (0, 0, 0)

    excluded = request.excluded_objects
    if excluded:
        excl_obj = np.fromiter(map(dense.__getitem__, excluded), np.int64, len(excluded))
        excl_args = (excl_obj.ctypes.data, len(excluded))
    else:
        excl_args = (0, 0)

    barriers = request.barrier_candidates
    if barriers:
        bar_node_list: List[int] = []
        bar_indptr_list: List[int] = [0]
        bar_obj_list: List[int] = []
        bar_dist_list: List[float] = []
        for node_id, barrier_list in barriers.items():
            idx = node_index.get(node_id)
            if idx is None:
                # Barriers outside the network never settle (legacy parity).
                continue
            bar_node_list.append(idx)
            for object_id, from_node_distance in barrier_list:
                bar_obj_list.append(dense[object_id])
                bar_dist_list.append(from_node_distance)
            bar_indptr_list.append(len(bar_obj_list))
        bar_node = np.asarray(bar_node_list, dtype=np.int64)
        bar_indptr = np.asarray(bar_indptr_list, dtype=np.int64)
        bar_obj = np.asarray(bar_obj_list, dtype=np.int64)
        bar_dist = np.asarray(bar_dist_list, dtype=np.float64)
        bar_args = (
            bar_node.ctypes.data, bar_indptr.ctypes.data,
            bar_obj.ctypes.data, bar_dist.ctypes.data, len(bar_node_list),
        )
    else:
        bar_args = (0, 0, 0, 0, 0)

    if query_location is not None:
        q_args = (
            csr.index_of_edge(query_location.edge_id),
            query_location.fraction,
        )
    else:
        q_args = (-1, 0.0)
    source_idx = (
        csr.index_of_node(source_node) if source_node is not None else -1
    )
    coverage_radius = request.coverage_radius
    if coverage_radius is not None:
        cov_args = (1, coverage_radius)
    else:
        cov_args = (0, 0.0)

    rc = lib.rk_expand(
        *head,
        k,
        *q_args,
        source_idx,
        *pre_args,
        *cand_args,
        *excl_args,
        *bar_args,
        *cov_args,
        *tail,
    )
    if rc != 0:
        return None

    counts = support.out_counts.tolist()
    # Counters land only on success: a fallen-back run re-counts through
    # the heap kernel, so adding here as well would double-bill it.
    counters.searches += 1
    counters.nodes_expanded += counts[0]
    counters.edges_scanned += counts[1]
    counters.objects_considered += counts[2]
    counters.heap_pushes += counts[3]
    n_settled = counts[4]
    n_top = counts[5]

    node_dist: Dict[int, float] = dict(preverified) if preverified else {}
    preverified_parent = request.preverified_parent
    if preverified_parent:
        if preverified_parent.keys() == node_dist.keys():
            # The monitors resume with the parent map of the very state
            # whose distances seeded ``preverified``; a plain copy equals
            # the per-key rebuild below and skips one dict probe per node.
            parent: Dict[int, Optional[int]] = dict(preverified_parent)
        else:
            parent = {
                node_id: preverified_parent.get(node_id) for node_id in node_dist
            }
    else:
        parent = dict.fromkeys(node_dist)
    # The C loop already translated dense indices to caller-visible ids in
    # its outputs; the dict inserts run in settle order, so insertion order
    # (and content) matches the Python kernels exactly.
    if helper is not None:
        neighbors: List[Tuple[int, float]] = helper(
            *out_ptrs, n_settled, counts[6], n_top, node_dist, parent
        )
    else:
        if n_settled:
            names = support.out_set_nodes[:n_settled].tolist()
            node_dist.update(zip(names, support.out_set_dist[:n_settled].tolist()))
            parent.update(zip(names, support.out_set_parent[:n_settled].tolist()))
            for i in support.out_root_pos[: counts[6]].tolist():
                parent[names[i]] = None  # expansion roots have no parent
        if n_top:
            neighbors = list(
                zip(
                    support.out_top_obj[:n_top].tolist(),
                    support.out_top_dist[:n_top].tolist(),
                )
            )
        else:
            neighbors = []
    state = ExpansionState(node_dist=node_dist, parent=parent)
    return SearchOutcome(
        neighbors=neighbors,
        radius=float(support.out_radius[0]),
        state=state,
    )
