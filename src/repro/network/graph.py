"""Road-network graph model: nodes, weighted edges, adjacency.

The network is an undirected graph (Section 3 of the paper: edges are
bidirectional; one-way roads can be modelled by setting ``oneway=True`` on an
edge, in which case it is only traversable from ``start`` to ``end``).  Every
node carries workspace coordinates, every edge a positive *weight* — the
travel cost used for network distances — which may fluctuate over time due
to traffic.  Edge weights are therefore mutable through
:meth:`RoadNetwork.set_edge_weight`; everything else about the topology is
immutable after construction unless the editing methods are used explicitly.

Positions *on* the network (for data objects and queries) are expressed as a
:class:`NetworkLocation`: an edge id plus a fraction in ``[0, 1]`` measured
from the edge's start node.  Fractions — rather than absolute offsets — are
used so that a weight fluctuation does not invalidate stored positions: the
geometric position stays put while the travel cost of reaching it scales
with the weight.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    InvalidLocationError,
    InvalidWeightError,
    NodeNotFoundError,
)
from repro.spatial.geometry import Point, Rect, Segment
from repro.utils.validation import require_positive

#: The finite sentinel weight for a *closed* road.  True ``float("inf")``
#: weights are rejected everywhere (:class:`InvalidWeightError`): an infinite
#: weight would poison distance arithmetic (``inf - inf`` → NaN in the
#: incremental monitors) and overflow bucket indices in the Dial kernel.
#: Closures instead pin the weight to this huge, exactly-representable
#: power of two — traversal stays defined (an object on a closed edge keeps a
#: finite, astronomically large distance and drops out of any realistic k-NN
#: result) and all kernels agree byte-for-byte.  See ``docs/queries.md``.
CLOSED_EDGE_WEIGHT = 2.0**40


@dataclass(frozen=True)
class Node:
    """A network node (road intersection or shape point)."""

    node_id: int
    point: Point

    @property
    def x(self) -> float:
        """The node's workspace x coordinate."""
        return self.point.x

    @property
    def y(self) -> float:
        """The node's workspace y coordinate."""
        return self.point.y


@dataclass
class Edge:
    """A road segment between two nodes.

    Attributes:
        edge_id: unique identifier.
        start: id of the start node.
        end: id of the end node.
        weight: current travel cost (positive, mutable via the network).
        base_weight: the initial weight (the segment's length in the paper's
            default setting); traffic models fluctuate ``weight`` around it.
        oneway: when True the edge is traversable only from start to end.
    """

    edge_id: int
    start: int
    end: int
    weight: float
    base_weight: float = field(default=0.0)
    oneway: bool = field(default=False)

    def __post_init__(self) -> None:
        if self.start == self.end:
            raise InvalidLocationError(
                f"edge {self.edge_id} is a self loop at node {self.start}"
            )
        if not _is_valid_weight(self.weight):
            raise InvalidWeightError(self.weight)
        if self.base_weight <= 0.0:
            self.base_weight = self.weight

    def other_endpoint(self, node_id: int) -> int:
        """Return the endpoint that is not *node_id*.

        Raises:
            InvalidLocationError: if *node_id* is not an endpoint of the edge.
        """
        if node_id == self.start:
            return self.end
        if node_id == self.end:
            return self.start
        raise InvalidLocationError(
            f"node {node_id} is not an endpoint of edge {self.edge_id}"
        )

    def endpoints(self) -> Tuple[int, int]:
        """Return ``(start, end)``."""
        return (self.start, self.end)


@dataclass(frozen=True)
class NetworkLocation:
    """A position on the network: an edge id and a fraction along it.

    ``fraction`` is measured from the edge's *start* node, so the travel cost
    from the start node to the location is ``fraction * edge.weight`` and the
    cost from the end node is ``(1 - fraction) * edge.weight``.

    Example::

        location = NetworkLocation(edge_id=10, fraction=0.25)
        cost_from_start = location.offset(network.edge(10).weight)
    """

    edge_id: int
    fraction: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise InvalidLocationError(
                f"fraction must be in [0, 1], got {self.fraction!r}"
            )

    def offset(self, weight: float) -> float:
        """Travel cost from the edge's start node under the given weight."""
        return self.fraction * weight

    def reversed_offset(self, weight: float) -> float:
        """Travel cost from the edge's end node under the given weight."""
        return (1.0 - self.fraction) * weight


class RoadNetwork:
    """An in-memory road network with mutable edge weights.

    The class offers O(1) lookups by node/edge id, adjacency iteration, and
    weight updates.  It deliberately knows nothing about data objects,
    queries, or influence lists — those live in the edge table and the
    monitoring algorithms — so that the same network instance can back
    several monitors (OVH / IMA / GMA) running in lock-step.

    Example::

        network = RoadNetwork()
        network.add_node(1, x=0.0, y=0.0)
        network.add_node(2, x=3.0, y=4.0)
        network.add_edge(10, 1, 2)             # weight defaults to length 5.0
        network.set_edge_weight(10, 7.5)       # congestion
    """

    def __init__(self) -> None:
        self._nodes: Dict[int, Node] = {}
        self._edges: Dict[int, Edge] = {}
        self._adjacency: Dict[int, List[int]] = {}
        self._edge_by_endpoints: Dict[Tuple[int, int], int] = {}
        self._weight_version = 0
        self._topology_version = 0
        self._weight_listeners: List[Callable[[Optional[int], float], None]] = []

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        return (
            f"RoadNetwork(nodes={len(self._nodes)}, edges={len(self._edges)})"
        )

    def __getstate__(self) -> Dict[str, object]:
        """Pickle everything except the weight listeners.

        Listeners are in-process callbacks (typically closures owned by CSR
        snapshots); they are meaningless in another process, so a pickled
        replica — e.g. one shipped to a sharded-server worker — starts with
        an empty listener list and registers its own.
        """
        state = self.__dict__.copy()
        state["_weight_listeners"] = []
        return state

    @property
    def node_count(self) -> int:
        """Number of nodes in the network."""
        return len(self._nodes)

    @property
    def edge_count(self) -> int:
        """Number of edges in the network."""
        return len(self._edges)

    @property
    def weight_version(self) -> int:
        """Monotonic counter bumped on every weight change (cache invalidation)."""
        return self._weight_version

    @property
    def topology_version(self) -> int:
        """Monotonic counter bumped whenever nodes or edges are added/removed.

        Snapshots of the topology (e.g. the CSR kernel in
        :mod:`repro.network.csr`) compare this counter to decide whether a
        full rebuild is needed, as opposed to the cheap incremental weight
        refresh driven by :meth:`add_weight_listener`.
        """
        return self._topology_version

    # ------------------------------------------------------------------
    # change notification
    # ------------------------------------------------------------------
    def add_weight_listener(
        self, listener: Callable[[Optional[int], float], None]
    ) -> None:
        """Register a callback invoked on every weight change.

        The callback receives ``(edge_id, new_weight)`` for a single-edge
        update and ``(None, 0.0)`` when every weight may have changed at once
        (:meth:`reset_weights`).  Listeners enable derived structures such as
        the CSR snapshot to refresh incrementally instead of rebuilding.
        """
        if listener not in self._weight_listeners:
            self._weight_listeners.append(listener)

    def remove_weight_listener(
        self, listener: Callable[[Optional[int], float], None]
    ) -> None:
        """Unregister a weight listener; no-op when it is not registered."""
        try:
            self._weight_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, node_id: int, x: float, y: float) -> Node:
        """Add a node at coordinates ``(x, y)``.

        Raises:
            DuplicateNodeError: if the id already exists.
        """
        if node_id in self._nodes:
            raise DuplicateNodeError(node_id)
        node = Node(node_id, Point(float(x), float(y)))
        self._nodes[node_id] = node
        self._adjacency[node_id] = []
        self._topology_version += 1
        return node

    def add_edge(
        self,
        edge_id: int,
        start: int,
        end: int,
        weight: Optional[float] = None,
        oneway: bool = False,
    ) -> Edge:
        """Add an edge between two existing nodes.

        When *weight* is omitted the Euclidean distance between the endpoints
        is used (the paper's default: initial weights equal segment lengths).

        Raises:
            DuplicateEdgeError: if the edge id already exists.
            NodeNotFoundError: if either endpoint does not exist.
            InvalidWeightError: if the weight is not a positive finite number.
        """
        if edge_id in self._edges:
            raise DuplicateEdgeError(edge_id)
        if start not in self._nodes:
            raise NodeNotFoundError(start)
        if end not in self._nodes:
            raise NodeNotFoundError(end)
        if weight is None:
            weight = self._nodes[start].point.distance_to(self._nodes[end].point)
            if weight <= 0.0:
                # Coincident endpoints get a tiny positive weight so the edge
                # remains usable; generators avoid this situation anyway.
                weight = 1e-9
        if not _is_valid_weight(weight):
            raise InvalidWeightError(weight)
        edge = Edge(edge_id, start, end, float(weight), float(weight), oneway)
        self._edges[edge_id] = edge
        self._adjacency[start].append(edge_id)
        self._adjacency[end].append(edge_id)
        self._edge_by_endpoints[(start, end)] = edge_id
        self._edge_by_endpoints.setdefault((end, start), edge_id)
        self._topology_version += 1
        return edge

    def remove_edge(self, edge_id: int) -> None:
        """Remove an edge from the network.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
        """
        edge = self._edges.pop(edge_id, None)
        if edge is None:
            raise EdgeNotFoundError(edge_id)
        self._adjacency[edge.start].remove(edge_id)
        self._adjacency[edge.end].remove(edge_id)
        for key in ((edge.start, edge.end), (edge.end, edge.start)):
            if self._edge_by_endpoints.get(key) == edge_id:
                del self._edge_by_endpoints[key]
        self._weight_version += 1
        self._topology_version += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        """Return the node with the given id.

        Raises:
            NodeNotFoundError: if it does not exist.
        """
        try:
            return self._nodes[node_id]
        except KeyError as exc:
            raise NodeNotFoundError(node_id) from exc

    def edge(self, edge_id: int) -> Edge:
        """Return the edge with the given id.

        Raises:
            EdgeNotFoundError: if it does not exist.
        """
        try:
            return self._edges[edge_id]
        except KeyError as exc:
            raise EdgeNotFoundError(edge_id) from exc

    def has_node(self, node_id: int) -> bool:
        """True when a node with this id exists."""
        return node_id in self._nodes

    def has_edge(self, edge_id: int) -> bool:
        """True when an edge with this id exists."""
        return edge_id in self._edges

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes."""
        return iter(self._nodes.values())

    def edges(self) -> Iterator[Edge]:
        """Iterate over all edges."""
        return iter(self._edges.values())

    def node_ids(self) -> Iterator[int]:
        """Iterate over all node ids."""
        return iter(self._nodes.keys())

    def edge_ids(self) -> Iterator[int]:
        """Iterate over all edge ids."""
        return iter(self._edges.keys())

    def edge_between(self, u: int, v: int) -> Optional[int]:
        """Return the id of an edge connecting *u* and *v*, if any."""
        return self._edge_by_endpoints.get((u, v))

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def incident_edges(self, node_id: int) -> Sequence[int]:
        """Return the ids of the edges incident to *node_id*.

        Raises:
            NodeNotFoundError: if the node does not exist.
        """
        try:
            return tuple(self._adjacency[node_id])
        except KeyError as exc:
            raise NodeNotFoundError(node_id) from exc

    def degree(self, node_id: int) -> int:
        """Number of incident edges (bidirectional edges count once)."""
        return len(self.incident_edges(node_id))

    def neighbors(self, node_id: int) -> List[Tuple[int, int, float]]:
        """Return ``(edge_id, neighbor_node_id, weight)`` triples from *node_id*.

        One-way edges are only reported in their traversable direction.
        """
        result: List[Tuple[int, int, float]] = []
        for edge_id in self.incident_edges(node_id):
            edge = self._edges[edge_id]
            if edge.oneway and edge.start != node_id:
                continue
            result.append((edge_id, edge.other_endpoint(node_id), edge.weight))
        return result

    def intersection_nodes(self) -> List[int]:
        """Node ids with degree different from 2 (sequence endpoints)."""
        return [node_id for node_id in self._nodes if self.degree(node_id) != 2]

    # ------------------------------------------------------------------
    # weights
    # ------------------------------------------------------------------
    def set_edge_weight(self, edge_id: int, weight: float) -> float:
        """Set the current weight of an edge and return the previous value.

        Raises:
            EdgeNotFoundError: if the edge does not exist.
            InvalidWeightError: if the weight is not positive and finite.
        """
        edge = self.edge(edge_id)
        if not _is_valid_weight(weight):
            raise InvalidWeightError(weight)
        previous = edge.weight
        edge.weight = float(weight)
        self._weight_version += 1
        # Iterate a copy: listeners may unregister themselves when notified.
        for listener in tuple(self._weight_listeners):
            listener(edge_id, edge.weight)
        return previous

    def scale_edge_weight(self, edge_id: int, factor: float) -> float:
        """Multiply the current weight of an edge by *factor*.

        Returns the previous weight.  Used by the traffic model (±10 %
        fluctuations in the paper's experiments).
        """
        require_positive(factor, "factor")
        edge = self.edge(edge_id)
        return self.set_edge_weight(edge_id, edge.weight * factor)

    def reset_weights(self) -> None:
        """Restore every edge's weight to its base (initial) value."""
        for edge in self._edges.values():
            edge.weight = edge.base_weight
        self._weight_version += 1
        for listener in tuple(self._weight_listeners):
            listener(None, 0.0)

    def total_weight(self) -> float:
        """Sum of all current edge weights."""
        return sum(edge.weight for edge in self._edges.values())

    def average_edge_weight(self) -> float:
        """Mean current edge weight (0 for an empty network)."""
        if not self._edges:
            return 0.0
        return self.total_weight() / len(self._edges)

    # ------------------------------------------------------------------
    # geometry
    # ------------------------------------------------------------------
    def edge_segment(self, edge_id: int) -> Segment:
        """Return the straight-line segment between an edge's endpoints."""
        edge = self.edge(edge_id)
        return Segment(self._nodes[edge.start].point, self._nodes[edge.end].point)

    def bounding_box(self, margin: float = 0.0) -> Rect:
        """Bounding rectangle of all node coordinates.

        Raises:
            NodeNotFoundError: if the network has no nodes.
        """
        if not self._nodes:
            raise NodeNotFoundError(-1)
        rect = Rect.from_points(node.point for node in self._nodes.values())
        if margin:
            rect = rect.expanded(margin)
        return rect

    def location_point(self, location: NetworkLocation) -> Point:
        """Workspace coordinates of a network location (linear interpolation)."""
        segment = self.edge_segment(location.edge_id)
        return segment.point_at_fraction(location.fraction)

    def location_at_node(self, node_id: int) -> NetworkLocation:
        """A :class:`NetworkLocation` equivalent to standing on *node_id*.

        Raises:
            NodeNotFoundError: if the node has no incident edges (isolated).
        """
        incident = self.incident_edges(node_id)
        if not incident:
            raise NodeNotFoundError(node_id)
        edge = self._edges[incident[0]]
        fraction = 0.0 if edge.start == node_id else 1.0
        return NetworkLocation(incident[0], fraction)

    def validate_location(self, location: NetworkLocation) -> None:
        """Raise if the location references a non-existent edge."""
        if location.edge_id not in self._edges:
            raise EdgeNotFoundError(location.edge_id)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def connected_components(self) -> List[Set[int]]:
        """Node sets of the (undirected) connected components."""
        unseen = set(self._nodes)
        components: List[Set[int]] = []
        while unseen:
            root = next(iter(unseen))
            component: Set[int] = set()
            stack = [root]
            while stack:
                current = stack.pop()
                if current in component:
                    continue
                component.add(current)
                for edge_id in self._adjacency[current]:
                    other = self._edges[edge_id].other_endpoint(current)
                    if other not in component:
                        stack.append(other)
            unseen -= component
            components.append(component)
        return components

    def is_connected(self) -> bool:
        """True if the network has at most one connected component."""
        return len(self.connected_components()) <= 1

    # ------------------------------------------------------------------
    # copying
    # ------------------------------------------------------------------
    def copy(self) -> "RoadNetwork":
        """Return a deep copy (used to run several monitors independently)."""
        clone = RoadNetwork()
        for node in self._nodes.values():
            clone.add_node(node.node_id, node.x, node.y)
        for edge in self._edges.values():
            new_edge = clone.add_edge(
                edge.edge_id, edge.start, edge.end, edge.weight, edge.oneway
            )
            new_edge.base_weight = edge.base_weight
        return clone


def _is_valid_weight(weight: object) -> bool:
    """A weight is valid when it is a positive, finite real number."""
    if isinstance(weight, bool) or not isinstance(weight, (int, float)):
        return False
    return weight > 0 and weight != float("inf") and weight == weight
