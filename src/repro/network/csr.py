"""Flat-array CSR snapshot of a :class:`~repro.network.graph.RoadNetwork`.

The monitoring hot path (the Figure-2 expansion and every resumed search)
spends most of its time iterating adjacency.  Doing that over per-node dicts
of :class:`~repro.network.graph.Edge` dataclasses costs several attribute
lookups and a tuple allocation per neighbor; at production scale the Python
overhead dwarfs the algorithmic work the paper's IMA/GMA save.  This module
provides a compressed-sparse-row view of the network:

* nodes and edges are mapped to dense integer indices,
* adjacency is three parallel flat columns (``adj_node``, ``adj_eid``,
  ``adj_weight``) sliced per node by ``indptr``, with one entry per
  *traversable* direction (one-way edges appear once),
* ``adj_forward`` records whether an entry leaves the edge's start node, so
  object offsets along the edge can be computed without touching the edge.

The snapshot registers a weight listener with the network, so a
``set_edge_weight`` call patches the affected column entries in O(degree)
instead of forcing a rebuild; topology edits (add/remove node or edge) bump
the network's ``topology_version`` and cause a lazy full rebuild on the next
:func:`csr_snapshot` call.  One snapshot is cached per network.
"""

from __future__ import annotations

import threading
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import EdgeNotFoundError, MonitoringError, NodeNotFoundError
from repro.network.graph import RoadNetwork

_INF = float("inf")


class _Scratch:
    """Reusable per-search work arrays, reset via the touched-index list.

    Allocating four O(n) buffers per search dominates small searches on
    large networks; instead the kernel borrows these and resets only the
    entries it wrote.  ``in_use`` guards against (unexpected) reentrancy, in
    which case the caller falls back to fresh allocations.
    """

    __slots__ = ("best", "tentative", "settled", "tentative_parent", "in_use")

    def __init__(self, size: int) -> None:
        self.best: List[float] = [_INF] * size
        self.tentative: List[float] = [_INF] * size
        self.settled = bytearray(size)
        self.tentative_parent: List[int] = [-1] * size
        self.in_use = False

    def release(self, touched: List[int]) -> None:
        """Reset every touched slot and hand the buffers back."""
        best = self.best
        tentative = self.tentative
        settled = self.settled
        parent = self.tentative_parent
        for index in touched:
            best[index] = _INF
            tentative[index] = _INF
            settled[index] = 0
            parent[index] = -1
        self.in_use = False


class _EdgeScratch:
    """Reusable per-walk edge-marking buffer, reset via the touched list.

    The influence-map computation visits the edges incident to every
    verified node and must process each edge once; marking dense edge
    positions in a shared bytearray avoids allocating a fresh set per query
    (thousands of times per timestamp on update-heavy workloads).
    """

    __slots__ = ("seen", "in_use")

    def __init__(self, size: int) -> None:
        self.seen = bytearray(size)
        self.in_use = False

    def release(self, touched: List[int]) -> None:
        """Reset every touched slot and hand the buffer back."""
        seen = self.seen
        for index in touched:
            seen[index] = 0
        self.in_use = False


class CSRGraph:
    """Immutable flat-array adjacency snapshot of a road network.

    Attributes (all parallel / index-based; treat as read-only):
        node_ids: dense index -> original node id.
        node_index: original node id -> dense index.
        edge_ids: dense edge index -> original edge id.
        edge_index: original edge id -> dense edge index.
        indptr: per-node slice boundaries into the ``adj_*`` columns.
        adj_node: neighbor *node index* per adjacency entry.
        adj_eid: original *edge id* per entry (for edge-table lookups).
        adj_weight: current weight per entry (kept fresh incrementally).
        adj_forward: 1 when the entry leaves the edge's start node.
        edge_weight: current weight per dense edge index.
        edge_start / edge_end: endpoint node indices per dense edge index.
        edge_oneway: 1 for one-way edges.
        inc_indptr: per-node slice boundaries into ``inc_edge``.
        inc_edge: dense edge *positions* incident to each node.  Unlike the
            ``adj_*`` columns this incidence view contains every incident
            edge regardless of traversability (a one-way edge appears at
            both endpoints), which is what influence-region computations
            need.

    Example::

        snapshot = csr_snapshot(network)       # cached, kept fresh
        start, stop = snapshot.indptr[0], snapshot.indptr[1]
        print(snapshot.adj_node[start:stop])   # neighbors of dense node 0
    """

    def __init__(self, network: RoadNetwork) -> None:
        # Weak references in both directions: a strong back-reference would
        # keep the snapshot-cache key alive forever, and registering a bound
        # method as the listener would pin every snapshot for the network's
        # whole lifetime.  The wrapper below forwards weight changes while
        # the snapshot lives and unregisters itself once it is gone, so
        # loop-constructed snapshots cost at most one stale closure until
        # the next weight change.
        self._network_ref = weakref.ref(network)
        self._weights_stale = False
        self.rebuild()
        self._register_listener(network)

    def _register_listener(self, network: RoadNetwork) -> None:
        """Register the weak-reference weight forwarder on *network*.

        Shared by the owning constructor and :func:`attach_shared_csr`, so
        listener lifetime semantics cannot diverge between owned and
        attached snapshots.
        """
        self_ref = weakref.ref(self)
        network_ref = self._network_ref

        def _forward(edge_id: Optional[int], weight: float) -> None:
            snapshot = self_ref()
            if snapshot is None:
                live_network = network_ref()
                if live_network is not None:
                    live_network.remove_weight_listener(_forward)
                return
            snapshot._on_weight_change(edge_id, weight)

        self._listener: Optional[Callable[[Optional[int], float], None]] = _forward
        network.add_weight_listener(_forward)

    def close(self) -> None:
        """Detach from the network's weight notifications (idempotent).

        After closing, the snapshot no longer tracks weight changes; use it
        only if you know the weights are frozen, or build a fresh one.
        """
        network = self._network_ref()
        if network is not None and self._listener is not None:
            network.remove_weight_listener(self._listener)
        self._listener = None

    # ------------------------------------------------------------------
    # construction / refresh
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Rebuild every column from the network's current state."""
        network = self.network
        self.node_ids: List[int] = list(network.node_ids())
        self.node_index: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(self.node_ids)
        }
        self.edge_ids: List[int] = list(network.edge_ids())
        self.edge_index: Dict[int, int] = {
            edge_id: index for index, edge_id in enumerate(self.edge_ids)
        }

        node_index = self.node_index
        edge_weight: List[float] = []
        edge_start: List[int] = []
        edge_end: List[int] = []
        edge_oneway = bytearray(len(self.edge_ids))
        for position, edge_id in enumerate(self.edge_ids):
            edge = network.edge(edge_id)
            edge_weight.append(edge.weight)
            edge_start.append(node_index[edge.start])
            edge_end.append(node_index[edge.end])
            if edge.oneway:
                edge_oneway[position] = 1
        self.edge_weight = edge_weight
        self.edge_start = edge_start
        self.edge_end = edge_end
        self.edge_oneway = edge_oneway

        indptr: List[int] = [0]
        adj_node: List[int] = []
        adj_eid: List[int] = []
        adj_weight: List[float] = []
        adj_forward = bytearray()
        inc_indptr: List[int] = [0]
        inc_edge: List[int] = []
        for node_id in self.node_ids:
            for edge_id in network.incident_edges(node_id):
                edge = network.edge(edge_id)
                inc_edge.append(self.edge_index[edge_id])
                if edge.oneway and edge.start != node_id:
                    continue
                adj_node.append(node_index[edge.other_endpoint(node_id)])
                adj_eid.append(edge_id)
                adj_weight.append(edge.weight)
                adj_forward.append(1 if edge.start == node_id else 0)
            indptr.append(len(adj_node))
            inc_indptr.append(len(inc_edge))
        self.indptr = indptr
        self.adj_node = adj_node
        self.adj_eid = adj_eid
        self.adj_weight = adj_weight
        self.adj_forward = adj_forward
        self.inc_indptr = inc_indptr
        self.inc_edge = inc_edge
        self._build_entry_slots()
        self._topology_version = network.topology_version
        self._weights_stale = False
        self._weights_epoch = getattr(self, "_weights_epoch", -1) + 1
        self._dial_support = None
        self._scratch = _Scratch(len(self.node_ids))
        self._edge_scratch = _EdgeScratch(len(self.edge_ids))

    def _build_entry_slots(self) -> None:
        """Derive the per-dense-edge adjacency slots from ``adj_eid``.

        Used for incremental weight patching; shared by :meth:`rebuild` and
        :func:`attach_shared_csr`.
        """
        entry_slots: List[List[int]] = [[] for _ in self.edge_ids]
        edge_index = self.edge_index
        for slot, edge_id in enumerate(self.adj_eid):
            entry_slots[edge_index[edge_id]].append(slot)
        self._entry_slots = entry_slots

    def _on_weight_change(self, edge_id: Optional[int], new_weight: float) -> None:
        if edge_id is None:
            self._weights_stale = True
            self._weights_epoch += 1
            return
        position = self.edge_index.get(edge_id)
        if position is None:
            # Edge added after the snapshot; the topology version already
            # differs, so the next csr_snapshot() call rebuilds everything.
            return
        self._weights_epoch += 1
        self.edge_weight[position] = new_weight
        adj_weight = self.adj_weight
        for slot in self._entry_slots[position]:
            adj_weight[slot] = new_weight

    def apply_weight_deltas(self, deltas: Iterable[Tuple[int, float]]) -> None:
        """Patch the weight columns from ``(edge_id, new_weight)`` deltas.

        The manual counterpart of the network weight listener, for callers
        that hold a snapshot without a live network (or detached one with
        :meth:`close`).  The sharded workers do *not* go through here —
        their freshness flows through the listener that
        :func:`attach_shared_csr` registers, driven by ``apply_batch`` on
        the worker's network replica.  Unknown edge ids are ignored (they
        belong to a newer topology; the version check in
        :func:`csr_snapshot` handles the rebuild).
        """
        for edge_id, new_weight in deltas:
            self._on_weight_change(edge_id, new_weight)

    def refresh(self) -> "CSRGraph":
        """Bring the snapshot up to date with the network; returns self."""
        if self._topology_version != self.network.topology_version:
            self.rebuild()
        elif self._weights_stale:
            network = self.network
            edge_weight = self.edge_weight
            adj_weight = self.adj_weight
            for position, edge_id in enumerate(self.edge_ids):
                weight = network.edge(edge_id).weight
                edge_weight[position] = weight
                for slot in self._entry_slots[position]:
                    adj_weight[slot] = weight
            self._weights_stale = False
            self._weights_epoch += 1
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The live road network behind this snapshot."""
        network = self._network_ref()
        if network is None:
            raise ReferenceError("the RoadNetwork behind this CSR snapshot is gone")
        return network

    @property
    def node_count(self) -> int:
        """Number of nodes in the snapshot."""
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        """Number of edges in the snapshot."""
        return len(self.edge_ids)

    def index_of_node(self, node_id: int) -> int:
        """Dense index of *node_id*; raises :class:`NodeNotFoundError`."""
        try:
            return self.node_index[node_id]
        except KeyError as exc:
            raise NodeNotFoundError(node_id) from exc

    def index_of_edge(self, edge_id: int) -> int:
        """Dense index of *edge_id*; raises :class:`EdgeNotFoundError`."""
        try:
            return self.edge_index[edge_id]
        except KeyError as exc:
            raise EdgeNotFoundError(edge_id) from exc

    def neighbors_of_index(self, node_idx: int) -> List[Tuple[int, int, float]]:
        """``(edge_id, neighbor_index, weight)`` triples (diagnostics/tests)."""
        start, stop = self.indptr[node_idx], self.indptr[node_idx + 1]
        return [
            (self.adj_eid[slot], self.adj_node[slot], self.adj_weight[slot])
            for slot in range(start, stop)
        ]

    # ------------------------------------------------------------------
    # kernel support metadata
    # ------------------------------------------------------------------
    @property
    def weights_epoch(self) -> int:
        """Counter bumped on every weight patch (and on every rebuild).

        Derived per-weight metadata (the dial kernel's quantization state,
        numpy column mirrors) caches against this value and rebuilds lazily
        when it moves, so a storm of ``set_edge_weight`` calls costs one
        refresh at the next kernel use instead of one per call.

        Example::

            before = csr_snapshot(network).weights_epoch
            network.set_edge_weight(edge_id, 2.5)
            assert csr_snapshot(network).weights_epoch > before
        """
        return self._weights_epoch

    def dial_support(self):
        """The bucket-queue kernel's quantization + numpy metadata (cached).

        Returns the :class:`repro.network.dial.DialSupport` for the current
        weights, rebuilding it only when :attr:`weights_epoch` moved since
        the last call.  The support object decides whether Dial quantization
        is usable (positive minimum weight, bounded weight spread) and holds
        the numpy mirrors of the numeric columns that the vectorized paths
        gather over.

        Example::

            support = csr_snapshot(network).dial_support()
            print(support.usable, support.min_weight)
        """
        support = self._dial_support
        if support is not None and support.epoch == self._weights_epoch:
            return support
        from repro.network.dial import DialSupport

        support = DialSupport.build(self)
        self._dial_support = support
        return support

    # ------------------------------------------------------------------
    # scratch buffers
    # ------------------------------------------------------------------
    def acquire_scratch(self) -> _Scratch:
        """Borrow the reusable work arrays (fresh ones under reentrancy)."""
        scratch = self._scratch
        if scratch.in_use:
            return _Scratch(len(self.node_ids))
        scratch.in_use = True
        return scratch

    def acquire_edge_scratch(self) -> _EdgeScratch:
        """Borrow the reusable edge-marking buffer (fresh under reentrancy)."""
        scratch = self._edge_scratch
        if scratch.in_use:
            return _EdgeScratch(len(self.edge_ids))
        scratch.in_use = True
        return scratch


#: One cached snapshot per live network (weakly keyed so networks can die).
_SNAPSHOTS: "weakref.WeakKeyDictionary[RoadNetwork, CSRGraph]" = (
    weakref.WeakKeyDictionary()
)


def csr_snapshot(network: RoadNetwork) -> CSRGraph:
    """Return the up-to-date cached CSR snapshot of *network*.

    Example::

        snapshot = csr_snapshot(network)
        assert csr_snapshot(network) is snapshot   # cached per network
    """
    snapshot = _SNAPSHOTS.get(network)
    if snapshot is None:
        snapshot = CSRGraph(network)
        _SNAPSHOTS[network] = snapshot
        return snapshot
    # Inline fast path of refresh(): this runs once per search, so skip the
    # property indirection when nothing changed (the overwhelmingly common
    # case).
    if (
        snapshot._topology_version != network._topology_version
        or snapshot._weights_stale
    ):
        snapshot.refresh()
    return snapshot


def install_snapshot(network: RoadNetwork, snapshot: CSRGraph) -> None:
    """Make *snapshot* the cached CSR snapshot of *network*.

    Sharded workers attach a shared-memory snapshot and install it here so
    every kernel path (:func:`repro.core.search.expand_knn` and the
    incremental maintenance code) picks it up through :func:`csr_snapshot`
    instead of building a private copy.
    """
    _SNAPSHOTS[network] = snapshot


# ---------------------------------------------------------------------------
# graph partitioning (network-partitioned sharded execution)
# ---------------------------------------------------------------------------


def grow_partitions(csr: CSRGraph, parts: int) -> Dict[int, int]:
    """Partition the snapshot's nodes into *parts* region blocks.

    A deterministic metis-lite BFS grower: regions grow one at a time from
    the lowest unassigned dense index, absorbing unassigned neighbors in
    adjacency-slot order until the region reaches its size target
    ``ceil(remaining_nodes / remaining_parts)``; disconnected leftovers
    re-seed at the next unassigned index, so every node is assigned and no
    region is empty (``parts`` is clamped to the node count).  The result
    depends only on the snapshot's columns, so every process that rebuilds
    the snapshot over an identical network derives the identical partition.

    Returns:
        node id -> part index (0-based) for every node of the snapshot.

    Example::

        assignment = grow_partitions(csr_snapshot(network), parts=4)
        blocks = {part: [n for n, p in assignment.items() if p == part]
                  for part in range(4)}
    """
    n = len(csr.node_ids)
    parts = max(1, min(int(parts), n)) if n else 1
    assignment = [parts - 1] * n  # the last region takes every leftover
    indptr = csr.indptr
    adj_node = csr.adj_node
    cursor = 0
    remaining = n
    assigned = bytearray(n)
    for part in range(parts - 1):
        target = -(-remaining // (parts - part))
        size = 0
        queue: deque = deque()
        enqueued = bytearray(n)
        while size < target:
            if not queue:
                while cursor < n and assigned[cursor]:
                    cursor += 1
                if cursor >= n:
                    break
                queue.append(cursor)
                enqueued[cursor] = 1
            u = queue.popleft()
            if assigned[u]:
                continue
            assigned[u] = 1
            assignment[u] = part
            size += 1
            for slot in range(indptr[u], indptr[u + 1]):
                v = adj_node[slot]
                if not assigned[v] and not enqueued[v]:
                    enqueued[v] = 1
                    queue.append(v)
        remaining -= size
    node_ids = csr.node_ids
    return {node_ids[index]: assignment[index] for index in range(n)}


def partition_block(
    csr: CSRGraph, assignment: Dict[int, int], part: int
) -> Tuple[List[int], List[int], List[int]]:
    """Block / halo / local-edge split of one partition.

    Returns ``(block, halo, local_edge_ids)``:

    * ``block`` — node ids assigned to *part*, in snapshot (dense) order;
    * ``local_edge_ids`` — edges with at least one endpoint in the block
      (edges straddling a cut are local to **both** sides), in snapshot
      edge order, which is the network's insertion order;
    * ``halo`` — the one-hop boundary: out-of-block endpoints of the local
      edges, in first-appearance order.

    A shard holding ``block + halo`` nodes and the local edges can settle
    any search exactly up to the halo ring; reaching a halo node is the
    signal that the search spilled into a neighboring shard.

    Example::

        block, halo, edges = partition_block(csr, assignment, part=0)
    """
    node_ids = csr.node_ids
    block = [node_id for node_id in node_ids if assignment[node_id] == part]
    local_edge_ids: List[int] = []
    halo: List[int] = []
    halo_seen: set = set()
    edge_start = csr.edge_start
    edge_end = csr.edge_end
    for position, edge_id in enumerate(csr.edge_ids):
        a = node_ids[edge_start[position]]
        b = node_ids[edge_end[position]]
        a_in = assignment[a] == part
        b_in = assignment[b] == part
        if not (a_in or b_in):
            continue
        local_edge_ids.append(edge_id)
        outside = b if a_in and not b_in else a if b_in and not a_in else None
        if outside is not None and outside not in halo_seen:
            halo_seen.add(outside)
            halo.append(outside)
    return block, halo, local_edge_ids


# ---------------------------------------------------------------------------
# shared-memory transport (sharded query execution)
# ---------------------------------------------------------------------------

#: The numeric CSR columns shipped through shared memory, with their numpy
#: dtypes.  8-byte columns come first so every view stays naturally aligned.
_SHARED_COLUMNS: Tuple[Tuple[str, str], ...] = (
    ("indptr", "int64"),
    ("adj_node", "int64"),
    ("adj_eid", "int64"),
    ("adj_weight", "float64"),
    ("edge_weight", "float64"),
    ("edge_start", "int64"),
    ("edge_end", "int64"),
    ("inc_indptr", "int64"),
    ("inc_edge", "int64"),
    ("adj_forward", "uint8"),
    ("edge_oneway", "uint8"),
)


def _require_numpy():
    """Import numpy or fail with an actionable error (shared CSR needs it)."""
    try:
        import numpy
    except ImportError as exc:  # pragma: no cover - numpy is a test dependency
        raise MonitoringError(
            "shared-memory CSR snapshots require numpy "
            "(install the 'fast' extra: pip install repro-road-knn[fast])"
        ) from exc
    return numpy


@dataclass(frozen=True)
class SharedCSRHandle:
    """Picklable descriptor of a CSR snapshot exported to shared memory.

    Ship this to a worker process and call :func:`attach_shared_csr` there.
    ``layout`` holds one ``(column, dtype, offset, length)`` entry per
    numeric column inside the single shared-memory block ``shm_name``.

    Example::

        shared = SharedCSR(csr_snapshot(network))
        worker_view = attach_shared_csr(replica_network, shared.handle)
    """

    shm_name: str
    layout: Tuple[Tuple[str, str, int, int], ...]
    node_ids: Tuple[int, ...]
    edge_ids: Tuple[int, ...]
    topology_version: int


class SharedCSR:
    """Parent-side owner of one CSR snapshot exported to shared memory.

    The constructor packs every numeric column of *csr* into a single
    ``multiprocessing.shared_memory`` block and — by default — re-points the
    snapshot's own columns at the zero-copy numpy views.  From then on the
    snapshot's incremental weight patching (driven by the network's weight
    listener) writes straight into shared memory, so attached workers
    observe every weight change without any rebuild or message.

    The owner must call :meth:`unlink` (or :meth:`close` followed by
    :meth:`unlink`) when the workers are gone; the block is otherwise leaked
    until the resource tracker reaps it.

    Example::

        shared = SharedCSR(csr_snapshot(network))
        handle = shared.handle          # picklable; send to workers
        ...
        shared.unlink()                 # after every worker detached
    """

    def __init__(self, csr: CSRGraph, adopt: bool = True) -> None:
        """Export *csr* to shared memory.

        Args:
            csr: the snapshot to export.
            adopt: when True (default) the snapshot's columns are replaced
                by the shared numpy views, making the exporting process the
                single writer that keeps shared weights fresh.
        """
        numpy = _require_numpy()
        from multiprocessing import shared_memory

        columns = {name: getattr(csr, name) for name, _ in _SHARED_COLUMNS}
        layout: List[Tuple[str, str, int, int]] = []
        offset = 0
        for name, dtype in _SHARED_COLUMNS:
            length = len(columns[name])
            layout.append((name, dtype, offset, length))
            offset += length * numpy.dtype(dtype).itemsize
        self._shm = shared_memory.SharedMemory(create=True, size=max(offset, 1))
        self._unlinked = False
        self._adopted_ref = weakref.ref(csr) if adopt else None
        for name, dtype, col_offset, length in layout:
            view = numpy.ndarray(
                (length,), dtype=dtype, buffer=self._shm.buf, offset=col_offset
            )
            view[:] = columns[name]
            if adopt:
                setattr(csr, name, view)
        self.handle = SharedCSRHandle(
            shm_name=self._shm.name,
            layout=tuple(layout),
            node_ids=tuple(csr.node_ids),
            edge_ids=tuple(csr.edge_ids),
            topology_version=csr._topology_version,
        )

    def close(self) -> None:
        """Close this process's mapping of the block (idempotent).

        An adopted snapshot (``adopt=True``) is first restored to private
        list columns, so its views release the buffer and the mapping can
        actually unmap; the snapshot keeps working in-process afterwards.
        """
        adopted = self._adopted_ref() if self._adopted_ref is not None else None
        if adopted is not None:
            for name, _, _, _ in self.handle.layout:
                column = getattr(adopted, name, None)
                if column is not None and not isinstance(column, list):
                    setattr(adopted, name, column.tolist())
            self._adopted_ref = None
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - an external view is alive
            # Someone else still holds a view into the buffer; the mapping
            # dies with the process instead.
            pass

    def unlink(self) -> None:
        """Remove the shared-memory block from the system (idempotent)."""
        if not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already reaped
                pass


#: Serializes the pre-3.13 register-suppression window in _attach_block.
_ATTACH_LOCK = threading.Lock()


def _attach_block(shared_memory, name: str):
    """Open an existing shared-memory block without tracking its lifetime.

    The exporter owns the block; if every attaching process also registered
    it with its resource tracker, the tracker would double-unlink at exit
    and log spurious KeyErrors.  Python 3.13 has ``track=False`` for this;
    earlier versions need the register call silenced for the duration of
    the constructor.  The lock serializes concurrent attaches; note that on
    those older versions an *unrelated* tracked ``SharedMemory`` created by
    another thread during the patch window would escape tracking — attach
    from a single thread (the sharded workers do) if that matters.
    """
    import sys

    if sys.version_info >= (3, 13):  # pragma: no cover - newer interpreters
        return shared_memory.SharedMemory(name=name, track=False)
    from multiprocessing import resource_tracker

    with _ATTACH_LOCK:
        original_register = resource_tracker.register
        resource_tracker.register = lambda *args, **kwargs: None
        try:
            return shared_memory.SharedMemory(name=name)
        finally:
            resource_tracker.register = original_register


def attach_shared_csr(
    network: RoadNetwork,
    handle: SharedCSRHandle,
    zero_copy: bool = False,
) -> CSRGraph:
    """Build a :class:`CSRGraph` over an exported shared-memory snapshot.

    Args:
        network: the local replica of the exporting process's network; its
            ``topology_version`` must match the handle's (the replica and
            the snapshot must describe the same topology).
        handle: the exporter's :attr:`SharedCSR.handle`.
        zero_copy: when True the numeric columns are numpy views straight
            into shared memory — no per-worker copy, and weight patches
            written by the exporter are visible immediately.  The default
            (False, matching the sharded server's) copies the columns into
            private Python lists once per topology version — faster
            element access in the Python hot loop; freshness then relies
            on the weight listener registered on *network*, fed by the
            edge deltas broadcast in every update batch.

    The attached snapshot registers a weight listener on *network* in both
    modes, so locally applied batches keep it self-consistent; under the
    sharded-server protocol every process applies identical deltas, making
    the concurrent shared-memory writes idempotent.  Call
    :meth:`CSRGraph.close` before dropping the snapshot to detach the
    listener; the shared block itself is owned (and unlinked) by the
    exporter.

    Raises:
        MonitoringError: when the topology versions disagree or numpy is
            unavailable.

    Example::

        shared = SharedCSR(csr_snapshot(network))
        replica = pickle.loads(pickle.dumps(network))   # worker-side copy
        attached = attach_shared_csr(replica, shared.handle)
        install_snapshot(replica, attached)
    """
    numpy = _require_numpy()
    from multiprocessing import shared_memory

    if network.topology_version != handle.topology_version:
        raise MonitoringError(
            f"shared CSR handle is for topology_version {handle.topology_version}, "
            f"but the local network is at {network.topology_version}"
        )
    shm = _attach_block(shared_memory, handle.shm_name)

    csr = CSRGraph.__new__(CSRGraph)
    csr._network_ref = weakref.ref(network)
    csr._weights_stale = False
    csr.node_ids = list(handle.node_ids)
    csr.node_index = {node_id: index for index, node_id in enumerate(csr.node_ids)}
    csr.edge_ids = list(handle.edge_ids)
    csr.edge_index = {edge_id: index for index, edge_id in enumerate(csr.edge_ids)}
    for name, dtype, offset, length in handle.layout:
        view = numpy.ndarray((length,), dtype=dtype, buffer=shm.buf, offset=offset)
        setattr(csr, name, view if zero_copy else view.tolist())
    if zero_copy:
        csr._shm = shm  # keep the mapping alive as long as the views
    else:
        shm.close()
    csr._build_entry_slots()
    csr._topology_version = handle.topology_version
    csr._weights_epoch = 0
    csr._dial_support = None
    csr._scratch = _Scratch(len(csr.node_ids))
    csr._edge_scratch = _EdgeScratch(len(csr.edge_ids))
    csr._register_listener(network)
    return csr
