"""Flat-array CSR snapshot of a :class:`~repro.network.graph.RoadNetwork`.

The monitoring hot path (the Figure-2 expansion and every resumed search)
spends most of its time iterating adjacency.  Doing that over per-node dicts
of :class:`~repro.network.graph.Edge` dataclasses costs several attribute
lookups and a tuple allocation per neighbor; at production scale the Python
overhead dwarfs the algorithmic work the paper's IMA/GMA save.  This module
provides a compressed-sparse-row view of the network:

* nodes and edges are mapped to dense integer indices,
* adjacency is three parallel flat columns (``adj_node``, ``adj_eid``,
  ``adj_weight``) sliced per node by ``indptr``, with one entry per
  *traversable* direction (one-way edges appear once),
* ``adj_forward`` records whether an entry leaves the edge's start node, so
  object offsets along the edge can be computed without touching the edge.

The snapshot registers a weight listener with the network, so a
``set_edge_weight`` call patches the affected column entries in O(degree)
instead of forcing a rebuild; topology edits (add/remove node or edge) bump
the network's ``topology_version`` and cause a lazy full rebuild on the next
:func:`csr_snapshot` call.  One snapshot is cached per network.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

from repro.exceptions import EdgeNotFoundError, NodeNotFoundError
from repro.network.graph import RoadNetwork

_INF = float("inf")


class _Scratch:
    """Reusable per-search work arrays, reset via the touched-index list.

    Allocating four O(n) buffers per search dominates small searches on
    large networks; instead the kernel borrows these and resets only the
    entries it wrote.  ``in_use`` guards against (unexpected) reentrancy, in
    which case the caller falls back to fresh allocations.
    """

    __slots__ = ("best", "tentative", "settled", "tentative_parent", "in_use")

    def __init__(self, size: int) -> None:
        self.best: List[float] = [_INF] * size
        self.tentative: List[float] = [_INF] * size
        self.settled = bytearray(size)
        self.tentative_parent: List[int] = [-1] * size
        self.in_use = False

    def release(self, touched: List[int]) -> None:
        """Reset every touched slot and hand the buffers back."""
        best = self.best
        tentative = self.tentative
        settled = self.settled
        parent = self.tentative_parent
        for index in touched:
            best[index] = _INF
            tentative[index] = _INF
            settled[index] = 0
            parent[index] = -1
        self.in_use = False


class _EdgeScratch:
    """Reusable per-walk edge-marking buffer, reset via the touched list.

    The influence-map computation visits the edges incident to every
    verified node and must process each edge once; marking dense edge
    positions in a shared bytearray avoids allocating a fresh set per query
    (thousands of times per timestamp on update-heavy workloads).
    """

    __slots__ = ("seen", "in_use")

    def __init__(self, size: int) -> None:
        self.seen = bytearray(size)
        self.in_use = False

    def release(self, touched: List[int]) -> None:
        """Reset every touched slot and hand the buffer back."""
        seen = self.seen
        for index in touched:
            seen[index] = 0
        self.in_use = False


class CSRGraph:
    """Immutable flat-array adjacency snapshot of a road network.

    Attributes (all parallel / index-based; treat as read-only):
        node_ids: dense index -> original node id.
        node_index: original node id -> dense index.
        edge_ids: dense edge index -> original edge id.
        edge_index: original edge id -> dense edge index.
        indptr: per-node slice boundaries into the ``adj_*`` columns.
        adj_node: neighbor *node index* per adjacency entry.
        adj_eid: original *edge id* per entry (for edge-table lookups).
        adj_weight: current weight per entry (kept fresh incrementally).
        adj_forward: 1 when the entry leaves the edge's start node.
        edge_weight: current weight per dense edge index.
        edge_start / edge_end: endpoint node indices per dense edge index.
        edge_oneway: 1 for one-way edges.
        inc_indptr: per-node slice boundaries into ``inc_edge``.
        inc_edge: dense edge *positions* incident to each node.  Unlike the
            ``adj_*`` columns this incidence view contains every incident
            edge regardless of traversability (a one-way edge appears at
            both endpoints), which is what influence-region computations
            need.
    """

    def __init__(self, network: RoadNetwork) -> None:
        # Weak references in both directions: a strong back-reference would
        # keep the snapshot-cache key alive forever, and registering a bound
        # method as the listener would pin every snapshot for the network's
        # whole lifetime.  The wrapper below forwards weight changes while
        # the snapshot lives and unregisters itself once it is gone, so
        # loop-constructed snapshots cost at most one stale closure until
        # the next weight change.
        self._network_ref = weakref.ref(network)
        self._weights_stale = False
        self.rebuild()
        self_ref = weakref.ref(self)
        network_ref = self._network_ref

        def _forward(edge_id: Optional[int], weight: float) -> None:
            snapshot = self_ref()
            if snapshot is None:
                live_network = network_ref()
                if live_network is not None:
                    live_network.remove_weight_listener(_forward)
                return
            snapshot._on_weight_change(edge_id, weight)

        self._listener: Optional[Callable[[Optional[int], float], None]] = _forward
        network.add_weight_listener(_forward)

    def close(self) -> None:
        """Detach from the network's weight notifications (idempotent).

        After closing, the snapshot no longer tracks weight changes; use it
        only if you know the weights are frozen, or build a fresh one.
        """
        network = self._network_ref()
        if network is not None and self._listener is not None:
            network.remove_weight_listener(self._listener)
        self._listener = None

    # ------------------------------------------------------------------
    # construction / refresh
    # ------------------------------------------------------------------
    def rebuild(self) -> None:
        """Rebuild every column from the network's current state."""
        network = self.network
        self.node_ids: List[int] = list(network.node_ids())
        self.node_index: Dict[int, int] = {
            node_id: index for index, node_id in enumerate(self.node_ids)
        }
        self.edge_ids: List[int] = list(network.edge_ids())
        self.edge_index: Dict[int, int] = {
            edge_id: index for index, edge_id in enumerate(self.edge_ids)
        }

        node_index = self.node_index
        edge_weight: List[float] = []
        edge_start: List[int] = []
        edge_end: List[int] = []
        edge_oneway = bytearray(len(self.edge_ids))
        for position, edge_id in enumerate(self.edge_ids):
            edge = network.edge(edge_id)
            edge_weight.append(edge.weight)
            edge_start.append(node_index[edge.start])
            edge_end.append(node_index[edge.end])
            if edge.oneway:
                edge_oneway[position] = 1
        self.edge_weight = edge_weight
        self.edge_start = edge_start
        self.edge_end = edge_end
        self.edge_oneway = edge_oneway

        indptr: List[int] = [0]
        adj_node: List[int] = []
        adj_eid: List[int] = []
        adj_weight: List[float] = []
        adj_forward = bytearray()
        inc_indptr: List[int] = [0]
        inc_edge: List[int] = []
        # Adjacency slots of each dense edge, for incremental weight patching.
        entry_slots: List[List[int]] = [[] for _ in self.edge_ids]
        for node_id in self.node_ids:
            for edge_id in network.incident_edges(node_id):
                edge = network.edge(edge_id)
                position = self.edge_index[edge_id]
                inc_edge.append(position)
                if edge.oneway and edge.start != node_id:
                    continue
                slot = len(adj_node)
                adj_node.append(node_index[edge.other_endpoint(node_id)])
                adj_eid.append(edge_id)
                adj_weight.append(edge.weight)
                adj_forward.append(1 if edge.start == node_id else 0)
                entry_slots[position].append(slot)
            indptr.append(len(adj_node))
            inc_indptr.append(len(inc_edge))
        self.indptr = indptr
        self.adj_node = adj_node
        self.adj_eid = adj_eid
        self.adj_weight = adj_weight
        self.adj_forward = adj_forward
        self.inc_indptr = inc_indptr
        self.inc_edge = inc_edge
        self._entry_slots = entry_slots
        self._topology_version = network.topology_version
        self._weights_stale = False
        self._scratch = _Scratch(len(self.node_ids))
        self._edge_scratch = _EdgeScratch(len(self.edge_ids))

    def _on_weight_change(self, edge_id: Optional[int], new_weight: float) -> None:
        if edge_id is None:
            self._weights_stale = True
            return
        position = self.edge_index.get(edge_id)
        if position is None:
            # Edge added after the snapshot; the topology version already
            # differs, so the next csr_snapshot() call rebuilds everything.
            return
        self.edge_weight[position] = new_weight
        adj_weight = self.adj_weight
        for slot in self._entry_slots[position]:
            adj_weight[slot] = new_weight

    def refresh(self) -> "CSRGraph":
        """Bring the snapshot up to date with the network; returns self."""
        if self._topology_version != self.network.topology_version:
            self.rebuild()
        elif self._weights_stale:
            network = self.network
            edge_weight = self.edge_weight
            adj_weight = self.adj_weight
            for position, edge_id in enumerate(self.edge_ids):
                weight = network.edge(edge_id).weight
                edge_weight[position] = weight
                for slot in self._entry_slots[position]:
                    adj_weight[slot] = weight
            self._weights_stale = False
        return self

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        network = self._network_ref()
        if network is None:
            raise ReferenceError("the RoadNetwork behind this CSR snapshot is gone")
        return network

    @property
    def node_count(self) -> int:
        return len(self.node_ids)

    @property
    def edge_count(self) -> int:
        return len(self.edge_ids)

    def index_of_node(self, node_id: int) -> int:
        """Dense index of *node_id*; raises :class:`NodeNotFoundError`."""
        try:
            return self.node_index[node_id]
        except KeyError as exc:
            raise NodeNotFoundError(node_id) from exc

    def index_of_edge(self, edge_id: int) -> int:
        """Dense index of *edge_id*; raises :class:`EdgeNotFoundError`."""
        try:
            return self.edge_index[edge_id]
        except KeyError as exc:
            raise EdgeNotFoundError(edge_id) from exc

    def neighbors_of_index(self, node_idx: int) -> List[Tuple[int, int, float]]:
        """``(edge_id, neighbor_index, weight)`` triples (diagnostics/tests)."""
        start, stop = self.indptr[node_idx], self.indptr[node_idx + 1]
        return [
            (self.adj_eid[slot], self.adj_node[slot], self.adj_weight[slot])
            for slot in range(start, stop)
        ]

    # ------------------------------------------------------------------
    # scratch buffers
    # ------------------------------------------------------------------
    def acquire_scratch(self) -> _Scratch:
        """Borrow the reusable work arrays (fresh ones under reentrancy)."""
        scratch = self._scratch
        if scratch.in_use:
            return _Scratch(len(self.node_ids))
        scratch.in_use = True
        return scratch

    def acquire_edge_scratch(self) -> _EdgeScratch:
        """Borrow the reusable edge-marking buffer (fresh under reentrancy)."""
        scratch = self._edge_scratch
        if scratch.in_use:
            return _EdgeScratch(len(self.edge_ids))
        scratch.in_use = True
        return scratch


#: One cached snapshot per live network (weakly keyed so networks can die).
_SNAPSHOTS: "weakref.WeakKeyDictionary[RoadNetwork, CSRGraph]" = (
    weakref.WeakKeyDictionary()
)


def csr_snapshot(network: RoadNetwork) -> CSRGraph:
    """Return the up-to-date cached CSR snapshot of *network*."""
    snapshot = _SNAPSHOTS.get(network)
    if snapshot is None:
        snapshot = CSRGraph(network)
        _SNAPSHOTS[network] = snapshot
        return snapshot
    # Inline fast path of refresh(): this runs once per search, so skip the
    # property indirection when nothing changed (the overwhelmingly common
    # case).
    if (
        snapshot._topology_version != network._topology_version
        or snapshot._weights_stale
    ):
        snapshot.refresh()
    return snapshot
