"""Edge table (*ET*): per-edge data-object bookkeeping plus location services.

In the paper the edge table is a hash table keyed by edge id storing, for
every edge, its endpoints, adjacency, weight, the list of data objects
currently on it, and its influence list.  In this library the static
topology and the weights already live in :class:`~repro.network.graph.RoadNetwork`
and the influence lists are algorithm state
(:class:`~repro.core.influence.InfluenceIndex`), so :class:`EdgeTable`
focuses on the *dynamic object* side:

* which data objects currently lie on which edge,
* where exactly each object is (its :class:`NetworkLocation`),
* translating raw workspace coordinates from client updates into network
  locations through the PMR quadtree (the paper's *SI*).

A single ``EdgeTable`` can be shared by several monitoring algorithms
running in lock-step over the same data, which is how the experiment
harness compares OVH / IMA / GMA on identical inputs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.exceptions import (
    DuplicateObjectError,
    EdgeNotFoundError,
    UnknownObjectError,
)
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.spatial.geometry import Point
from repro.spatial.pmr_quadtree import PMRQuadtree


class EdgeTable:
    """Tracks the data objects lying on every edge of a road network.

    Example::

        edge_table = EdgeTable(network)
        edge_table.insert_object(7, edge_table.snap_point(Point(120.0, 80.0)))
        print(edge_table.objects_on(10))
    """

    def __init__(self, network: RoadNetwork, build_spatial_index: bool = True) -> None:
        """Create an edge table bound to *network*.

        Args:
            network: the underlying road network.
            build_spatial_index: when True (default) a PMR quadtree over the
                network edges is built so that raw coordinates can be snapped
                to edges; pass False when only id-based updates are used.
        """
        self._network = network
        self._objects: Dict[int, NetworkLocation] = {}
        self._objects_on_edge: Dict[int, Set[int]] = {}
        # Per-edge ``[(object_id, fraction), ...]`` lists, built lazily and
        # invalidated on mutation; the search kernel scans these on its hot
        # path instead of re-deriving fractions through per-object lookups.
        self._fraction_cache: Dict[int, Tuple[Tuple[int, float], ...]] = {}
        # Monotone mutation counter; bumped by every insert/remove/move so
        # derived object columns (the native kernel's flattened CSR of
        # objects per edge) can be cached and invalidated cheaply.
        self._version = 0
        self._spatial_index: Optional[PMRQuadtree] = None
        if build_spatial_index and network.edge_count > 0:
            self.rebuild_spatial_index()

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The underlying road network."""
        return self._network

    @property
    def object_count(self) -> int:
        """Number of registered data objects."""
        return len(self._objects)

    @property
    def spatial_index(self) -> Optional[PMRQuadtree]:
        """The PMR quadtree over the edges, or None if not built."""
        return self._spatial_index

    @property
    def version(self) -> int:
        """Monotone counter of object mutations (insert/remove/move).

        Derived per-batch structures (e.g. the native kernel's flattened
        object columns) key their caches on this value: equal versions
        guarantee an identical object population.

        Example::

            before = edge_table.version
            edge_table.insert_object(7, location)
            assert edge_table.version > before
        """
        return self._version

    # ------------------------------------------------------------------
    # spatial index
    # ------------------------------------------------------------------
    def rebuild_spatial_index(self) -> PMRQuadtree:
        """(Re)build the PMR quadtree over the network's edges."""
        bounds = self._network.bounding_box(margin=1e-6)
        index = PMRQuadtree(bounds)
        for edge in self._network.edges():
            index.insert(edge.edge_id, self._network.edge_segment(edge.edge_id))
        self._spatial_index = index
        return index

    def snap_point(self, point: Point) -> NetworkLocation:
        """Snap workspace coordinates to the nearest edge.

        This is the operation the monitoring server performs on the raw
        ``(x, y)`` coordinates contained in object and query updates.

        Raises:
            EdgeNotFoundError: if the spatial index has not been built or the
                network has no edges.
        """
        if self._spatial_index is None or len(self._spatial_index) == 0:
            raise EdgeNotFoundError(-1)
        edge_id, _ = self._spatial_index.nearest_edge(point)
        segment = self._spatial_index.segment_of(edge_id)
        fraction = segment.project_fraction(point)
        return NetworkLocation(edge_id, fraction)

    def snap_points(self, points: Sequence[Point]) -> List[NetworkLocation]:
        """Snap a whole batch of workspace coordinates to their nearest edges.

        The bulk path of the monitoring server: one vectorized PMR-quadtree
        pass replaces per-update :meth:`snap_point` calls.  When several
        edges are exactly equidistant from a point the chosen edge may
        differ from the single-point path, but the snapped position is
        always an equally near location.

        Raises:
            EdgeNotFoundError: if the spatial index has not been built or the
                network has no edges.
        """
        if self._spatial_index is None or len(self._spatial_index) == 0:
            raise EdgeNotFoundError(-1)
        index = self._spatial_index
        locations: List[NetworkLocation] = []
        for point, (edge_id, _) in zip(points, index.nearest_edges_bulk(points)):
            fraction = index.segment_of(edge_id).project_fraction(point)
            locations.append(NetworkLocation(edge_id, fraction))
        return locations

    # ------------------------------------------------------------------
    # object bookkeeping
    # ------------------------------------------------------------------
    def insert_object(self, object_id: int, location: NetworkLocation) -> None:
        """Register a new data object at *location*.

        Raises:
            DuplicateObjectError: if the id is already registered.
            EdgeNotFoundError: if the location references an unknown edge.
        """
        if object_id in self._objects:
            raise DuplicateObjectError(object_id)
        self._network.validate_location(location)
        self._objects[object_id] = location
        self._objects_on_edge.setdefault(location.edge_id, set()).add(object_id)
        self._fraction_cache.pop(location.edge_id, None)
        self._version += 1

    def remove_object(self, object_id: int) -> NetworkLocation:
        """Unregister a data object, returning its last location.

        Raises:
            UnknownObjectError: if the object is not registered.
        """
        location = self._objects.pop(object_id, None)
        if location is None:
            raise UnknownObjectError(object_id)
        on_edge = self._objects_on_edge.get(location.edge_id)
        if on_edge is not None:
            on_edge.discard(object_id)
            if not on_edge:
                del self._objects_on_edge[location.edge_id]
        self._fraction_cache.pop(location.edge_id, None)
        self._version += 1
        return location

    def move_object(self, object_id: int, new_location: NetworkLocation) -> NetworkLocation:
        """Move an object to *new_location*, returning its previous location.

        Raises:
            UnknownObjectError: if the object is not registered.
            EdgeNotFoundError: if the new location references an unknown edge.
        """
        if object_id not in self._objects:
            raise UnknownObjectError(object_id)
        self._network.validate_location(new_location)
        old_location = self.remove_object(object_id)
        self.insert_object(object_id, new_location)
        return old_location

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def has_object(self, object_id: int) -> bool:
        """True when the data object is registered."""
        return object_id in self._objects

    def location_of(self, object_id: int) -> NetworkLocation:
        """Current location of an object.

        Raises:
            UnknownObjectError: if the object is not registered.
        """
        try:
            return self._objects[object_id]
        except KeyError as exc:
            raise UnknownObjectError(object_id) from exc

    def objects_on(self, edge_id: int) -> Set[int]:
        """Ids of the objects currently lying on *edge_id* (possibly empty)."""
        return set(self._objects_on_edge.get(edge_id, ()))

    def objects_with_fractions_on(self, edge_id: int) -> Iterator[Tuple[int, float]]:
        """Iterate ``(object_id, fraction)`` for the objects on *edge_id*."""
        return iter(self.edge_object_fractions(edge_id))

    @property
    def locations(self) -> Dict[int, NetworkLocation]:
        """The object id -> location map backing :meth:`location_of`.

        Exposed for the search kernel's candidate re-distancing loop (one
        dict probe per candidate instead of a has/lookup method pair).
        Treat as read-only.
        """
        return self._objects

    @property
    def fraction_cache(self) -> Dict[int, Tuple[Tuple[int, float], ...]]:
        """The per-edge fraction cache backing :meth:`edge_object_fractions`.

        Exposed for the search kernel, which probes it directly (one dict
        lookup per scanned edge) and falls back to the method on a miss.
        Treat as read-only.
        """
        return self._fraction_cache

    def edge_object_fractions(self, edge_id: int) -> Tuple[Tuple[int, float], ...]:
        """``(object_id, fraction)`` pairs on *edge_id* (hot-path accessor).

        The returned tuple is cached until an object on the edge moves, so
        repeated scans by concurrent searches cost a single dict lookup.
        """
        cached = self._fraction_cache.get(edge_id)
        if cached is not None:
            return cached
        ids = self._objects_on_edge.get(edge_id)
        if not ids:
            pairs: Tuple[Tuple[int, float], ...] = ()
        else:
            objects = self._objects
            pairs = tuple(
                (object_id, objects[object_id].fraction) for object_id in ids
            )
        self._fraction_cache[edge_id] = pairs
        return pairs

    def all_objects(self) -> Iterator[Tuple[int, NetworkLocation]]:
        """Iterate over ``(object_id, location)`` pairs for every object."""
        return iter(self._objects.items())

    def object_ids(self) -> Iterator[int]:
        """Iterate over the registered object ids."""
        return iter(self._objects.keys())

    def populated_edges(self) -> Iterator[int]:
        """Iterate over the edge ids that currently hold at least one object."""
        return iter(self._objects_on_edge.keys())

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def consistency_check(self) -> bool:
        """Verify that the per-edge sets and the per-object map agree."""
        for object_id, location in self._objects.items():
            if object_id not in self._objects_on_edge.get(location.edge_id, set()):
                return False
        total = sum(len(ids) for ids in self._objects_on_edge.values())
        return total == len(self._objects)
