"""Road-network substrate: graph model, edge table, sequences, oracles, builders."""

from repro.network.builders import (
    build_network,
    city_network,
    grid_network,
    linear_network,
    remove_random_edges,
    star_network,
    subdivide_edges,
)
from repro.network.csr import (
    CSRGraph,
    SharedCSR,
    SharedCSRHandle,
    attach_shared_csr,
    csr_snapshot,
    install_snapshot,
)
from repro.network.distance import (
    approximate_center_node,
    brute_force_aggregate_knn,
    brute_force_knn,
    brute_force_object_distances,
    brute_force_range,
    eccentricity,
    location_sources,
    multi_source_node_distances,
    network_distance,
    node_distances,
    shortest_path_nodes,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import (
    CLOSED_EDGE_WEIGHT,
    Edge,
    NetworkLocation,
    Node,
    RoadNetwork,
)
from repro.network.io import (
    load_network,
    load_node_edge_files,
    save_network,
    save_node_edge_files,
)
from repro.network.sequences import SequenceInfo, SequenceTable

__all__ = [
    "RoadNetwork",
    "Node",
    "Edge",
    "NetworkLocation",
    "CLOSED_EDGE_WEIGHT",
    "EdgeTable",
    "CSRGraph",
    "csr_snapshot",
    "install_snapshot",
    "SharedCSR",
    "SharedCSRHandle",
    "attach_shared_csr",
    "SequenceTable",
    "SequenceInfo",
    "build_network",
    "grid_network",
    "city_network",
    "linear_network",
    "star_network",
    "subdivide_edges",
    "remove_random_edges",
    "node_distances",
    "multi_source_node_distances",
    "network_distance",
    "shortest_path_nodes",
    "brute_force_knn",
    "brute_force_range",
    "brute_force_aggregate_knn",
    "brute_force_object_distances",
    "location_sources",
    "eccentricity",
    "approximate_center_node",
    "load_network",
    "save_network",
    "load_node_edge_files",
    "save_node_edge_files",
]
