"""Initial placement of objects and queries on the road network.

The paper's experiments place the initial positions of data objects and
queries either *uniformly* over the network or with a *Gaussian*
distribution whose mean is the centre of the workspace and whose standard
deviation is a fraction of the maximum network distance from the centre
(10 % for queries, 50 % for the Gaussian-object experiment of Figure 17a).

Uniform placement here picks edges with probability proportional to their
length (so that density per unit of road is uniform) and then a uniform
offset on the edge.  Gaussian placement samples a workspace coordinate from
an isotropic Gaussian centred on the bounding-box centre and snaps it to the
nearest edge, which reproduces the clustering-around-the-centre property the
experiments rely on.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.exceptions import SimulationError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.spatial.geometry import Point
from repro.utils.rng import RandomLike, make_rng
from repro.utils.validation import require_fraction, require_positive_int


def uniform_location(network: RoadNetwork, rng, edge_ids: Sequence[int], weights: Sequence[float]) -> NetworkLocation:
    """One uniformly distributed location (length-weighted edge choice)."""
    target = rng.random() * weights[-1]
    low, high = 0, len(weights) - 1
    while low < high:
        mid = (low + high) // 2
        if weights[mid] < target:
            low = mid + 1
        else:
            high = mid
    return NetworkLocation(edge_ids[low], rng.random())


def place_uniform(
    network: RoadNetwork,
    count: int,
    seed: RandomLike = None,
) -> List[NetworkLocation]:
    """Place *count* locations uniformly over the network's total length."""
    require_positive_int(count, "count")
    if network.edge_count == 0:
        raise SimulationError("cannot place locations on a network without edges")
    rng = make_rng(seed)
    edge_ids = list(network.edge_ids())
    cumulative: List[float] = []
    total = 0.0
    for edge_id in edge_ids:
        total += network.edge(edge_id).base_weight
        cumulative.append(total)
    return [uniform_location(network, rng, edge_ids, cumulative) for _ in range(count)]


def place_gaussian(
    network: RoadNetwork,
    count: int,
    std_fraction: float = 0.1,
    seed: RandomLike = None,
) -> List[NetworkLocation]:
    """Place *count* locations with a Gaussian around the workspace centre.

    Args:
        network: the road network.
        count: how many locations to draw.
        std_fraction: standard deviation as a fraction of half the workspace
            diagonal (the paper uses 10 % of the maximum network distance
            from the centre; half the diagonal is the Euclidean analogue).
        seed: RNG seed.
    """
    require_positive_int(count, "count")
    require_fraction(std_fraction, "std_fraction")
    if network.edge_count == 0:
        raise SimulationError("cannot place locations on a network without edges")
    rng = make_rng(seed)
    box = network.bounding_box()
    center = box.center
    half_diagonal = 0.5 * ((box.width ** 2 + box.height ** 2) ** 0.5)
    std = max(1e-9, std_fraction * half_diagonal)

    # Snapping goes through the PMR quadtree; build one table for all draws.
    table = EdgeTable(network)
    locations: List[NetworkLocation] = []
    for _ in range(count):
        x = rng.gauss(center.x, std)
        y = rng.gauss(center.y, std)
        x = min(max(x, box.min_x), box.max_x)
        y = min(max(y, box.min_y), box.max_y)
        locations.append(table.snap_point(Point(x, y)))
    return locations


def place(
    network: RoadNetwork,
    count: int,
    distribution: str = "uniform",
    std_fraction: float = 0.1,
    seed: RandomLike = None,
) -> List[NetworkLocation]:
    """Place locations with the named distribution (``uniform``/``gaussian``)."""
    kind = distribution.lower()
    if kind in ("uniform", "u"):
        return place_uniform(network, count, seed)
    if kind in ("gaussian", "gauss", "g", "normal"):
        return place_gaussian(network, count, std_fraction, seed)
    raise SimulationError(
        f"unknown distribution {distribution!r}; expected 'uniform' or 'gaussian'"
    )
