"""Traffic model: edge-weight fluctuations.

The paper's experiments change the weight of a fraction ``f_edg`` of the
edges at every timestamp (the *edge agility*); each update increases or
decreases the weight by 10 % of its previous value.  This module implements
that model plus two refinements that real deployments need and the ablation
benchmarks exercise:

* an optional bound on how far a weight may drift from its base value
  (otherwise a long simulation can drive weights towards zero or infinity);
* a congestion-wave mode in which fluctuations are spatially correlated
  (adjacent edges tend to change together), which stresses the influence
  lists differently from independent fluctuations.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.exceptions import SimulationError
from repro.network.graph import RoadNetwork
from repro.utils.rng import RandomLike, make_rng, sample_fraction
from repro.utils.validation import require_fraction, require_positive

#: A weight change produced by the traffic model: (edge_id, old_weight, new_weight).
WeightChange = Tuple[int, float, float]


class TrafficModel:
    """Random ±`magnitude` edge-weight fluctuations with bounded drift."""

    def __init__(
        self,
        network: RoadNetwork,
        edge_agility: float = 0.04,
        magnitude: float = 0.10,
        max_drift_factor: float = 4.0,
        correlated: bool = False,
        seed: RandomLike = None,
    ) -> None:
        """Create the model.

        Args:
            network: the road network whose weights fluctuate.
            edge_agility: fraction of edges updated per timestamp (``f_edg``).
            magnitude: relative size of one fluctuation (0.10 = ±10 %).
            max_drift_factor: weights stay within
                ``[base / factor, base * factor]``.
            correlated: when True the updated edges are chosen as connected
                patches (congestion waves) instead of independently.
            seed: RNG seed.
        """
        require_fraction(edge_agility, "edge_agility")
        require_positive(magnitude, "magnitude")
        require_positive(max_drift_factor, "max_drift_factor")
        if magnitude >= 1.0:
            raise SimulationError("fluctuation magnitude must be below 100 %")
        self._network = network
        self._edge_agility = edge_agility
        self._magnitude = magnitude
        self._max_drift = max_drift_factor
        self._correlated = correlated
        self._rng = make_rng(seed)
        self._edge_ids = sorted(network.edge_ids())

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> List[WeightChange]:
        """Produce the weight changes of one timestamp (not yet applied)."""
        if not self._edge_ids:
            return []
        if self._correlated:
            selected = self._select_correlated()
        else:
            selected = sample_fraction(self._rng, self._edge_ids, self._edge_agility)
        changes: List[WeightChange] = []
        for edge_id in selected:
            edge = self._network.edge(edge_id)
            old_weight = edge.weight
            factor = 1.0 + self._magnitude if self._rng.random() < 0.5 else 1.0 - self._magnitude
            new_weight = old_weight * factor
            low = edge.base_weight / self._max_drift
            high = edge.base_weight * self._max_drift
            new_weight = min(max(new_weight, low), high)
            if abs(new_weight - old_weight) > 1e-12:
                changes.append((edge_id, old_weight, new_weight))
        return changes

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _select_correlated(self) -> List[int]:
        """Grow connected patches of edges until the agility quota is met."""
        quota = int(round(self._edge_agility * len(self._edge_ids)))
        selected: Set[int] = set()
        attempts = 0
        while len(selected) < quota and attempts < 16:
            attempts += 1
            seed_edge = self._rng.choice(self._edge_ids)
            frontier = [seed_edge]
            while frontier and len(selected) < quota:
                edge_id = frontier.pop()
                if edge_id in selected:
                    continue
                selected.add(edge_id)
                edge = self._network.edge(edge_id)
                for node in (edge.start, edge.end):
                    for incident in self._network.incident_edges(node):
                        if incident not in selected and self._rng.random() < 0.5:
                            frontier.append(incident)
        return sorted(selected)
