"""Mobility and traffic models: placement, random walk, Brinkhoff-style, traffic."""

from repro.mobility.brinkhoff import (
    DEFAULT_CLASSES,
    BrinkhoffGenerator,
    ObjectClass,
)
from repro.mobility.distributions import place, place_gaussian, place_uniform
from repro.mobility.random_walk import Movement, RandomWalkModel
from repro.mobility.traffic import TrafficModel, WeightChange

__all__ = [
    "place",
    "place_uniform",
    "place_gaussian",
    "RandomWalkModel",
    "Movement",
    "BrinkhoffGenerator",
    "ObjectClass",
    "DEFAULT_CLASSES",
    "TrafficModel",
    "WeightChange",
]
