"""Random-walk mobility model (the paper's default movement generator).

At every timestamp a fraction ``agility`` of the entities moves; a moving
entity performs a random walk on the network covering a fixed travel cost
``speed`` (expressed in multiples of the average edge length, exactly like
the paper's ``v_obj`` / ``v_qry`` parameters).  At a node the walker picks a
random outgoing edge (avoiding an immediate U-turn when possible); inside an
edge it simply continues in its current direction.

The model is deliberately independent of the monitoring algorithms: it only
produces ``(entity_id, old_location, new_location)`` movement tuples that the
simulator turns into update batches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.utils.rng import RandomLike, make_rng, sample_fraction
from repro.utils.validation import require_fraction, require_non_negative

#: A movement produced by a mobility model.
Movement = Tuple[int, NetworkLocation, NetworkLocation]


@dataclass
class _WalkerState:
    """Private per-entity walking state (current heading)."""

    location: NetworkLocation
    #: True when the walker is heading towards the edge's end node.
    towards_end: bool = True


class RandomWalkModel:
    """Random-walk movement of a population of entities on a network."""

    def __init__(
        self,
        network: RoadNetwork,
        initial_locations: Dict[int, NetworkLocation],
        speed: float = 1.0,
        agility: float = 1.0,
        seed: RandomLike = None,
    ) -> None:
        """Create the model.

        Args:
            network: the road network (current weights are used as travel costs).
            initial_locations: entity id -> starting location.
            speed: distance covered per move, in multiples of the average
                edge length (the paper's ``v_obj`` / ``v_qry``).
            agility: fraction of entities that move at each timestamp
                (the paper's ``f_obj`` / ``f_qry``).
            seed: RNG seed.
        """
        require_non_negative(speed, "speed")
        require_fraction(agility, "agility")
        self._network = network
        self._speed = speed
        self._agility = agility
        self._rng = make_rng(seed)
        self._states: Dict[int, _WalkerState] = {}
        for entity_id, location in initial_locations.items():
            network.validate_location(location)
            self._states[entity_id] = _WalkerState(
                location=location, towards_end=self._rng.random() < 0.5
            )

    # ------------------------------------------------------------------
    # population management
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def location_of(self, entity_id: int) -> NetworkLocation:
        """Current location of an entity."""
        return self._states[entity_id].location

    def locations(self) -> Dict[int, NetworkLocation]:
        """Current locations of every entity."""
        return {entity_id: state.location for entity_id, state in self._states.items()}

    def add_entity(self, entity_id: int, location: NetworkLocation) -> None:
        """Add a walker (e.g. an object appearing mid-simulation)."""
        if entity_id in self._states:
            raise SimulationError(f"entity {entity_id} already exists in the walk model")
        self._network.validate_location(location)
        self._states[entity_id] = _WalkerState(
            location=location, towards_end=self._rng.random() < 0.5
        )

    def remove_entity(self, entity_id: int) -> NetworkLocation:
        """Remove a walker and return its last location."""
        state = self._states.pop(entity_id, None)
        if state is None:
            raise SimulationError(f"entity {entity_id} does not exist in the walk model")
        return state.location

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> List[Movement]:
        """Advance one timestamp; return the movements of the moving entities."""
        movers = sample_fraction(self._rng, sorted(self._states), self._agility)
        travel_budget = self._speed * self._network.average_edge_weight()
        movements: List[Movement] = []
        for entity_id in movers:
            state = self._states[entity_id]
            old_location = state.location
            new_location = self._walk(state, travel_budget)
            if new_location != old_location:
                movements.append((entity_id, old_location, new_location))
        return movements

    def move_entity(self, entity_id: int) -> Optional[Movement]:
        """Force one entity to move regardless of the agility sampling."""
        state = self._states[entity_id]
        old_location = state.location
        new_location = self._walk(state, self._speed * self._network.average_edge_weight())
        if new_location == old_location:
            return None
        return (entity_id, old_location, new_location)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _walk(self, state: _WalkerState, budget: float) -> NetworkLocation:
        """Move a walker along the network spending *budget* travel cost."""
        network = self._network
        location = state.location
        towards_end = state.towards_end
        remaining = budget
        # A hard iteration cap protects against pathological zero-ish weights.
        for _ in range(1000):
            if remaining <= 0:
                break
            edge = network.edge(location.edge_id)
            if towards_end:
                distance_to_node = location.reversed_offset(edge.weight)
                target_node = edge.end
            else:
                distance_to_node = location.offset(edge.weight)
                target_node = edge.start
            if remaining < distance_to_node:
                # Stays within the current edge.
                delta_fraction = remaining / edge.weight
                fraction = location.fraction + (delta_fraction if towards_end else -delta_fraction)
                fraction = min(1.0, max(0.0, fraction))
                location = NetworkLocation(edge.edge_id, fraction)
                remaining = 0.0
                break
            # Reach the node and pick the next edge.
            remaining -= distance_to_node
            next_edge_id, next_towards_end = self._pick_next_edge(target_node, edge.edge_id)
            if next_edge_id is None:
                # Dead end: stop at the node.
                fraction = 1.0 if towards_end else 0.0
                location = NetworkLocation(edge.edge_id, fraction)
                remaining = 0.0
                break
            location = NetworkLocation(
                next_edge_id, 0.0 if next_towards_end else 1.0
            )
            towards_end = next_towards_end
        state.location = location
        state.towards_end = towards_end
        return location

    def _pick_next_edge(
        self, node_id: int, arriving_edge_id: int
    ) -> Tuple[Optional[int], bool]:
        """Choose the edge to continue on from *node_id* (avoiding U-turns)."""
        options = self._network.neighbors(node_id)
        forward = [(edge_id, other) for edge_id, other, _ in options if edge_id != arriving_edge_id]
        if not forward:
            # Dead end (or one-way trap): turn around if possible.
            backward = [(edge_id, other) for edge_id, other, _ in options]
            if not backward:
                return None, True
            forward = backward
        edge_id, _ = forward[self._rng.randrange(len(forward))]
        edge = self._network.edge(edge_id)
        # Heading towards the end node iff we enter the edge at its start.
        return edge_id, edge.start == node_id
