"""Brinkhoff-style network-based moving-object generator (substitute).

The paper's Figure 19 uses the generator of Brinkhoff [GeoInformatica 2002]
on the Oldenburg road map.  The original Java generator (and the Oldenburg
dataset) are not redistributable here, so this module implements the closest
behavioural equivalent that exercises the same code paths:

* every object belongs to an *object class* with its own speed;
* an object picks a random destination node, follows the **shortest path**
  towards it (instead of a memory-less random walk), and chooses a new
  destination upon arrival;
* optionally, objects disappear upon reaching their destination and a new
  object appears at a random node (the generator's "external objects"), so
  insertions and deletions also occur.

This preserves the property the experiment varies — destination-directed,
heterogeneous-speed movement — which is what distinguishes Figure 19 from
the random-walk experiments.  The substitution is documented in DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.exceptions import SimulationError
from repro.mobility.random_walk import Movement
from repro.network.distance import shortest_path_nodes
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.utils.rng import RandomLike, make_rng
from repro.utils.validation import require_fraction


@dataclass
class ObjectClass:
    """A Brinkhoff object class: a speed multiplier and a relative frequency."""

    name: str
    speed: float
    frequency: float = 1.0


#: Default classes, mirroring the generator's slow / medium / fast vehicles.
DEFAULT_CLASSES: Tuple[ObjectClass, ...] = (
    ObjectClass("slow", 0.5, 1.0),
    ObjectClass("medium", 1.0, 2.0),
    ObjectClass("fast", 2.0, 1.0),
)


@dataclass
class _TravellerState:
    """Private per-object state: its route towards the current destination."""

    location: NetworkLocation
    object_class: ObjectClass
    route_nodes: List[int] = field(default_factory=list)
    route_index: int = 0


class BrinkhoffGenerator:
    """Destination-directed movement with per-class speeds."""

    def __init__(
        self,
        network: RoadNetwork,
        initial_locations: Dict[int, NetworkLocation],
        classes: Sequence[ObjectClass] = DEFAULT_CLASSES,
        agility: float = 1.0,
        rerole_probability: float = 0.0,
        seed: RandomLike = None,
    ) -> None:
        """Create the generator.

        Args:
            network: the road network.
            initial_locations: object id -> starting location.
            classes: the object classes (speed in multiples of the average
                edge length per timestamp).
            agility: fraction of objects issuing a movement per timestamp.
            rerole_probability: probability that an object reaching its
                destination disappears and is replaced by a fresh object
                (id reuse), exercising insertion/deletion handling.
            seed: RNG seed.
        """
        if not classes:
            raise SimulationError("at least one object class is required")
        require_fraction(agility, "agility")
        require_fraction(rerole_probability, "rerole_probability")
        self._network = network
        self._classes = list(classes)
        self._agility = agility
        self._rerole_probability = rerole_probability
        self._rng = make_rng(seed)
        self._node_ids = [
            node_id for node_id in network.node_ids() if network.degree(node_id) > 0
        ]
        if not self._node_ids:
            raise SimulationError("the network has no connected nodes")
        self._states: Dict[int, _TravellerState] = {}
        for object_id, location in initial_locations.items():
            network.validate_location(location)
            self._states[object_id] = _TravellerState(
                location=location, object_class=self._draw_class()
            )

    # ------------------------------------------------------------------
    # population
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._states)

    def locations(self) -> Dict[int, NetworkLocation]:
        return {object_id: state.location for object_id, state in self._states.items()}

    def location_of(self, object_id: int) -> NetworkLocation:
        return self._states[object_id].location

    def class_of(self, object_id: int) -> ObjectClass:
        return self._states[object_id].object_class

    # ------------------------------------------------------------------
    # stepping
    # ------------------------------------------------------------------
    def step(self) -> List[Movement]:
        """Advance one timestamp; return the movements issued."""
        movements: List[Movement] = []
        mover_ids = [
            object_id
            for object_id in sorted(self._states)
            if self._rng.random() < self._agility
        ]
        base_distance = self._network.average_edge_weight()
        for object_id in mover_ids:
            state = self._states[object_id]
            old_location = state.location
            budget = state.object_class.speed * base_distance
            new_location = self._advance(state, budget)
            if new_location != old_location:
                movements.append((object_id, old_location, new_location))
        return movements

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _draw_class(self) -> ObjectClass:
        total = sum(cls.frequency for cls in self._classes)
        target = self._rng.random() * total
        cumulative = 0.0
        for cls in self._classes:
            cumulative += cls.frequency
            if target <= cumulative:
                return cls
        return self._classes[-1]

    def _nearest_node(self, location: NetworkLocation) -> int:
        edge = self._network.edge(location.edge_id)
        return edge.start if location.fraction < 0.5 else edge.end

    def _new_route(self, state: _TravellerState) -> None:
        """Pick a random destination and compute the shortest route to it."""
        origin = self._nearest_node(state.location)
        for _ in range(8):
            destination = self._rng.choice(self._node_ids)
            if destination == origin:
                continue
            try:
                _, path = shortest_path_nodes(self._network, origin, destination)
            except Exception:
                continue
            if len(path) >= 2:
                state.route_nodes = path
                state.route_index = 0
                return
        state.route_nodes = []
        state.route_index = 0

    def _advance(self, state: _TravellerState, budget: float) -> NetworkLocation:
        """Move a traveller along its route, re-planning when it ends."""
        network = self._network
        remaining = budget
        for _ in range(1000):
            if remaining <= 0:
                break
            if state.route_index >= len(state.route_nodes) - 1:
                self._new_route(state)
                if len(state.route_nodes) < 2:
                    break
                # Snap to the route's first node so the route is followable.
                first_edge = network.edge_between(
                    state.route_nodes[0], state.route_nodes[1]
                )
                if first_edge is None:
                    break
                edge = network.edge(first_edge)
                fraction = 0.0 if edge.start == state.route_nodes[0] else 1.0
                state.location = NetworkLocation(first_edge, fraction)

            current_node = state.route_nodes[state.route_index]
            next_node = state.route_nodes[state.route_index + 1]
            edge_id = network.edge_between(current_node, next_node)
            if edge_id is None:
                # The route is stale (topology edited); re-plan next round.
                state.route_nodes = []
                continue
            edge = network.edge(edge_id)
            towards_end = edge.start == current_node
            location = state.location
            if location.edge_id != edge_id:
                location = NetworkLocation(edge_id, 0.0 if towards_end else 1.0)
            if towards_end:
                distance_to_node = location.reversed_offset(edge.weight)
            else:
                distance_to_node = location.offset(edge.weight)
            if remaining < distance_to_node:
                delta = remaining / edge.weight
                fraction = location.fraction + (delta if towards_end else -delta)
                state.location = NetworkLocation(edge_id, min(1.0, max(0.0, fraction)))
                remaining = 0.0
                break
            remaining -= distance_to_node
            state.route_index += 1
            state.location = network.location_at_node(next_node)
        return state.location
