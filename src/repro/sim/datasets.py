"""Synthetic stand-ins for the paper's road-map datasets.

The paper evaluates on sub-networks of the **San Francisco** road map
(1K–100K edges) and on the **Oldenburg** map (6105 nodes / 7035 edges),
obtained from the dataset collection of Brinkhoff's generator.  Those files
cannot be redistributed with this reproduction, so this module provides
synthetic networks with matching statistics (see DESIGN.md §5 for the
substitution argument):

* :func:`san_francisco_like` — a city mesh with the requested edge count,
  irregular blocks, missing streets, and degree-2 shape points;
* :func:`oldenburg_like` — the same generator parameterised to roughly the
  published Oldenburg node/edge counts.

If the real datasets are available locally they can be loaded with
:func:`repro.network.io.load_node_edge_files` and passed to the simulator in
place of these synthetic networks; everything downstream is agnostic.
"""

from __future__ import annotations

from repro.network.builders import city_network
from repro.network.graph import RoadNetwork
from repro.utils.rng import RandomLike
from repro.utils.validation import require_positive_int

#: Published size of the Oldenburg road map used in Figure 19.
OLDENBURG_NODES = 6_105
OLDENBURG_EDGES = 7_035


def san_francisco_like(target_edges: int, seed: RandomLike = None) -> RoadNetwork:
    """A synthetic sub-network comparable to a San Francisco extract.

    Args:
        target_edges: approximate edge count (the paper uses 1K to 100K).
        seed: RNG seed controlling the street layout.
    """
    require_positive_int(target_edges, "target_edges")
    return city_network(
        target_edges,
        seed=seed,
        jitter=0.15,
        removal_fraction=0.12,
        subdivision=3,
        spacing=100.0,
    )


def oldenburg_like(seed: RandomLike = None) -> RoadNetwork:
    """A synthetic network with roughly Oldenburg's node / edge counts.

    Oldenburg has slightly more edges than nodes (7035 vs 6105), i.e. few
    loops and many near-tree chains; a higher street-removal fraction and a
    stronger subdivision reproduce that ratio.
    """
    return city_network(
        OLDENBURG_EDGES,
        seed=seed,
        jitter=0.2,
        removal_fraction=0.18,
        subdivision=4,
        spacing=80.0,
    )


def small_test_network(seed: RandomLike = None) -> RoadNetwork:
    """A ~200-edge network for unit tests and examples (fast to build)."""
    return city_network(200, seed=seed, subdivision=2)
