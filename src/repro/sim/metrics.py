"""Metrics collected by the simulation driver.

The paper reports, per experimental setting, the **CPU time per timestamp**
of each algorithm (Figures 13–17, 19) and the **memory footprint** of the
algorithm state (Figure 18).  Pure-Python wall-clock time is dominated by
interpreter overhead, so alongside seconds the simulator records the
abstract work counters of the search engine (nodes expanded, edges scanned,
objects considered), which track the quantity the paper's CPU time measures
and are robust to the machine the reproduction runs on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List


@dataclass
class AlgorithmMetrics:
    """Per-algorithm measurements of one simulation run."""

    algorithm: str
    #: seconds spent processing each timestamp (index = timestamp order)
    seconds_per_timestamp: List[float] = field(default_factory=list)
    #: work-counter deltas per timestamp
    counters_per_timestamp: List[Dict[str, int]] = field(default_factory=list)
    #: memory footprint (bytes) sampled after each timestamp
    memory_bytes_per_timestamp: List[int] = field(default_factory=list)
    #: how many query results changed at each timestamp
    changed_queries_per_timestamp: List[int] = field(default_factory=list)
    #: seconds spent computing the initial results (not per-timestamp cost)
    initial_seconds: float = 0.0

    # ------------------------------------------------------------------
    # aggregates
    # ------------------------------------------------------------------
    @property
    def timestamps(self) -> int:
        return len(self.seconds_per_timestamp)

    def mean_seconds(self) -> float:
        """Average processing time per timestamp (the paper's y-axis)."""
        return mean(self.seconds_per_timestamp) if self.seconds_per_timestamp else 0.0

    def total_seconds(self) -> float:
        return sum(self.seconds_per_timestamp)

    def mean_counter(self, name: str) -> float:
        """Average per-timestamp value of one work counter."""
        values = [counters.get(name, 0) for counters in self.counters_per_timestamp]
        return mean(values) if values else 0.0

    def mean_memory_kb(self) -> float:
        """Average memory footprint in KBytes (the paper's Figure 18 unit)."""
        if not self.memory_bytes_per_timestamp:
            return 0.0
        return mean(self.memory_bytes_per_timestamp) / 1024.0

    def peak_memory_kb(self) -> float:
        if not self.memory_bytes_per_timestamp:
            return 0.0
        return max(self.memory_bytes_per_timestamp) / 1024.0

    def summary(self) -> Dict[str, float]:
        """Flat summary used by the reporting and benchmark modules."""
        return {
            "algorithm": self.algorithm,
            "timestamps": float(self.timestamps),
            "mean_seconds": self.mean_seconds(),
            "total_seconds": self.total_seconds(),
            "initial_seconds": self.initial_seconds,
            "mean_nodes_expanded": self.mean_counter("nodes_expanded"),
            "mean_edges_scanned": self.mean_counter("edges_scanned"),
            "mean_objects_considered": self.mean_counter("objects_considered"),
            "mean_searches": self.mean_counter("searches"),
            "mean_memory_kb": self.mean_memory_kb(),
            "peak_memory_kb": self.peak_memory_kb(),
            "mean_changed_queries": (
                mean(self.changed_queries_per_timestamp)
                if self.changed_queries_per_timestamp
                else 0.0
            ),
        }


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    config_description: Dict[str, object]
    metrics: Dict[str, AlgorithmMetrics]
    #: number of (timestamp, query) result mismatches found during validation
    validation_mismatches: int = 0
    #: whether validation against the reference algorithm was performed
    validated: bool = False

    def metrics_of(self, algorithm: str) -> AlgorithmMetrics:
        """Metrics of one algorithm (by its name, e.g. ``"IMA"``)."""
        return self.metrics[algorithm]

    def algorithms(self) -> List[str]:
        return list(self.metrics)

    def mean_seconds_table(self) -> Dict[str, float]:
        """Algorithm -> mean seconds per timestamp."""
        return {name: metric.mean_seconds() for name, metric in self.metrics.items()}

    def speedup_over(self, baseline: str = "OVH") -> Dict[str, float]:
        """Speed-up factor of every algorithm relative to *baseline*."""
        base = self.metrics[baseline].mean_seconds()
        result: Dict[str, float] = {}
        for name, metric in self.metrics.items():
            seconds = metric.mean_seconds()
            result[name] = base / seconds if seconds > 0 else float("inf")
        return result
