"""Simulation driver: run OVH / IMA / GMA in lock-step over one workload.

The simulator reproduces the paper's experimental methodology (Section 6):

1. build a road network (a synthetic San-Francisco-like mesh, or any network
   the caller supplies),
2. place N data objects and Q continuous queries according to the configured
   distributions,
3. register the queries with every monitoring algorithm under test,
4. for ``timestamps`` rounds: generate the object movements, query movements
   and edge-weight fluctuations of one timestamp, apply them to the shared
   state once, feed the same batch to every monitor, and record per-monitor
   wall-clock time, work counters, memory footprint and result changes,
5. optionally validate that all monitors report identical results at every
   timestamp (the differential-testing backbone of the test suite).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Type

from repro.core.base import MonitorBase, TimestepReport
from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.results import results_equal
from repro.core.server import MonitoringServer
from repro.exceptions import SimulationError
from repro.mobility.brinkhoff import BrinkhoffGenerator
from repro.mobility.distributions import place
from repro.mobility.random_walk import RandomWalkModel
from repro.mobility.traffic import TrafficModel
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.kernels import DEFAULT_KERNEL
from repro.sim.datasets import san_francisco_like
from repro.sim.metrics import AlgorithmMetrics, SimulationResult
from repro.sim.workload import WorkloadConfig
from repro.testing.oracle import OracleMonitor
from repro.testing.scenarios import ScenarioEngine, resolve_scenario
from repro.utils.rng import derive_rng, make_rng

_MONITOR_CLASSES: Dict[str, Type[MonitorBase]] = {
    "OVH": OvhMonitor,
    "IMA": ImaMonitor,
    "GMA": GmaMonitor,
}

#: Query ids start here so they never collide with object ids.
QUERY_ID_BASE = 1_000_000


class Simulator:
    """Builds and runs one monitoring scenario from a :class:`WorkloadConfig`."""

    def __init__(
        self,
        config: WorkloadConfig,
        network: Optional[RoadNetwork] = None,
    ) -> None:
        """Prepare the scenario (network, placements, mobility, traffic).

        Args:
            config: the workload parameters.
            network: optionally a pre-built network (e.g. a real road map);
                when omitted a synthetic San-Francisco-like mesh with
                ``config.network_edges`` edges is generated.
        """
        self._config = config
        root_rng = make_rng(config.seed)
        self._network = (
            network
            if network is not None
            else san_francisco_like(config.network_edges, seed=derive_rng(root_rng, "network"))
        )
        self._edge_table = EdgeTable(self._network)

        object_locations = place(
            self._network,
            config.num_objects,
            config.object_distribution,
            std_fraction=0.5,  # the paper's Gaussian-object experiments use 50 %
            seed=derive_rng(root_rng, "objects"),
        )
        self._object_locations: Dict[int, NetworkLocation] = dict(enumerate(object_locations))
        for object_id, location in self._object_locations.items():
            self._edge_table.insert_object(object_id, location)

        query_locations = place(
            self._network,
            config.num_queries,
            config.query_distribution,
            std_fraction=config.gaussian_std_fraction,
            seed=derive_rng(root_rng, "queries"),
        )
        self._query_locations: Dict[int, NetworkLocation] = {
            QUERY_ID_BASE + index: location for index, location in enumerate(query_locations)
        }

        if config.mobility_model.lower() == "brinkhoff":
            self._object_model = BrinkhoffGenerator(
                self._network,
                dict(self._object_locations),
                agility=config.object_agility,
                seed=derive_rng(root_rng, "object-mobility"),
            )
        else:
            self._object_model = RandomWalkModel(
                self._network,
                dict(self._object_locations),
                speed=config.object_speed,
                agility=config.object_agility,
                seed=derive_rng(root_rng, "object-mobility"),
            )
        self._query_model = RandomWalkModel(
            self._network,
            dict(self._query_locations),
            speed=config.query_speed,
            agility=config.query_agility,
            seed=derive_rng(root_rng, "query-mobility"),
        )
        self._traffic = TrafficModel(
            self._network,
            edge_agility=config.edge_agility,
            seed=derive_rng(root_rng, "traffic"),
        )

    # ------------------------------------------------------------------
    # accessors (used by tests and ad-hoc analyses)
    # ------------------------------------------------------------------
    @property
    def config(self) -> WorkloadConfig:
        return self._config

    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def edge_table(self) -> EdgeTable:
        return self._edge_table

    def query_locations(self) -> Dict[int, NetworkLocation]:
        return dict(self._query_locations)

    def object_locations(self) -> Dict[int, NetworkLocation]:
        return dict(self._object_locations)

    # ------------------------------------------------------------------
    # batch generation
    # ------------------------------------------------------------------
    def generate_batch(self, timestamp: int) -> UpdateBatch:
        """Generate (but do not apply) the updates of one timestamp."""
        batch = UpdateBatch(timestamp=timestamp)
        for edge_id, old_weight, new_weight in self._traffic.step():
            batch.edge_updates.append(EdgeWeightUpdate(edge_id, old_weight, new_weight))
        for object_id, old_location, new_location in self._object_model.step():
            batch.object_updates.append(ObjectUpdate(object_id, old_location, new_location))
            self._object_locations[object_id] = new_location
        for query_id, old_location, new_location in self._query_model.step():
            batch.query_updates.append(QueryUpdate(query_id, old_location, new_location))
            self._query_locations[query_id] = new_location
        return batch

    # ------------------------------------------------------------------
    # server-driven runs (the batched ingestion path)
    # ------------------------------------------------------------------
    def make_server(
        self,
        algorithm: str = "ima",
        workers: int = 1,
        kernel: str = DEFAULT_KERNEL,
        partitioning: str = "replica",
    ) -> MonitoringServer:
        """Build a :class:`MonitoringServer` sharing this scenario's state.

        The server reuses the simulator's network and edge table, so the
        pre-placed data objects are already registered; the configured
        queries are installed through the server's pending buffer and take
        effect at its first tick.  Pass ``workers > 1`` for a sharded
        multi-process server (close it when done — e.g. drive it inside a
        ``with`` block).  ``kernel`` names any registered search kernel
        (see :mod:`repro.network.kernels`); an unknown name fails here, at
        construction, with
        :class:`~repro.exceptions.UnknownKernelError`.
        ``partitioning="graph"`` builds the sharded server over network
        region shards instead of full replicas (see
        :class:`~repro.core.sharding.ShardedMonitoringServer`).
        """
        server = MonitoringServer(
            self._network,
            algorithm,
            edge_table=self._edge_table,
            workers=workers,
            kernel=kernel,
            partitioning=partitioning,
        )
        for query_id, location in self._query_locations.items():
            server.add_query(query_id, location, self._config.k)
        return server

    def drive_server(
        self, server: MonitoringServer, timestamps: Optional[int] = None
    ) -> List[TimestepReport]:
        """Feed generated update batches through the server's batch API.

        Each timestamp's updates are ingested with one
        :meth:`~repro.core.server.MonitoringServer.apply_updates` call
        followed by one tick — the pipeline production feeds use — instead
        of thousands of per-entity method calls.  Returns the per-timestamp
        :class:`~repro.core.base.TimestepReport` list.
        """
        rounds = self._config.timestamps if timestamps is None else timestamps
        reports = []
        for timestamp in range(rounds):
            server.apply_updates(self.generate_batch(timestamp))
            reports.append(server.tick())
        return reports

    # ------------------------------------------------------------------
    # scenario-driven runs (the testing/fuzz workload engine)
    # ------------------------------------------------------------------
    def scenario_engine(self, scenario, seed: Optional[int] = None) -> ScenarioEngine:
        """A :class:`~repro.testing.scenarios.ScenarioEngine` over this scenario.

        The engine adopts the simulator's pre-placed objects and configured
        queries as its initial state and generates update batches by
        composing the scenario's stressors instead of the mobility models.
        Drive it with :meth:`run_scenario`, or feed its batches through
        :meth:`~repro.core.server.MonitoringServer.apply_updates` yourself.
        """
        return ScenarioEngine(
            self._network,
            resolve_scenario(scenario),
            seed=self._config.seed if seed is None else seed,
            initial_objects=dict(self._object_locations),
            initial_queries={
                query_id: (location, self._config.k)
                for query_id, location in self._query_locations.items()
            },
        )

    def run_scenario(
        self,
        scenario,
        algorithms: Sequence[str] = ("OVH", "IMA", "GMA"),
        seed: Optional[int] = None,
        timestamps: Optional[int] = None,
        validate: bool = False,
        oracle: bool = False,
        collect_memory: bool = False,
    ) -> SimulationResult:
        """Run the monitors over a scenario stream instead of the mobility models.

        Args:
            scenario: a preset name from
                :data:`~repro.testing.scenarios.SCENARIO_PRESETS` or a
                :class:`~repro.testing.scenarios.ScenarioSpec`.
            algorithms: which monitors to run.
            seed: scenario stream seed (defaults to the workload seed).
            timestamps: stream length (defaults to the scenario's).
            validate: compare every monitor against the reference at every
                timestamp and count mismatches.
            oracle: when validating, use a brute-force
                :class:`~repro.testing.oracle.OracleMonitor` as the
                reference instead of the first listed algorithm (slower,
                but an independent ground truth).
            collect_memory: sample memory footprints per timestamp.

        Note: like :meth:`run`, this consumes the simulator's shared state;
        use a fresh :class:`Simulator` per run.

        Raises:
            SimulationError: when the validation arguments cannot check
                anything — ``oracle=True`` without ``validate=True``, or
                ``validate=True`` against nothing (a single algorithm with
                no oracle).
        """
        if oracle and not validate:
            raise SimulationError("oracle=True requires validate=True")
        if validate and not oracle and len(algorithms) < 2:
            raise SimulationError(
                "validate=True needs either oracle=True or at least two "
                "algorithms to compare"
            )
        engine = self.scenario_engine(scenario, seed=seed)
        monitors = self.build_monitors(algorithms)
        oracle_monitor: Optional[MonitorBase] = None
        if validate and oracle:
            oracle_monitor = OracleMonitor(self._network, self._edge_table)
        metrics = {name: AlgorithmMetrics(algorithm=name) for name in monitors}

        for name, monitor in monitors.items():
            start = time.perf_counter()
            for query_id, (location, k) in engine.initial_queries().items():
                monitor.register_query(query_id, location, k)
            metrics[name].initial_seconds = time.perf_counter() - start
        if oracle_monitor is not None:
            for query_id, (location, k) in engine.initial_queries().items():
                oracle_monitor.register_query(query_id, location, k)

        validator = None
        if validate:
            reference = oracle_monitor or next(iter(monitors.values()))

            def validator(batch):
                if oracle_monitor is not None:
                    oracle_monitor.process_batch(batch)
                return self._validate_against(reference, monitors, engine.live_queries())

        rounds = engine.spec.timestamps if timestamps is None else timestamps
        mismatches = self._drive_batches(
            monitors, metrics, engine.batches(rounds), collect_memory, validator
        )

        return SimulationResult(
            config_description={
                **self._config.describe(),
                "scenario": engine.spec.name,
                "scenario_seed": engine.seed,
            },
            metrics=metrics,
            validation_mismatches=mismatches,
            validated=validate,
        )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def build_monitors(self, algorithms: Sequence[str]) -> Dict[str, MonitorBase]:
        """Instantiate the requested monitors over the shared state."""
        monitors: Dict[str, MonitorBase] = {}
        for name in algorithms:
            key = name.upper()
            if key not in _MONITOR_CLASSES:
                raise SimulationError(
                    f"unknown algorithm {name!r}; choose among {sorted(_MONITOR_CLASSES)}"
                )
            monitors[key] = _MONITOR_CLASSES[key](self._network, self._edge_table)
        return monitors

    def run(
        self,
        algorithms: Sequence[str] = ("OVH", "IMA", "GMA"),
        validate: bool = False,
        collect_memory: bool = True,
    ) -> SimulationResult:
        """Run the scenario and return per-algorithm metrics.

        Args:
            algorithms: which monitors to run (names are case-insensitive).
            validate: when True, every monitor's result for every query is
                compared against the first listed algorithm at every
                timestamp; mismatches are counted in the returned result.
            collect_memory: sample :meth:`MonitorBase.memory_footprint_bytes`
                after every timestamp (adds a little overhead).
        """
        monitors = self.build_monitors(algorithms)
        metrics = {
            name: AlgorithmMetrics(algorithm=name) for name in monitors
        }

        # Initial result computation (not part of the per-timestamp cost,
        # mirroring the paper's methodology).
        for name, monitor in monitors.items():
            start = time.perf_counter()
            for query_id, location in self._query_locations.items():
                monitor.register_query(query_id, location, self._config.k)
            metrics[name].initial_seconds = time.perf_counter() - start

        validator = None
        if validate and len(monitors) > 1:
            reference = next(iter(monitors.values()))

            def validator(batch):
                return self._validate_against(
                    reference, monitors, self._query_locations
                )

        batches = (
            self.generate_batch(timestamp)
            for timestamp in range(self._config.timestamps)
        )
        mismatches = self._drive_batches(
            monitors, metrics, batches, collect_memory, validator
        )

        return SimulationResult(
            config_description=self._config.describe(),
            metrics=metrics,
            validation_mismatches=mismatches,
            validated=validate,
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _drive_batches(
        self,
        monitors: Dict[str, MonitorBase],
        metrics: Dict[str, AlgorithmMetrics],
        batches,
        collect_memory: bool,
        validator=None,
    ) -> int:
        """Apply each batch once, feed it to every monitor, record metrics.

        The shared per-tick driver of :meth:`run` and :meth:`run_scenario`.
        *validator*, when given, is called after every tick with the batch
        and returns that tick's mismatch count.
        """
        mismatches = 0
        for batch in batches:
            apply_batch(self._network, self._edge_table, batch.normalized())
            for name, monitor in monitors.items():
                report = monitor.process_batch(batch)
                metrics[name].seconds_per_timestamp.append(report.elapsed_seconds)
                metrics[name].counters_per_timestamp.append(report.counters)
                metrics[name].changed_queries_per_timestamp.append(
                    len(report.changed_queries)
                )
                if collect_memory:
                    metrics[name].memory_bytes_per_timestamp.append(
                        monitor.memory_footprint_bytes()
                    )
            if validator is not None:
                mismatches += validator(batch)
        return mismatches

    def _validate_against(
        self, reference: MonitorBase, monitors: Dict[str, MonitorBase], query_ids
    ) -> int:
        """Count monitors disagreeing with *reference* over *query_ids*."""
        mismatches = 0
        for query_id in query_ids:
            expected = list(reference.result_of(query_id).neighbors)
            for monitor in monitors.values():
                if monitor is reference:
                    continue
                actual = list(monitor.result_of(query_id).neighbors)
                if not results_equal(expected, actual):
                    mismatches += 1
        return mismatches
