"""Workload configuration: the parameter space of Table 2.

A :class:`WorkloadConfig` bundles every knob of the paper's experimental
setup — object/query cardinalities and distributions, k, the three agilities,
the two speeds, the network size and the number of timestamps — together
with the scaling conveniences this reproduction adds (every benchmark runs a
scaled-down default but accepts the paper's full-size values unchanged).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from repro.exceptions import SimulationError
from repro.utils.validation import (
    require_fraction,
    require_non_negative,
    require_positive_int,
)

#: Paper default values (Table 2).
PAPER_DEFAULTS: Dict[str, object] = {
    "num_objects": 100_000,
    "num_queries": 5_000,
    "object_distribution": "uniform",
    "query_distribution": "gaussian",
    "k": 50,
    "edge_agility": 0.04,
    "object_speed": 1.0,
    "object_agility": 0.10,
    "query_speed": 1.0,
    "query_agility": 0.10,
    "network_edges": 10_000,
    "timestamps": 100,
}


@dataclass(frozen=True)
class WorkloadConfig:
    """One experimental setting (a row of Table 2 plus scaling knobs)."""

    #: number of data objects (paper default 100K)
    num_objects: int = 2_000
    #: number of continuous queries (paper default 5K)
    num_queries: int = 100
    #: initial object distribution: "uniform" or "gaussian"
    object_distribution: str = "uniform"
    #: initial query distribution: "uniform" or "gaussian"
    query_distribution: str = "gaussian"
    #: number of nearest neighbors per query (paper default 50)
    k: int = 10
    #: fraction of edges whose weight changes per timestamp (paper default 4%)
    edge_agility: float = 0.04
    #: distance covered by a moving object, in average edge lengths (default 1)
    object_speed: float = 1.0
    #: fraction of objects that move per timestamp (paper default 10%)
    object_agility: float = 0.10
    #: distance covered by a moving query, in average edge lengths (default 1)
    query_speed: float = 1.0
    #: fraction of queries that move per timestamp (paper default 10%)
    query_agility: float = 0.10
    #: approximate number of network edges (paper default 10K)
    network_edges: int = 2_000
    #: how many timestamps the monitoring runs for (paper: 100)
    timestamps: int = 10
    #: standard deviation of the Gaussian placements, fraction of half-diagonal
    gaussian_std_fraction: float = 0.10
    #: mobility model: "random_walk" (default) or "brinkhoff"
    mobility_model: str = "random_walk"
    #: RNG seed for the whole scenario
    seed: int = 20060912

    # ------------------------------------------------------------------
    # validation and derivation
    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        require_positive_int(self.num_objects, "num_objects")
        require_positive_int(self.num_queries, "num_queries")
        require_positive_int(self.k, "k")
        require_positive_int(self.network_edges, "network_edges")
        require_positive_int(self.timestamps, "timestamps")
        require_fraction(self.edge_agility, "edge_agility")
        require_fraction(self.object_agility, "object_agility")
        require_fraction(self.query_agility, "query_agility")
        require_non_negative(self.object_speed, "object_speed")
        require_non_negative(self.query_speed, "query_speed")
        require_fraction(self.gaussian_std_fraction, "gaussian_std_fraction")
        if self.object_distribution.lower() not in ("uniform", "gaussian"):
            raise SimulationError(
                f"unknown object distribution {self.object_distribution!r}"
            )
        if self.query_distribution.lower() not in ("uniform", "gaussian"):
            raise SimulationError(
                f"unknown query distribution {self.query_distribution!r}"
            )
        if self.mobility_model.lower() not in ("random_walk", "brinkhoff"):
            raise SimulationError(f"unknown mobility model {self.mobility_model!r}")

    def with_overrides(self, **overrides) -> "WorkloadConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)

    @classmethod
    def paper_scale(cls, **overrides) -> "WorkloadConfig":
        """The paper's full-size default setting (Table 2), optionally overridden.

        Running it takes hours in pure Python; benchmarks use the scaled
        defaults of the plain constructor and document the scaling factor.
        """
        values = dict(PAPER_DEFAULTS)
        values.update(overrides)
        return cls(
            num_objects=int(values["num_objects"]),
            num_queries=int(values["num_queries"]),
            object_distribution=str(values["object_distribution"]),
            query_distribution=str(values["query_distribution"]),
            k=int(values["k"]),
            edge_agility=float(values["edge_agility"]),
            object_speed=float(values["object_speed"]),
            object_agility=float(values["object_agility"]),
            query_speed=float(values["query_speed"]),
            query_agility=float(values["query_agility"]),
            network_edges=int(values["network_edges"]),
            timestamps=int(values["timestamps"]),
            seed=int(values.get("seed", 20060912)),
        )

    def describe(self) -> Dict[str, object]:
        """Plain-dict view used by the reporting module."""
        return {
            "N": self.num_objects,
            "Q": self.num_queries,
            "object_distribution": self.object_distribution,
            "query_distribution": self.query_distribution,
            "k": self.k,
            "f_edg": self.edge_agility,
            "v_obj": self.object_speed,
            "f_obj": self.object_agility,
            "v_qry": self.query_speed,
            "f_qry": self.query_agility,
            "edges": self.network_edges,
            "timestamps": self.timestamps,
            "mobility": self.mobility_model,
            "seed": self.seed,
        }
