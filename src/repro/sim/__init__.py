"""Simulation layer: workload configuration, datasets, driver, metrics."""

from repro.sim.datasets import (
    OLDENBURG_EDGES,
    OLDENBURG_NODES,
    oldenburg_like,
    san_francisco_like,
    small_test_network,
)
from repro.sim.metrics import AlgorithmMetrics, SimulationResult
from repro.sim.simulator import QUERY_ID_BASE, Simulator
from repro.sim.workload import PAPER_DEFAULTS, WorkloadConfig

__all__ = [
    "WorkloadConfig",
    "PAPER_DEFAULTS",
    "Simulator",
    "QUERY_ID_BASE",
    "AlgorithmMetrics",
    "SimulationResult",
    "san_francisco_like",
    "oldenburg_like",
    "small_test_network",
    "OLDENBURG_NODES",
    "OLDENBURG_EDGES",
]
