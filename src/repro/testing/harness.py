"""Oracle-backed differential runner for scenario streams.

:func:`run_differential_scenario` builds a seeded network and scenario
stream, runs the requested monitoring algorithms in lock-step — by default
IMA and GMA on both the CSR and the legacy kernels — and compares every
query's result at every timestamp against the independent
:class:`~repro.testing.oracle.OracleMonitor`.  The returned report carries a
one-command replay line so any fuzz failure reproduces locally from just
``(scenario, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.base import MonitorBase
from repro.core.events import apply_batch
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.results import results_equal
from repro.core.server import MonitoringServer
from repro.exceptions import SimulationError
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import RoadNetwork
from repro.network.kernels import (
    DEFAULT_KERNEL,
    KERNEL_DIAL,
    KERNEL_NATIVE,
    registered_kernels,
)
from repro.testing.oracle import OracleMonitor
from repro.testing.scenarios import MIXED_QUERY_MIX, ScenarioEngine, resolve_scenario

#: Algorithm names accepted by :func:`run_differential_scenario`: an
#: optional ``-legacy`` / ``-dial`` suffix selects the kernel.
_MONITOR_CLASSES = {"OVH": OvhMonitor, "IMA": ImaMonitor, "GMA": GmaMonitor}

#: The default panel: the production CSR paths and the preserved legacy
#: paths, all of which must agree with the oracle.
DEFAULT_ALGORITHMS = ("IMA", "GMA", "IMA-legacy", "GMA-legacy")

#: The batched bucket-queue panel (selected by the CI fuzz matrix's
#: ``FUZZ_KERNEL=dial`` leg): the dial monitors next to their CSR
#: references, all diffed against the oracle.
DIAL_ALGORITHMS = ("IMA-dial", "GMA-dial", "IMA", "GMA")

#: The compiled-settle-loop panel (the ``FUZZ_KERNEL=native`` leg): the
#: native monitors next to their CSR references, all diffed against the
#: oracle.  When the compiler is unavailable the native kernel serves the
#: same requests through its pure-python dial fallback, so the leg still
#: runs — it just stops exercising the C path.
NATIVE_ALGORITHMS = ("IMA-native", "GMA-native", "IMA", "GMA")

#: ``algorithm-variant`` suffixes accepted by :func:`_make_monitor`: every
#: registered kernel, with the bare name meaning the default kernel.
_VARIANTS = ("",) + registered_kernels()


def _make_monitor(name: str, network, edge_table) -> MonitorBase:
    base, _, variant = name.partition("-")
    cls = _MONITOR_CLASSES.get(base.upper())
    if cls is None or variant not in _VARIANTS:
        raise SimulationError(
            f"unknown differential algorithm {name!r}; use e.g. 'IMA' or 'GMA-legacy'"
        )
    kernel = variant if variant else DEFAULT_KERNEL
    return cls(network, edge_table, kernel=kernel)


def replay_command(
    scenario: str,
    seed: int,
    workers: Optional[int] = None,
    server_algorithm: str = "ima",
    server_kernel: str = DEFAULT_KERNEL,
    kernel: str = DEFAULT_KERNEL,
    query_types: str = "default",
    dedup: bool = False,
    partitioning: str = "replica",
) -> str:
    """The one-command local reproduction of a fuzz failure.

    When the failing run fuzzed the dial monitor panel, the command carries
    ``FUZZ_KERNEL=dial`` so ``test_replay_from_env`` rebuilds the same
    panel; when it overlaid the mixed query-type distribution it carries
    ``FUZZ_QUERY_TYPES=mixed``.  When it drove servers (``workers`` set),
    the command carries ``FUZZ_WORKERS`` (and ``FUZZ_SERVER_ALGORITHM`` /
    ``FUZZ_SERVER_KERNEL`` when not the defaults) so a sharded-only
    divergence reproduces too.  When it ran the dedup frontend next to the
    plain servers it carries ``FUZZ_DEDUP=1``, and when it additionally
    drove a graph-partitioned sharded leg it carries
    ``FUZZ_PARTITIONING=graph``.
    """
    env = f"FUZZ_SCENARIO={scenario} FUZZ_SEED={seed} "
    if kernel != DEFAULT_KERNEL:
        env += f"FUZZ_KERNEL={kernel} "
    if query_types != "default":
        env += f"FUZZ_QUERY_TYPES={query_types} "
    if dedup:
        env += "FUZZ_DEDUP=1 "
    if workers is not None:
        env += f"FUZZ_WORKERS={workers} "
        if server_algorithm.lower() != "ima":
            env += f"FUZZ_SERVER_ALGORITHM={server_algorithm} "
        if server_kernel != DEFAULT_KERNEL:
            env += f"FUZZ_SERVER_KERNEL={server_kernel} "
        if partitioning != "replica":
            env += f"FUZZ_PARTITIONING={partitioning} "
    return (
        env + "PYTHONPATH=src "
        "python -m pytest tests/test_fuzz_differential.py::test_replay_from_env -q -s"
    )


@dataclass
class DifferentialReport:
    """Outcome of one oracle-backed differential scenario run."""

    scenario: str
    seed: int
    timestamps: int
    checks: int = 0
    mismatches: List[str] = field(default_factory=list)
    #: the server configuration of the run, carried so failure_message can
    #: emit a replay command that reconstructs the same servers
    workers: Optional[int] = None
    server_algorithm: str = "ima"
    server_kernel: str = DEFAULT_KERNEL
    #: the monitor panel of the run, carried so failure_message can emit
    #: FUZZ_KERNEL for dial-panel failures
    algorithms: Tuple[str, ...] = ()
    #: the query-type overlay of the run ("default" or "mixed"), carried so
    #: failure_message can emit FUZZ_QUERY_TYPES
    query_types: str = "default"
    #: whether the run drove the dedup frontend next to the plain servers,
    #: carried so failure_message can emit FUZZ_DEDUP
    dedup: bool = False
    #: the sharded-server partitioning of the run ("replica" or "graph"),
    #: carried so failure_message can emit FUZZ_PARTITIONING
    partitioning: str = "replica"

    @property
    def ok(self) -> bool:
        """True when every check agreed with the oracle."""
        return not self.mismatches

    def failure_message(self, limit: int = 5) -> str:
        """Human-readable failure summary including the replay command."""
        shown = "\n  ".join(self.mismatches[:limit])
        more = len(self.mismatches) - min(limit, len(self.mismatches))
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        return (
            f"scenario {self.scenario!r} seed {self.seed} diverged from the oracle "
            f"({len(self.mismatches)} mismatches over {self.timestamps} ticks):\n"
            f"  {shown}{suffix}\n"
            f"replay locally with:\n  "
            f"{replay_command(self.scenario, self.seed, self.workers, self.server_algorithm, self.server_kernel, kernel=self.panel_kernel, query_types=self.query_types, dedup=self.dedup, partitioning=self.partitioning)}"
        )

    @property
    def panel_kernel(self) -> str:
        """The non-default kernel the fuzzed monitor panel included, if any."""
        for kernel in (KERNEL_NATIVE, KERNEL_DIAL):
            if any(name.endswith(f"-{kernel}") for name in self.algorithms):
                return kernel
        return DEFAULT_KERNEL


def _make_scenario_server(
    network: RoadNetwork,
    engine: ScenarioEngine,
    algorithm: str,
    workers: Optional[int],
    kernel: str = DEFAULT_KERNEL,
    dedup: bool = False,
    partitioning: str = "replica",
) -> MonitoringServer:
    """A server over a private network replica, primed with the engine's state.

    The replica lets the server apply every batch itself (through
    ``apply_updates`` + ``tick``) without double-applying to the harness's
    shared network.  ``workers=None`` builds the plain in-process server;
    any integer — including 1 — builds a
    :class:`~repro.core.sharding.ShardedMonitoringServer` with that many
    worker processes, so the IPC layer is exercised even in the
    single-worker matrix leg.  With ``dedup=True`` the server is wrapped in
    a :class:`~repro.core.dedup.DedupFrontend` *before* the initial queries
    are installed, so co-located tenants of the scenario share physical
    queries from the very first tick.  ``partitioning="graph"`` builds the
    sharded server over network-partitioned region shards instead of full
    replicas (ignored for the in-process server, which has no shards).
    """
    from repro.core.sharding import ShardedMonitoringServer

    replica = network.copy()
    edge_table = EdgeTable(replica, build_spatial_index=False)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)
    if workers is None:
        server = MonitoringServer(
            replica, algorithm=algorithm, edge_table=edge_table, kernel=kernel
        )
    else:
        server = ShardedMonitoringServer(
            replica,
            algorithm=algorithm,
            edge_table=edge_table,
            kernel=kernel,
            workers=workers,
            partitioning=partitioning,
        )
    if dedup:
        from repro.core.dedup import DedupFrontend

        server = DedupFrontend(server)
    for query_id, (location, k) in engine.initial_queries().items():
        server.add_query(query_id, location, k)
    return server


def run_differential_scenario(
    scenario,
    seed: int,
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS,
    network: Optional[RoadNetwork] = None,
    network_edges: int = 120,
    timestamps: Optional[int] = None,
    workers: Optional[int] = None,
    server_algorithm: str = "ima",
    server_kernel: str = DEFAULT_KERNEL,
    query_types: str = "default",
    dedup: bool = False,
    partitioning: str = "replica",
) -> DifferentialReport:
    """Run *algorithms* over a scenario stream and diff them against the oracle.

    Everything — the network, the placements, the update stream — derives
    from ``(scenario, seed)``, so the run is exactly reproducible.  At every
    timestamp each monitor's :class:`~repro.core.base.TimestepReport` must
    carry the batch's timestamp and every live query's distance profile must
    match the brute-force oracle's.

    ``query_types="mixed"`` overlays :data:`MIXED_QUERY_MIX` on the
    scenario, so installed queries draw from all three kinds (k-NN, range,
    aggregate k-NN) regardless of the preset's own mix.

    When *workers* is given, the same stream additionally drives two
    :class:`~repro.core.server.MonitoringServer` instances running
    *server_algorithm* over private network replicas — a single-process one
    and a sharded one with that many worker processes — through the batched
    ``apply_updates`` + ``tick`` pipeline.  Both must match the oracle at
    every timestamp, and the sharded server's results must be identical to
    the single-process server's.

    With ``dedup=True`` the stream additionally drives servers wrapped in a
    :class:`~repro.core.dedup.DedupFrontend` — one over a single-process
    server (always) and one over a sharded server (when *workers* is set) —
    and a plain single-process reference even if *workers* is unset.  Every
    dedup server must match the oracle, and its per-logical-query neighbor
    lists must be **byte-identical** to the plain reference server's: the
    canonicalization shares physical queries but never changes any tenant's
    answer.  One carve-out: on venue scenarios (the only ones whose
    placements *exactly* coincide, so tenants can join an existing group
    mid-stream) an IMA joiner inherits the group's expansion tree, whose
    float history — composed weight shifts and movement re-root offsets —
    differs in the last ULP from the fresh private install the plain
    server gives that tenant (co-located IMA queries installed at
    different times diverge the same way *within* the plain server).  For
    that combination the dedup answers are checked with
    :func:`~repro.core.results.results_equal` like every other panel
    member; byte-identity stays enforced for every other scenario and for
    the history-free GMA/OVH servers on venue scenarios too.

    With ``partitioning="graph"`` (requires *workers*) the stream drives a
    **third** sharded leg built over network-partitioned region shards
    instead of full replicas.  It must match the oracle at every timestamp
    and be **byte-identical** to the single-process reference for every
    query except those the partitioned server itself reports in
    :meth:`~repro.core.sharding.ShardedMonitoringServer.divergent_query_ids`
    — IMA queries that escalated to coordinator-side boundary evaluation,
    whose fresh re-expansion differs in the last ULP from the incremental
    expansion-tree history (the same float-history class as the dedup
    carve-out above); those are still checked against the oracle with
    :func:`~repro.core.results.results_equal`.

    Example::

        report = run_differential_scenario("churn-heavy", seed=7, workers=4)
        assert report.ok, report.failure_message()
    """
    if query_types not in ("default", "mixed"):
        raise SimulationError(
            f"unknown query_types {query_types!r}; use 'default' or 'mixed'"
        )
    spec = resolve_scenario(scenario)
    if query_types == "mixed":
        # Overlay the mixed query-kind distribution: every preset fuzzes
        # k-NN, range and aggregate queries through the same stressors.
        spec = spec.with_overrides(query_mix=MIXED_QUERY_MIX)
    if network is None:
        network = city_network(network_edges, seed=seed + 1)
    edge_table = EdgeTable(network, build_spatial_index=False)
    engine = ScenarioEngine(network, spec, seed=seed)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)

    oracle = OracleMonitor(network, edge_table)
    monitors: Dict[str, MonitorBase] = {
        name: _make_monitor(name, network, edge_table) for name in algorithms
    }
    for query_id, (location, k) in engine.initial_queries().items():
        oracle.register_query(query_id, location, k)
        for monitor in monitors.values():
            monitor.register_query(query_id, location, k)

    servers: Dict[str, MonitoringServer] = {}
    if workers is not None and workers < 1:
        raise SimulationError(f"workers must be >= 1, got {workers}")
    if partitioning not in ("replica", "graph"):
        raise SimulationError(
            f"unknown partitioning {partitioning!r}; use 'replica' or 'graph'"
        )
    if partitioning == "graph" and workers is None:
        raise SimulationError("partitioning='graph' requires workers")
    prefix = server_algorithm.upper()
    if workers is not None or dedup:
        # Distinct keys even when workers == 1: the baseline is always the
        # in-process server, the second a sharded one with that many worker
        # processes.  The baseline doubles as the byte-identity reference
        # for the dedup frontends.
        servers[f"{prefix}-server-single"] = _make_scenario_server(
            network, engine, server_algorithm, workers=None, kernel=server_kernel
        )
    if workers is not None:
        servers[f"{prefix}-server-x{workers}"] = _make_scenario_server(
            network, engine, server_algorithm, workers=workers, kernel=server_kernel
        )
    graph_name: Optional[str] = None
    if partitioning == "graph" and workers is not None:
        # A third sharded leg over network-partitioned region shards; the
        # replica leg above stays as the like-for-like IPC baseline so
        # replica/graph divergences are attributable to partitioning alone.
        graph_name = f"{prefix}-server-graph-x{workers}"
        servers[graph_name] = _make_scenario_server(
            network, engine, server_algorithm, workers=workers,
            kernel=server_kernel, partitioning=partitioning,
        )
    if dedup:
        servers[f"{prefix}-dedup-single"] = _make_scenario_server(
            network, engine, server_algorithm, workers=None, kernel=server_kernel,
            dedup=True,
        )
        if workers is not None:
            servers[f"{prefix}-dedup-x{workers}"] = _make_scenario_server(
                network, engine, server_algorithm, workers=workers,
                kernel=server_kernel, dedup=True,
            )

    # Byte-identity of dedup vs plain results holds unless a tenant can
    # join an existing dedup group mid-stream (only venue scenarios place
    # queries on *exactly* coinciding locations) AND the algorithm carries
    # per-query float history across ticks (IMA composes weight shifts and
    # movement re-root offsets onto its expansion trees) — see the
    # docstring carve-out.
    byte_identical = (
        spec.venue_fraction == 0 or server_algorithm.lower() != "ima"
    )

    rounds = spec.timestamps if timestamps is None else timestamps
    report = DifferentialReport(
        scenario=spec.name,
        seed=seed,
        timestamps=rounds,
        workers=workers,
        server_algorithm=server_algorithm,
        server_kernel=server_kernel,
        algorithms=tuple(algorithms),
        query_types=query_types,
        dedup=dedup,
        partitioning=partitioning,
    )
    try:
        for batch in engine.batches(rounds):
            apply_batch(network, edge_table, batch.normalized())
            oracle_report = oracle.process_batch(batch)
            if oracle_report.timestamp != batch.timestamp:
                report.mismatches.append(
                    f"t={batch.timestamp} ORACLE reported timestamp "
                    f"{oracle_report.timestamp}"
                )
            for name, monitor in monitors.items():
                tick_report = monitor.process_batch(batch)
                if tick_report.timestamp != batch.timestamp:
                    report.mismatches.append(
                        f"t={batch.timestamp} {name} reported timestamp "
                        f"{tick_report.timestamp}"
                    )
            for name, server in servers.items():
                server.apply_updates(batch)
                tick_report = server.tick()
                if tick_report.timestamp != batch.timestamp:
                    report.mismatches.append(
                        f"t={batch.timestamp} {name} reported timestamp "
                        f"{tick_report.timestamp}"
                    )
            for query_id in sorted(engine.live_queries()):
                truth = list(oracle.result_of(query_id).neighbors)
                for name, monitor in monitors.items():
                    report.checks += 1
                    answer = list(monitor.result_of(query_id).neighbors)
                    if not results_equal(truth, answer):
                        report.mismatches.append(
                            f"t={batch.timestamp} {name} q={query_id}: "
                            f"expected {truth} got {answer}"
                        )
                reference: Optional[List] = None
                for name, server in servers.items():
                    report.checks += 1
                    answer = list(server.result_of(query_id).neighbors)
                    if not results_equal(truth, answer):
                        report.mismatches.append(
                            f"t={batch.timestamp} {name} q={query_id}: "
                            f"expected {truth} got {answer}"
                        )
                    if reference is None:
                        reference = answer
                    elif not results_equal(reference, answer):
                        report.mismatches.append(
                            f"t={batch.timestamp} {name} q={query_id}: sharded "
                            f"result {answer} != single-process {reference}"
                        )
                    elif "-dedup-" in name and byte_identical and answer != reference:
                        report.mismatches.append(
                            f"t={batch.timestamp} {name} q={query_id}: dedup "
                            f"result {answer} not byte-identical to plain "
                            f"{reference}"
                        )
                    elif (
                        name == graph_name
                        and answer != reference
                        and query_id not in server.divergent_query_ids()
                    ):
                        report.mismatches.append(
                            f"t={batch.timestamp} {name} q={query_id}: "
                            f"graph-partitioned result {answer} not "
                            f"byte-identical to single-process {reference}"
                        )
    finally:
        for server in servers.values():
            server.close()
    return report


def run_differential_log(
    data_dir,
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS,
    max_ticks: Optional[int] = None,
) -> DifferentialReport:
    """Differentially replay a captured service event log against the oracle.

    The durable service's write-ahead log doubles as a workload capture:
    this loads the genesis checkpoint of *data_dir* (network, objects, and
    any pre-registered queries — without spawning workers), rebuilds an
    independent oracle plus the requested monitor panel from that state,
    and feeds them the logged batches in order, comparing every live
    query's result at every timestamp exactly as
    :func:`run_differential_scenario` does for synthetic streams.

    Args:
        data_dir: a service data directory (``events.log`` + checkpoints).
        algorithms: the monitor panel to replay against the oracle.
        max_ticks: replay at most this many logged batches (None = all).

    Example::

        report = run_differential_log("service-data")
        assert report.ok, report.failure_message()
    """
    # Call-time imports keep repro.testing importable without the service
    # package's asyncio machinery on unrelated paths.
    from repro.core.events import decode_batch
    from repro.service.durable import load_initial_state
    from repro.service.eventlog import read_event_log
    import pathlib

    initial = load_initial_state(data_dir)
    network = initial.network
    edge_table = initial.edge_table

    oracle = OracleMonitor(network, edge_table)
    monitors: Dict[str, MonitorBase] = {
        name: _make_monitor(name, network, edge_table) for name in algorithms
    }
    live = set(initial.queries)
    for query_id in sorted(initial.queries):
        location, k = initial.queries[query_id]
        oracle.register_query(query_id, location, k)
        for monitor in monitors.values():
            monitor.register_query(query_id, location, k)

    payloads = read_event_log(pathlib.Path(data_dir) / "events.log")
    if max_ticks is not None:
        payloads = payloads[:max_ticks]

    report = DifferentialReport(
        scenario=f"log:{data_dir}",
        seed=-1,
        timestamps=len(payloads),
        algorithms=tuple(algorithms),
    )
    for payload in payloads:
        batch = decode_batch(payload)  # logged batches are already normalized
        apply_batch(network, edge_table, batch.normalized())
        oracle_report = oracle.process_batch(batch)
        if oracle_report.timestamp != batch.timestamp:
            report.mismatches.append(
                f"t={batch.timestamp} ORACLE reported timestamp "
                f"{oracle_report.timestamp}"
            )
        for name, monitor in monitors.items():
            tick_report = monitor.process_batch(batch)
            if tick_report.timestamp != batch.timestamp:
                report.mismatches.append(
                    f"t={batch.timestamp} {name} reported timestamp "
                    f"{tick_report.timestamp}"
                )
        for update in batch.query_updates:
            if update.is_installation:
                live.add(update.query_id)
            elif update.is_termination:
                live.discard(update.query_id)
        for query_id in sorted(live):
            truth = list(oracle.result_of(query_id).neighbors)
            for name, monitor in monitors.items():
                report.checks += 1
                answer = list(monitor.result_of(query_id).neighbors)
                if not results_equal(truth, answer):
                    report.mismatches.append(
                        f"t={batch.timestamp} {name} q={query_id}: "
                        f"expected {truth} got {answer}"
                    )
    return report
