"""Oracle-backed differential runner for scenario streams.

:func:`run_differential_scenario` builds a seeded network and scenario
stream, runs the requested monitoring algorithms in lock-step — by default
IMA and GMA on both the CSR and the legacy kernels — and compares every
query's result at every timestamp against the independent
:class:`~repro.testing.oracle.OracleMonitor`.  The returned report carries a
one-command replay line so any fuzz failure reproduces locally from just
``(scenario, seed)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.base import MonitorBase
from repro.core.events import apply_batch
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.results import results_equal
from repro.exceptions import SimulationError
from repro.network.builders import city_network
from repro.network.edge_table import EdgeTable
from repro.network.graph import RoadNetwork
from repro.testing.oracle import OracleMonitor
from repro.testing.scenarios import ScenarioEngine, resolve_scenario

#: Algorithm names accepted by :func:`run_differential_scenario`: an
#: optional ``-legacy`` suffix selects the dict-walking kernel.
_MONITOR_CLASSES = {"OVH": OvhMonitor, "IMA": ImaMonitor, "GMA": GmaMonitor}

#: The default panel: the production CSR paths and the preserved legacy
#: paths, all of which must agree with the oracle.
DEFAULT_ALGORITHMS = ("IMA", "GMA", "IMA-legacy", "GMA-legacy")


def _make_monitor(name: str, network, edge_table) -> MonitorBase:
    base, _, variant = name.partition("-")
    cls = _MONITOR_CLASSES.get(base.upper())
    if cls is None or variant not in ("", "legacy"):
        raise SimulationError(
            f"unknown differential algorithm {name!r}; use e.g. 'IMA' or 'GMA-legacy'"
        )
    kernel = "legacy" if variant == "legacy" else "csr"
    return cls(network, edge_table, kernel=kernel)


def replay_command(scenario: str, seed: int) -> str:
    """The one-command local reproduction of a fuzz failure."""
    return (
        f"FUZZ_SCENARIO={scenario} FUZZ_SEED={seed} PYTHONPATH=src "
        "python -m pytest tests/test_fuzz_differential.py::test_replay_from_env -q -s"
    )


@dataclass
class DifferentialReport:
    """Outcome of one oracle-backed differential scenario run."""

    scenario: str
    seed: int
    timestamps: int
    checks: int = 0
    mismatches: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def failure_message(self, limit: int = 5) -> str:
        """Human-readable failure summary including the replay command."""
        shown = "\n  ".join(self.mismatches[:limit])
        more = len(self.mismatches) - min(limit, len(self.mismatches))
        suffix = f"\n  ... and {more} more" if more > 0 else ""
        return (
            f"scenario {self.scenario!r} seed {self.seed} diverged from the oracle "
            f"({len(self.mismatches)} mismatches over {self.timestamps} ticks):\n"
            f"  {shown}{suffix}\n"
            f"replay locally with:\n  {replay_command(self.scenario, self.seed)}"
        )


def run_differential_scenario(
    scenario,
    seed: int,
    algorithms: Tuple[str, ...] = DEFAULT_ALGORITHMS,
    network: Optional[RoadNetwork] = None,
    network_edges: int = 120,
    timestamps: Optional[int] = None,
) -> DifferentialReport:
    """Run *algorithms* over a scenario stream and diff them against the oracle.

    Everything — the network, the placements, the update stream — derives
    from ``(scenario, seed)``, so the run is exactly reproducible.  At every
    timestamp each monitor's :class:`~repro.core.base.TimestepReport` must
    carry the batch's timestamp and every live query's distance profile must
    match the brute-force oracle's.
    """
    spec = resolve_scenario(scenario)
    if network is None:
        network = city_network(network_edges, seed=seed + 1)
    edge_table = EdgeTable(network, build_spatial_index=False)
    engine = ScenarioEngine(network, spec, seed=seed)
    for object_id, location in engine.initial_objects().items():
        edge_table.insert_object(object_id, location)

    oracle = OracleMonitor(network, edge_table)
    monitors: Dict[str, MonitorBase] = {
        name: _make_monitor(name, network, edge_table) for name in algorithms
    }
    for query_id, (location, k) in engine.initial_queries().items():
        oracle.register_query(query_id, location, k)
        for monitor in monitors.values():
            monitor.register_query(query_id, location, k)

    rounds = spec.timestamps if timestamps is None else timestamps
    report = DifferentialReport(scenario=spec.name, seed=seed, timestamps=rounds)
    for batch in engine.batches(rounds):
        apply_batch(network, edge_table, batch.normalized())
        oracle_report = oracle.process_batch(batch)
        if oracle_report.timestamp != batch.timestamp:
            report.mismatches.append(
                f"t={batch.timestamp} ORACLE reported timestamp {oracle_report.timestamp}"
            )
        for name, monitor in monitors.items():
            tick_report = monitor.process_batch(batch)
            if tick_report.timestamp != batch.timestamp:
                report.mismatches.append(
                    f"t={batch.timestamp} {name} reported timestamp {tick_report.timestamp}"
                )
        for query_id in sorted(engine.live_queries()):
            truth = list(oracle.result_of(query_id).neighbors)
            for name, monitor in monitors.items():
                report.checks += 1
                answer = list(monitor.result_of(query_id).neighbors)
                if not results_equal(truth, answer):
                    report.mismatches.append(
                        f"t={batch.timestamp} {name} q={query_id}: "
                        f"expected {truth} got {answer}"
                    )
    return report
