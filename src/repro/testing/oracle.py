"""Brute-force oracle monitor: ground truth for differential testing.

The :class:`OracleMonitor` implements the :class:`~repro.core.base.MonitorBase`
interface by recomputing every registered query from scratch at every
timestamp with the plain-Dijkstra reference helpers of
:mod:`repro.network.distance` — :func:`~repro.network.distance.brute_force_knn`
for k-NN queries, :func:`~repro.network.distance.brute_force_range` for
fixed-radius range queries, and
:func:`~repro.network.distance.brute_force_aggregate_knn` for aggregate
k-NN queries (one full Dijkstra per aggregation point).  It deliberately
shares nothing with the machinery under test: no expansion trees, no
influence intervals, no candidate re-use, no CSR kernel.  Quadratic and
slow by design; its value is that agreement with it is independent evidence
that OVH, IMA and GMA (on any kernel) are correct — for every query type.
"""

from __future__ import annotations

from typing import Set

from repro.core.base import MonitorBase
from repro.core.events import UpdateBatch
from repro.core.queries import QuerySpec
from repro.core.results import KnnResult
from repro.network.distance import (
    brute_force_aggregate_knn,
    brute_force_knn,
    brute_force_range,
)
from repro.network.graph import NetworkLocation


class OracleMonitor(MonitorBase):
    """Full brute-force recomputation of every query at every timestamp.

    Example::

        oracle = OracleMonitor(network, edge_table)
        oracle.register_query(1, location, k=4)
        oracle.process_batch(batch)            # full brute-force recompute
    """

    name = "ORACLE"

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        return self._evaluate(query_id, location, spec)

    def _remove_query(self, query_id: int) -> None:
        # No per-query state beyond the result handled by the base class.
        return None

    def _process(self, batch: UpdateBatch) -> Set[int]:
        changed: Set[int] = set()
        for query_id in list(self._query_spec):
            result = self._evaluate(
                query_id, self._query_location[query_id], self._query_spec[query_id]
            )
            if self._store_result(query_id, list(result.neighbors), result.radius):
                changed.add(query_id)
        return changed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _evaluate(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        """Ground-truth evaluation of one query, dispatched on its kind."""
        if spec.kind == "range":
            neighbors = brute_force_range(
                self._network, self._edge_table, location, spec.radius
            )
            radius = spec.radius
        elif spec.kind == "aggregate_knn":
            neighbors = brute_force_aggregate_knn(
                self._network,
                self._edge_table,
                spec.aggregation_points(location),
                spec.k,
                agg=spec.agg,
            )
            radius = (
                neighbors[spec.k - 1][1] if len(neighbors) >= spec.k else float("inf")
            )
        else:
            neighbors = brute_force_knn(self._network, self._edge_table, location, spec.k)
            radius = (
                neighbors[spec.k - 1][1] if len(neighbors) >= spec.k else float("inf")
            )
        return KnnResult(
            query_id=query_id,
            k=spec.result_k,
            neighbors=tuple(neighbors),
            radius=radius,
        )
