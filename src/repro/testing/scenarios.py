"""Seeded scenario engine: diverse workload stressors as reproducible batches.

The default simulator workload (uniform placements, random-walk mobility,
mild traffic) exercises only a narrow slice of the update space.  The
:class:`ScenarioEngine` composes *stressors* — object churn, edge-weight
storms, query teleports, hotspot clustering, mass arrivals / departures in a
single tick, same-tick appear/disappear flickers — into deterministic
:class:`~repro.core.events.UpdateBatch` streams.  Everything is derived from
``(spec, seed)``: the same pair always produces the identical stream, which
is what makes fuzz failures replayable with one command.

The engine never touches the shared network or edge table itself; the
consumer applies each batch exactly once (``apply_batch`` or
``MonitoringServer.apply_updates``) and feeds it to the monitors, exactly
like the simulator does.  Edge-update ``old_weight`` values come from the
engine's own weight view, so a stream may be fully materialised up front and
applied later.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Tuple

from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
)
from repro.core.queries import QuerySpec, as_query_spec
from repro.exceptions import SimulationError
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.realism.traffic import RushHourModel, RushHourSpec

#: Default base for generated query ids (kept clear of object ids; matches
#: the simulator's convention).
QUERY_ID_BASE = 1_000_000

#: The query-kind distribution the ``FUZZ_QUERY_TYPES=mixed`` fuzz leg
#: overlays on every preset: all three types share one stream.
MIXED_QUERY_MIX = (("knn", 0.4), ("range", 0.3), ("aggregate_knn", 0.3))


@dataclass(frozen=True)
class ScenarioSpec:
    """One named workload scenario: stressor intensities per tick.

    All fractions are of the respective live population (or the edge count)
    per timestamp; probabilities are per timestamp.  Use
    :meth:`with_overrides` to derive variants.

    Example::

        spec = SCENARIO_PRESETS["weight-storm"].with_overrides(timestamps=20)
    """

    name: str
    description: str = ""
    #: initial populations (ignored when the engine is seeded with state)
    num_objects: int = 50
    num_queries: int = 8
    k_choices: Tuple[int, ...] = (1, 2, 4)
    #: default stream length of :meth:`ScenarioEngine.batches`
    timestamps: int = 8
    #: fraction of live objects that move per tick
    object_move_fraction: float = 0.10
    #: expected object arrivals per tick (fractional rates accumulate)
    object_arrival_rate: float = 0.0
    #: expected object departures per tick
    object_departure_rate: float = 0.0
    #: fraction of edges whose weight changes per tick
    edge_storm_fraction: float = 0.05
    #: maximum relative weight change per storm hit (must stay below 1)
    edge_storm_factor: float = 0.15
    #: fraction of live queries that move per tick
    query_move_fraction: float = 0.25
    #: of the moving queries, the fraction that jumps to a uniformly random
    #: position (the rest step to an edge adjacent to their current one)
    query_teleport_fraction: float = 0.0
    #: per-tick probability of one query installation and one termination
    query_churn_prob: float = 0.0
    #: fraction of new placements drawn from the hotspot edge pool
    hotspot_fraction: float = 0.0
    #: size of the hotspot edge pool
    hotspot_edges: int = 10
    #: per-tick probability of a mass arrival (and, independently, a mass
    #: departure) of ``mass_size`` objects in that single tick
    mass_event_prob: float = 0.0
    mass_size: int = 12
    #: per-tick probability of a same-tick appear+disappear flicker object
    flicker_prob: float = 0.0
    #: per-tick probability that one query both moves and terminates in the
    #: same tick (exercises the Section 4.5 batch preprocessing)
    move_and_remove_prob: float = 0.0
    #: distribution of query kinds for generated installations: ``(kind,
    #: weight)`` pairs over ``"knn"`` / ``"range"`` / ``"aggregate_knn"``
    #: (weights need not sum to 1; the default keeps streams k-NN-only and
    #: RNG-identical to the pre-query-type engine)
    query_mix: Tuple[Tuple[str, float], ...] = (("knn", 1.0),)
    #: range-query radii, drawn as multiples of the network's mean edge weight
    range_radius_factors: Tuple[float, ...] = (2.0, 4.0)
    #: how many *fixed* extra aggregation points an aggregate-kNN install gets
    aggregate_point_counts: Tuple[int, ...] = (1, 2)
    #: aggregate distance functions drawn for aggregate-kNN installs
    aggregate_aggs: Tuple[str, ...] = ("sum", "max")
    #: fraction of edges that become *venues* — fixed popular anchor points
    #: (one exact location each) that query placements cluster onto; 0
    #: disables venues and consumes no RNG, keeping legacy streams unchanged
    venue_fraction: float = 0.0
    #: probability that a query placement (install, teleport, initial
    #: position, aggregate point) snaps exactly onto a venue anchor
    venue_query_fraction: float = 0.0
    #: optional rush-hour traffic model (congestion waves, incidents, road
    #: closures) layered under the other stressors; ``None`` disables it and
    #: consumes no RNG — the model keeps its own namespaced RNG either way,
    #: so legacy preset streams are byte-identical
    traffic_spec: Optional[RushHourSpec] = None

    def with_overrides(self, **overrides) -> "ScenarioSpec":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


#: Named scenario presets covering qualitatively different stress patterns.
SCENARIO_PRESETS: Dict[str, ScenarioSpec] = {
    preset.name: preset
    for preset in (
        ScenarioSpec(
            name="uniform-drift",
            description="baseline: mild uniform movement, light weight noise",
            object_move_fraction=0.15,
            query_move_fraction=0.30,
        ),
        ScenarioSpec(
            name="churn-heavy",
            description="objects constantly appear, disappear and flicker",
            object_move_fraction=0.20,
            object_arrival_rate=1.5,
            object_departure_rate=1.2,
            flicker_prob=0.6,
            query_churn_prob=0.3,
        ),
        ScenarioSpec(
            name="weight-storm",
            description="a quarter of all edges change weight every tick",
            object_move_fraction=0.05,
            edge_storm_fraction=0.25,
            edge_storm_factor=0.30,
            query_move_fraction=0.10,
        ),
        ScenarioSpec(
            name="teleport",
            description="queries jump across the network and churn",
            query_move_fraction=0.60,
            query_teleport_fraction=1.0,
            query_churn_prob=0.4,
            move_and_remove_prob=0.3,
        ),
        ScenarioSpec(
            name="hotspot",
            description="movers cluster onto a small pool of hotspot edges",
            object_move_fraction=0.30,
            query_move_fraction=0.30,
            hotspot_fraction=0.8,
            object_arrival_rate=0.5,
        ),
        ScenarioSpec(
            name="mass-transit",
            description="whole cohorts arrive and depart within one tick",
            object_move_fraction=0.05,
            mass_event_prob=0.6,
            mass_size=15,
        ),
        ScenarioSpec(
            name="mixed-stress",
            description="every stressor at moderate intensity at once",
            object_move_fraction=0.15,
            object_arrival_rate=0.8,
            object_departure_rate=0.6,
            edge_storm_fraction=0.12,
            edge_storm_factor=0.25,
            query_move_fraction=0.35,
            query_teleport_fraction=0.4,
            query_churn_prob=0.25,
            hotspot_fraction=0.4,
            mass_event_prob=0.2,
            flicker_prob=0.3,
            move_and_remove_prob=0.15,
        ),
        ScenarioSpec(
            name="mixed-fleet",
            description="kNN, range and aggregate queries share one stream",
            object_move_fraction=0.20,
            object_arrival_rate=0.8,
            object_departure_rate=0.6,
            edge_storm_fraction=0.10,
            edge_storm_factor=0.20,
            query_move_fraction=0.35,
            query_teleport_fraction=0.3,
            query_churn_prob=0.35,
            move_and_remove_prob=0.15,
            query_mix=MIXED_QUERY_MIX,
        ),
        ScenarioSpec(
            name="popular-venue",
            description="many tenants watch identical spots on a few venue edges",
            num_objects=60,
            num_queries=24,
            k_choices=(2, 4),
            object_move_fraction=0.15,
            edge_storm_fraction=0.05,
            edge_storm_factor=0.20,
            query_move_fraction=0.20,
            query_teleport_fraction=1.0,
            query_churn_prob=0.5,
            venue_fraction=0.02,
            venue_query_fraction=0.85,
            query_mix=(("knn", 0.7), ("range", 0.2), ("aggregate_knn", 0.1)),
        ),
        ScenarioSpec(
            name="rush-hour",
            description="time-of-day congestion waves with decaying incidents",
            object_move_fraction=0.20,
            object_arrival_rate=0.6,
            object_departure_rate=0.5,
            edge_storm_fraction=0.0,
            query_move_fraction=0.25,
            query_churn_prob=0.2,
            # ticks_per_day=16 squeezes a full morning peak into the default
            # 8-tick streams; a high refresh fraction makes every tick carry
            # wave traffic on the small fuzz networks.
            traffic_spec=RushHourSpec(
                ticks_per_day=16,
                incident_rate=1.2,
                congestion_update_fraction=0.25,
            ),
        ),
        ScenarioSpec(
            name="gridlock-closures",
            description="rush-hour traffic plus road closures that reopen",
            object_move_fraction=0.15,
            edge_storm_fraction=0.0,
            query_move_fraction=0.20,
            query_churn_prob=0.25,
            query_mix=(("knn", 0.6), ("range", 0.25), ("aggregate_knn", 0.15)),
            traffic_spec=RushHourSpec(
                ticks_per_day=16,
                incident_rate=0.8,
                closure_rate=0.8,
                closure_duration=(1, 3),
                congestion_update_fraction=0.25,
            ),
        ),
        ScenarioSpec(
            name="geofence-churn",
            description="range geofences under heavy object churn and weight noise",
            object_move_fraction=0.25,
            object_arrival_rate=1.5,
            object_departure_rate=1.2,
            flicker_prob=0.4,
            edge_storm_fraction=0.15,
            edge_storm_factor=0.25,
            query_move_fraction=0.20,
            query_churn_prob=0.30,
            query_mix=(("range", 0.8), ("knn", 0.2)),
            range_radius_factors=(1.5, 3.0, 5.0),
        ),
    )
}


def resolve_scenario(scenario) -> ScenarioSpec:
    """Resolve a :class:`ScenarioSpec` or preset name to a spec.

    Raises:
        SimulationError: for an unknown preset name.
    """
    if isinstance(scenario, ScenarioSpec):
        return scenario
    spec = SCENARIO_PRESETS.get(scenario)
    if spec is None:
        raise SimulationError(
            f"unknown scenario {scenario!r}; choose one of {sorted(SCENARIO_PRESETS)}"
        )
    return spec


class ScenarioEngine:
    """Deterministic update-stream generator for one scenario.

    Args:
        network: the road network the stream refers to (read-only; the
            engine keeps its own weight view so streams can be materialised
            before being applied).
        scenario: a :class:`ScenarioSpec` or preset name.
        seed: stream seed; ``(scenario, seed)`` fully determines the stream.
        initial_objects: optionally adopt existing object placements instead
            of generating ``spec.num_objects`` fresh ones.  The caller is
            responsible for these already being registered (e.g. the
            simulator's edge table); freshly generated ones are returned by
            :meth:`initial_objects` for the caller to insert.
        initial_queries: optionally adopt existing queries as
            ``{query_id: (location, k_or_spec)}`` — the second element is a
            plain int k (classic k-NN) or any
            :class:`~repro.core.queries.QuerySpec`.

    Example::

        engine = ScenarioEngine(network, "churn-heavy", seed=7)
        for batch in engine.batches():
            apply_batch(network, edge_table, batch.normalized())
    """

    def __init__(
        self,
        network: RoadNetwork,
        scenario,
        seed: int = 0,
        initial_objects: Optional[Dict[int, NetworkLocation]] = None,
        initial_queries: Optional[Dict[int, Tuple[NetworkLocation, object]]] = None,
    ) -> None:
        self._network = network
        self._spec = resolve_scenario(scenario)
        self._seed = seed
        self._rng = random.Random(f"{self._spec.name}/{seed}")
        self._edges: List[int] = sorted(network.edge_ids())
        if not self._edges:
            raise SimulationError("scenario engine needs a network with edges")
        self._weights: Dict[int, float] = {
            edge_id: network.edge(edge_id).weight for edge_id in self._edges
        }
        #: Range radii scale with the network: factors multiply the mean
        #: *initial* edge weight (frozen here so streams stay deterministic
        #: under weight storms).
        self._mean_weight = sum(self._weights.values()) / len(self._weights)
        self._hotspot_pool = self._build_hotspot_pool()
        self._venue_pool = self._build_venue_pool()
        #: Optional rush-hour traffic layer.  It shares the engine's weight
        #: view (so storm/traffic old_weights stay consistent) but owns a
        #: namespaced RNG: presets without a traffic_spec consume exactly
        #: the RNG stream they always did.
        self._traffic: Optional[RushHourModel] = None
        if self._spec.traffic_spec is not None:
            self._traffic = RushHourModel(
                network,
                spec=self._spec.traffic_spec,
                seed=seed,
                weights=self._weights,
                rng_label=f"{self._spec.name}/rush-hour",
            )

        if initial_objects is None:
            self._objects = {
                object_id: self._uniform_location()
                for object_id in range(self._spec.num_objects)
            }
        else:
            self._objects = dict(initial_objects)
        if initial_queries is None:
            self._queries: Dict[int, Tuple[NetworkLocation, QuerySpec]] = {
                QUERY_ID_BASE + index: (
                    self._venue_or(self._uniform_location),
                    self._draw_query_spec(),
                )
                for index in range(self._spec.num_queries)
            }
        else:
            # Adopted queries may carry plain int ks (the simulator's
            # convention); normalize so consumers always see QuerySpecs.
            self._queries = {
                query_id: (location, as_query_spec(k))
                for query_id, (location, k) in initial_queries.items()
            }
        self._next_object_id = max(self._objects, default=-1) + 1
        self._next_query_id = max(self._queries, default=QUERY_ID_BASE - 1) + 1
        #: fractional arrival/departure rates accumulate across ticks
        self._arrival_debt = 0.0
        self._departure_debt = 0.0
        # Frozen copies of the starting state; the registries above advance
        # as batches are generated.
        self._initial_objects_cache = dict(self._objects)
        self._initial_queries_cache = dict(self._queries)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def spec(self) -> ScenarioSpec:
        """The scenario specification driving this stream."""
        return self._spec

    @property
    def seed(self) -> int:
        """The stream seed; ``(spec.name, seed)`` determines everything."""
        return self._seed

    def initial_objects(self) -> Dict[int, NetworkLocation]:
        """The placements the stream starts from (insert before tick 0)."""
        return dict(self._initial_objects_cache)

    def initial_queries(self) -> Dict[int, Tuple[NetworkLocation, QuerySpec]]:
        """The queries the stream starts from (register before tick 0).

        Values are ``(location, spec)`` pairs; pass the spec anywhere a
        ``k`` is accepted (``register_query`` / ``add_query``).
        """
        return dict(self._initial_queries_cache)

    def live_objects(self) -> Dict[int, NetworkLocation]:
        """Object id -> location after the last generated batch."""
        return dict(self._objects)

    def live_queries(self) -> Dict[int, Tuple[NetworkLocation, QuerySpec]]:
        """Query id -> (location, spec) after the last generated batch."""
        return dict(self._queries)

    # ------------------------------------------------------------------
    # query-spec generation
    # ------------------------------------------------------------------
    def _draw_query_spec(self) -> QuerySpec:
        """Draw one installation's :class:`QuerySpec` from the query mix.

        A single-entry k-NN mix (the default) draws exactly one ``choice``
        from ``k_choices`` — byte-identical RNG consumption to the engine
        before query types existed, so legacy preset streams are unchanged.
        """
        spec = self._spec
        mix = spec.query_mix
        if len(mix) == 1:
            kind = mix[0][0]
        else:
            total = sum(weight for _, weight in mix)
            roll = self._rng.random() * total
            kind = mix[-1][0]
            for candidate, weight in mix:
                roll -= weight
                if roll <= 0:
                    kind = candidate
                    break
        if kind == "knn":
            return QuerySpec.knn(self._rng.choice(spec.k_choices))
        if kind == "range":
            factor = self._rng.choice(spec.range_radius_factors)
            return QuerySpec.range(factor * self._mean_weight)
        count = self._rng.choice(spec.aggregate_point_counts)
        points = tuple(self._venue_or(self._uniform_location) for _ in range(count))
        return QuerySpec.aggregate_knn(
            self._rng.choice(spec.k_choices),
            points,
            self._rng.choice(spec.aggregate_aggs),
        )

    # ------------------------------------------------------------------
    # stream generation
    # ------------------------------------------------------------------
    def batches(self, timestamps: Optional[int] = None) -> Iterator[UpdateBatch]:
        """Yield the scenario's update batches (``spec.timestamps`` by default)."""
        rounds = self._spec.timestamps if timestamps is None else timestamps
        for timestamp in range(rounds):
            yield self.batch(timestamp)

    def batch(self, timestamp: int) -> UpdateBatch:
        """Generate (but do not apply) the updates of one timestamp."""
        spec = self._spec
        rng = self._rng
        batch = UpdateBatch(timestamp=timestamp)

        # Rush-hour traffic layer (congestion waves, incidents, closures).
        if self._traffic is not None:
            batch.edge_updates.extend(self._traffic.tick(timestamp))

        # Edge-weight storm.
        storm_size = int(len(self._edges) * spec.edge_storm_fraction)
        if spec.edge_storm_fraction > 0 and storm_size == 0:
            storm_size = 1
        if storm_size:
            for edge_id in rng.sample(self._edges, storm_size):
                old_weight = self._weights[edge_id]
                factor = 1.0 + rng.uniform(-spec.edge_storm_factor, spec.edge_storm_factor)
                new_weight = max(old_weight * factor, 1e-9)
                if new_weight == old_weight:
                    continue
                self._weights[edge_id] = new_weight
                batch.edge_updates.append(
                    EdgeWeightUpdate(edge_id, old_weight, new_weight)
                )

        # Mass departure, regular departures, then movements of survivors.
        departures = 0
        if spec.mass_event_prob and rng.random() < spec.mass_event_prob:
            departures += spec.mass_size
        self._departure_debt += spec.object_departure_rate
        departures += int(self._departure_debt)
        self._departure_debt -= int(self._departure_debt)
        departures = min(departures, len(self._objects))
        if departures:
            for object_id in rng.sample(sorted(self._objects), departures):
                batch.object_updates.append(
                    ObjectUpdate(object_id, self._objects.pop(object_id), None)
                )

        movers = int(len(self._objects) * spec.object_move_fraction)
        if spec.object_move_fraction > 0 and self._objects and movers == 0:
            movers = 1
        if movers:
            for object_id in rng.sample(sorted(self._objects), movers):
                new_location = self._placement_location()
                batch.object_updates.append(
                    ObjectUpdate(object_id, self._objects[object_id], new_location)
                )
                self._objects[object_id] = new_location

        # Arrivals (mass cohort + accumulated rate).
        arrivals = 0
        if spec.mass_event_prob and rng.random() < spec.mass_event_prob:
            arrivals += spec.mass_size
        self._arrival_debt += spec.object_arrival_rate
        arrivals += int(self._arrival_debt)
        self._arrival_debt -= int(self._arrival_debt)
        for _ in range(arrivals):
            object_id = self._next_object_id
            self._next_object_id += 1
            location = self._placement_location()
            self._objects[object_id] = location
            batch.object_updates.append(ObjectUpdate(object_id, None, location))

        # Same-tick flicker: a brand-new object appears and disappears within
        # the same timestamp (net no-op after Section 4.5 preprocessing).
        if spec.flicker_prob and rng.random() < spec.flicker_prob:
            object_id = self._next_object_id
            self._next_object_id += 1
            location = self._placement_location()
            batch.object_updates.append(ObjectUpdate(object_id, None, location))
            batch.object_updates.append(ObjectUpdate(object_id, location, None))

        # Query movements (teleports vs adjacent-edge steps).
        q_movers = int(len(self._queries) * spec.query_move_fraction)
        if spec.query_move_fraction > 0 and self._queries and q_movers == 0:
            q_movers = 1
        if q_movers:
            for query_id in rng.sample(sorted(self._queries), q_movers):
                location, query_spec = self._queries[query_id]
                if rng.random() < spec.query_teleport_fraction:
                    new_location = self._venue_or(self._placement_location)
                else:
                    new_location = self._adjacent_location(location)
                batch.query_updates.append(
                    QueryUpdate(query_id, location, new_location)
                )
                self._queries[query_id] = (new_location, query_spec)

        # Query churn: one installation and one termination.
        if spec.query_churn_prob and rng.random() < spec.query_churn_prob:
            query_id = self._next_query_id
            self._next_query_id += 1
            location = self._venue_or(self._placement_location)
            query_spec = self._draw_query_spec()
            batch.query_updates.append(QueryUpdate(query_id, None, location, query_spec))
            self._queries[query_id] = (location, query_spec)
            if len(self._queries) > 2:
                victim = rng.choice(sorted(self._queries))
                old_location, _ = self._queries.pop(victim)
                batch.query_updates.append(QueryUpdate(victim, old_location, None))

        # Same-tick move + terminate of one query.
        if (
            spec.move_and_remove_prob
            and len(self._queries) > 1
            and rng.random() < spec.move_and_remove_prob
        ):
            victim = rng.choice(sorted(self._queries))
            old_location, _ = self._queries.pop(victim)
            mid_location = self._placement_location()
            batch.query_updates.append(QueryUpdate(victim, old_location, mid_location))
            batch.query_updates.append(QueryUpdate(victim, mid_location, None))

        return batch

    # ------------------------------------------------------------------
    # placement helpers
    # ------------------------------------------------------------------
    def _uniform_location(self) -> NetworkLocation:
        return NetworkLocation(self._rng.choice(self._edges), self._rng.random())

    def _placement_location(self) -> NetworkLocation:
        """A new position: hotspot-drawn with the configured probability."""
        if self._hotspot_pool and self._rng.random() < self._spec.hotspot_fraction:
            return NetworkLocation(
                self._rng.choice(self._hotspot_pool), self._rng.random()
            )
        return self._uniform_location()

    def _adjacent_location(self, location: NetworkLocation) -> NetworkLocation:
        """A position on an edge sharing an endpoint with the current one."""
        edge = self._network.edge(location.edge_id)
        node = self._rng.choice((edge.start, edge.end))
        incident = list(self._network.incident_edges(node))
        return NetworkLocation(self._rng.choice(incident), self._rng.random())

    def _venue_or(self, fallback) -> NetworkLocation:
        """A venue anchor with the configured probability, else ``fallback()``.

        With no venue pool (every legacy preset) this calls *fallback*
        directly without touching the RNG, so pre-venue streams are
        byte-identical.  Anchors are returned *exactly* — same edge, same
        fraction — which is what makes venue tenants dedup-equivalent.
        """
        if self._venue_pool and self._rng.random() < self._spec.venue_query_fraction:
            return self._venue_pool[self._rng.randrange(len(self._venue_pool))]
        return fallback()

    def _build_venue_pool(self) -> List[NetworkLocation]:
        """Fixed anchor locations on ``venue_fraction`` of the edges.

        Consumes RNG only when venues are enabled (the pool draw happens
        after the hotspot pool, before initial placements).
        """
        if self._spec.venue_fraction <= 0:
            return []
        count = min(
            max(1, int(len(self._edges) * self._spec.venue_fraction)),
            len(self._edges),
        )
        return [
            NetworkLocation(edge_id, self._rng.random())
            for edge_id in self._rng.sample(self._edges, count)
        ]

    def _build_hotspot_pool(self) -> List[int]:
        if self._spec.hotspot_fraction <= 0:
            return []
        anchor = self._network.edge(self._rng.choice(self._edges))
        pool: List[int] = []
        seen = set()
        frontier = [anchor.start, anchor.end]
        while frontier and len(pool) < self._spec.hotspot_edges:
            node = frontier.pop(0)
            if node in seen:
                continue
            seen.add(node)
            for edge_id in self._network.incident_edges(node):
                if edge_id not in pool:
                    pool.append(edge_id)
                    if len(pool) >= self._spec.hotspot_edges:
                        break
                edge = self._network.edge(edge_id)
                frontier.append(edge.other_endpoint(node))
        return pool
