"""Verification harness: brute-force oracle + scenario workload fuzzing.

This package is the correctness backbone the optimisation work leans on:

* :class:`~repro.testing.oracle.OracleMonitor` — a monitor that recomputes
  every query's k-NN set from scratch at every timestamp with the plain
  Dijkstra oracle of :mod:`repro.network.distance`.  It shares none of the
  expansion / influence machinery of OVH, IMA and GMA, so agreement with it
  is independent evidence of correctness.
* :class:`~repro.testing.scenarios.ScenarioEngine` — a seeded generator
  composing diverse workload stressors (object churn, edge-weight storms,
  query teleports, hotspot clustering, mass arrivals / departures) into
  reproducible :class:`~repro.core.events.UpdateBatch` streams, with the
  named presets of :data:`~repro.testing.scenarios.SCENARIO_PRESETS`.
* :func:`~repro.testing.harness.run_differential_scenario` — runs the
  monitoring algorithms (on both the CSR and the legacy kernels) in
  lock-step over a scenario and compares every result of every tick against
  the oracle, reporting a one-command replay line on mismatch.
"""

from repro.testing.harness import (
    DifferentialReport,
    replay_command,
    run_differential_log,
    run_differential_scenario,
)
from repro.testing.oracle import OracleMonitor
from repro.testing.scenarios import (
    MIXED_QUERY_MIX,
    SCENARIO_PRESETS,
    ScenarioEngine,
    ScenarioSpec,
    resolve_scenario,
)

__all__ = [
    "DifferentialReport",
    "MIXED_QUERY_MIX",
    "OracleMonitor",
    "SCENARIO_PRESETS",
    "ScenarioEngine",
    "ScenarioSpec",
    "replay_command",
    "resolve_scenario",
    "run_differential_log",
    "run_differential_scenario",
]
