"""Exception hierarchy for the road-network CkNN monitoring library.

All exceptions raised by the library derive from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by this library.

    Example::

        try:
            server.result_of(missing_query_id)
        except ReproError as exc:   # every library error derives from it
            print(exc)
    """


class NetworkError(ReproError):
    """Base class for errors related to the road-network graph."""


class NodeNotFoundError(NetworkError):
    """Raised when a node id does not exist in the network."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id!r} does not exist in the network")
        self.node_id = node_id


class EdgeNotFoundError(NetworkError):
    """Raised when an edge id does not exist in the network."""

    def __init__(self, edge_id: int) -> None:
        super().__init__(f"edge {edge_id!r} does not exist in the network")
        self.edge_id = edge_id


class DuplicateNodeError(NetworkError):
    """Raised when adding a node whose id is already present."""

    def __init__(self, node_id: int) -> None:
        super().__init__(f"node {node_id!r} already exists in the network")
        self.node_id = node_id


class DuplicateEdgeError(NetworkError):
    """Raised when adding an edge whose id is already present."""

    def __init__(self, edge_id: int) -> None:
        super().__init__(f"edge {edge_id!r} already exists in the network")
        self.edge_id = edge_id


class InvalidWeightError(NetworkError):
    """Raised when an edge weight is negative, zero, NaN or infinite."""

    def __init__(self, weight: float) -> None:
        super().__init__(f"edge weight must be a positive finite number, got {weight!r}")
        self.weight = weight


class InvalidLocationError(ReproError):
    """Raised when a network location (edge id, offset) is malformed."""


class DisconnectedNetworkError(NetworkError):
    """Raised when an operation requires connectivity that does not hold."""


class MonitoringError(ReproError):
    """Base class for errors raised by the monitoring algorithms."""


class UnknownObjectError(MonitoringError):
    """Raised when an update references a data object the server never saw."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"data object {object_id!r} is not registered with the server")
        self.object_id = object_id


class UnknownQueryError(MonitoringError):
    """Raised when an update references a query the server never saw."""

    def __init__(self, query_id: int) -> None:
        super().__init__(f"query {query_id!r} is not registered with the server")
        self.query_id = query_id


class DuplicateObjectError(MonitoringError):
    """Raised when registering a data object id twice."""

    def __init__(self, object_id: int) -> None:
        super().__init__(f"data object {object_id!r} is already registered")
        self.object_id = object_id


class DuplicateQueryError(MonitoringError):
    """Raised when registering a query id twice."""

    def __init__(self, query_id: int) -> None:
        super().__init__(f"query {query_id!r} is already registered")
        self.query_id = query_id


class InvalidQueryError(MonitoringError):
    """Raised when a query is malformed (e.g. k < 1)."""


class UnknownKernelError(MonitoringError):
    """Raised when a search-kernel name is not in the kernel registry.

    The message names every registered kernel (and whether the compiled
    ``native`` backend is importable on this machine), so a typo'd
    ``kernel=`` argument fails at construction with the valid choices in
    hand instead of deep inside the first tick.

    Example::

        try:
            MonitoringServer(network, kernel="diall")
        except UnknownKernelError as exc:
            print(exc.kernel, exc.choices)
    """

    def __init__(self, kernel: object, choices: tuple, detail: str = "") -> None:
        suffix = f" ({detail})" if detail else ""
        super().__init__(
            f"unknown kernel {kernel!r}; choose one of {tuple(choices)}{suffix}"
        )
        self.kernel = kernel
        self.choices = tuple(choices)


class ServerFailedError(MonitoringError):
    """Raised when a sharded server is used after a fatal tick failure.

    A shard dying mid-tick leaves the fleet's replicas out of lock-step, so
    the server closes itself and every later call fails with this type
    (rather than returning silently corrupt results).  ``cause`` carries a
    one-line description of the original failure.
    """

    def __init__(self, cause: str) -> None:
        super().__init__(
            f"this sharded server failed and was closed: {cause}; "
            "construct a new server (or recover from a checkpoint) to continue"
        )
        self.cause = cause


class ServiceError(ReproError):
    """Base class for errors raised by the durable streaming service."""


class EventLogError(ServiceError):
    """Raised when the append-only event log is corrupt or misused.

    A truncated final record (a torn write from a crash) is *not* an error —
    recovery trims it; this type signals real corruption (bad magic, a CRC
    mismatch before the tail) or misuse of a closed log.
    """


class RecoveryError(ServiceError):
    """Raised when checkpoint-plus-log recovery cannot reach a usable state."""


class SimulationError(ReproError):
    """Raised when a simulation or workload configuration is invalid."""


class ExperimentError(ReproError):
    """Raised when an experiment definition or sweep is invalid."""


class SpatialIndexError(ReproError):
    """Raised by the PMR quadtree for invalid construction or probing."""
