"""repro — Continuous k-NN monitoring in road networks.

A faithful, pure-Python reproduction of *Mouratidis, Yiu, Papadias,
Mamoulis: "Continuous Nearest Neighbor Monitoring in Road Networks"*
(VLDB 2006): the IMA and GMA monitoring algorithms, the OVH baseline, the
road-network / spatial-index substrate they require, mobility and traffic
generators, and an experiment harness that regenerates every figure of the
paper's evaluation.

Quickstart::

    from repro import MonitoringServer, city_network

    network = city_network(target_edges=500, seed=7)
    server = MonitoringServer(network, algorithm="ima")
    server.add_object_at(1, x=150.0, y=220.0)
    server.add_object_at(2, x=410.0, y=180.0)
    server.add_query_at(100, x=200.0, y=200.0, k=1)
    server.tick()
    print(server.result_of(100).neighbors)

Performance architecture.  The expansion hot path (:func:`expand_knn`)
runs over a flat-array CSR snapshot of the network
(:func:`csr_snapshot` / :class:`CSRGraph`): dense integer indices,
parallel adjacency columns, a C-level binary heap, and incremental weight
refresh on ``set_edge_weight``.  The original dict-based search is kept as
:func:`expand_knn_legacy` for differential testing and benchmarking.

High-volume feeds use the server's batched ingestion path —
``add_objects_at([...])`` / ``move_objects_at([...])`` snap whole
coordinate batches through one vectorized PMR-quadtree pass, and
``apply_updates(batch)`` buffers a pre-built
:class:`UpdateBatch` wholesale — so one :meth:`MonitoringServer.tick`
processes thousands of updates without per-update call overhead.

Scaling out.  ``MonitoringServer(network, workers=N)`` builds a
:class:`ShardedMonitoringServer`: queries are hash-partitioned
(:func:`shard_of`) across N worker processes, the CSR snapshot ships once
per topology version through :class:`SharedCSR` /
``multiprocessing.shared_memory``, each tick fans out to the shards and
merges their reports — with results identical to the single-process
server's (enforced by the oracle-backed differential suite).

Multi-tenant dedup.  Wrapping any server in a :class:`DedupFrontend` maps
equivalent logical queries (same spec, same — or, with a positive snap
tolerance, nearby — location) onto one reference-counted physical query
with per-subscriber result fanout, so thousands of tenants watching the
same venue cost one expansion tree instead of thousands.

City-scale realism.  :mod:`repro.realism` feeds the system workloads
shaped like real cities: an OSM-style nodes/ways importer
(:func:`import_road_network`) with largest-component extraction and
speed-class weights, a deterministic synthetic-city generator
(:func:`synthetic_city_network`) whose output flows through that same
importer, and a rush-hour traffic model (:class:`RushHourModel`) emitting
time-of-day congestion waves, Poisson incident storms and road closures
(pinned to the finite :data:`CLOSED_EDGE_WEIGHT` sentinel) — available as
the ``rush-hour`` / ``gridlock-closures`` scenario presets and driving the
100K-edge ``bench_city_scale`` benchmarks.

Always-on service.  :mod:`repro.service` runs any server as a durable
streaming service: clients stream updates over a socket API
(:class:`StreamingService` / :class:`ServiceClient`), result deltas push
to subscribers, and every batch is write-ahead logged
(:class:`EventLog`) with periodic checkpoints
(:class:`DurableMonitoringServer`) so a crashed service recovers to the
exact pre-crash state — ``kill -9`` included, as
:func:`repro.service.run_fault_injection` proves by doing it.  The log
doubles as a workload capture replayable through the differential oracle
harness (:func:`run_differential_log`).
"""

from repro.core import (
    ALGORITHMS,
    DedupFrontend,
    DedupStats,
    EdgeWeightUpdate,
    GmaMonitor,
    ImaMonitor,
    KnnResult,
    MonitorBase,
    MonitoringServer,
    ObjectUpdate,
    OvhMonitor,
    QuerySpec,
    QueryUpdate,
    SearchCounters,
    ShardedMonitoringServer,
    TimestepReport,
    UpdateBatch,
    aggregate_knn,
    apply_batch,
    as_query_spec,
    decode_batch,
    encode_batch,
    evaluate_aggregates,
    expand_knn,
    expand_knn_batch,
    ExpansionRequest,
    expand_knn_legacy,
    knn,
    range_query,
    restore_server,
    shard_of,
)
from repro.exceptions import ReproError, UnknownKernelError
from repro.network import (
    CLOSED_EDGE_WEIGHT,
    CSRGraph,
    EdgeTable,
    KernelSpec,
    available_kernels,
    native_available,
    registered_kernels,
    resolve_kernel,
    NetworkLocation,
    RoadNetwork,
    SequenceTable,
    SharedCSR,
    SharedCSRHandle,
    attach_shared_csr,
    csr_snapshot,
    brute_force_aggregate_knn,
    brute_force_knn,
    brute_force_range,
    city_network,
    grid_network,
    linear_network,
    load_network,
    network_distance,
    save_network,
)
from repro.service import (
    DurableMonitoringServer,
    EventLog,
    ServiceClient,
    StreamingService,
    load_initial_state,
    read_event_log,
    run_fault_injection,
)
from repro.realism import (
    CitySpec,
    ImportResult,
    ImportStats,
    RushHourModel,
    RushHourSpec,
    classify_edges,
    import_road_network,
    import_ways_text,
    synthetic_city_network,
    synthetic_city_text,
)
from repro.spatial import PMRQuadtree, Point, Rect, Segment
from repro.testing import (
    SCENARIO_PRESETS,
    OracleMonitor,
    ScenarioEngine,
    ScenarioSpec,
    run_differential_log,
    run_differential_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "ReproError",
    "UnknownKernelError",
    # core
    "MonitoringServer",
    "ShardedMonitoringServer",
    "shard_of",
    "QuerySpec",
    "knn",
    "range_query",
    "aggregate_knn",
    "as_query_spec",
    "MonitorBase",
    "OvhMonitor",
    "ImaMonitor",
    "GmaMonitor",
    "KnnResult",
    "UpdateBatch",
    "ObjectUpdate",
    "QueryUpdate",
    "EdgeWeightUpdate",
    "TimestepReport",
    "SearchCounters",
    "apply_batch",
    "encode_batch",
    "decode_batch",
    "restore_server",
    "expand_knn",
    "expand_knn_batch",
    "ExpansionRequest",
    "expand_knn_legacy",
    "evaluate_aggregates",
    "DedupFrontend",
    "DedupStats",
    "ALGORITHMS",
    # network
    "RoadNetwork",
    "NetworkLocation",
    "EdgeTable",
    "CSRGraph",
    "csr_snapshot",
    "SharedCSR",
    "SharedCSRHandle",
    "attach_shared_csr",
    "SequenceTable",
    "KernelSpec",
    "registered_kernels",
    "available_kernels",
    "resolve_kernel",
    "native_available",
    "city_network",
    "grid_network",
    "linear_network",
    "network_distance",
    "brute_force_knn",
    "brute_force_range",
    "brute_force_aggregate_knn",
    "load_network",
    "save_network",
    "CLOSED_EDGE_WEIGHT",
    # realism: importer, synthetic cities, rush-hour traffic
    "ImportResult",
    "ImportStats",
    "import_road_network",
    "import_ways_text",
    "CitySpec",
    "synthetic_city_text",
    "synthetic_city_network",
    "RushHourSpec",
    "RushHourModel",
    "classify_edges",
    # spatial
    "Point",
    "Rect",
    "Segment",
    "PMRQuadtree",
    # durable streaming service
    "DurableMonitoringServer",
    "EventLog",
    "StreamingService",
    "ServiceClient",
    "read_event_log",
    "load_initial_state",
    "run_fault_injection",
    # testing / verification harness
    "OracleMonitor",
    "ScenarioEngine",
    "ScenarioSpec",
    "SCENARIO_PRESETS",
    "run_differential_scenario",
    "run_differential_log",
]
