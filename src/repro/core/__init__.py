"""Core monitoring algorithms: events, search engine, OVH, IMA, GMA, server."""

from repro.core.base import MonitorBase, TimestepReport
from repro.core.dedup import DedupFrontend, DedupStats
from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
    decode_batch,
    encode_batch,
)
from repro.core.expansion import (
    ExpansionState,
    compute_influence_map,
    compute_influence_map_legacy,
    object_distance_csr,
    object_distance_via_state,
)
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.influence import InfluenceIndex
from repro.core.ovh import OvhMonitor
from repro.core.queries import (
    QuerySpec,
    aggregate_knn,
    as_query_spec,
    evaluate_aggregate,
    evaluate_aggregates,
    knn,
    range_query,
)
from repro.core.results import KnnResult, NeighborList, results_equal
from repro.core.search import (
    ExpansionRequest,
    SearchCounters,
    SearchOutcome,
    expand_knn,
    expand_knn_batch,
)
from repro.core.search_legacy import expand_knn_legacy
from repro.core.server import ALGORITHMS, MonitoringServer, restore_server
from repro.core.sharding import ShardedMonitoringServer
from repro.core.worker import shard_of

__all__ = [
    "MonitorBase",
    "TimestepReport",
    "ObjectUpdate",
    "QueryUpdate",
    "EdgeWeightUpdate",
    "UpdateBatch",
    "apply_batch",
    "encode_batch",
    "decode_batch",
    "ExpansionState",
    "compute_influence_map",
    "compute_influence_map_legacy",
    "object_distance_csr",
    "object_distance_via_state",
    "InfluenceIndex",
    "KnnResult",
    "NeighborList",
    "results_equal",
    "SearchCounters",
    "SearchOutcome",
    "expand_knn",
    "expand_knn_batch",
    "ExpansionRequest",
    "expand_knn_legacy",
    "QuerySpec",
    "knn",
    "range_query",
    "aggregate_knn",
    "as_query_spec",
    "evaluate_aggregate",
    "evaluate_aggregates",
    "DedupFrontend",
    "DedupStats",
    "OvhMonitor",
    "ImaMonitor",
    "GmaMonitor",
    "MonitoringServer",
    "ShardedMonitoringServer",
    "restore_server",
    "shard_of",
    "ALGORITHMS",
]
