"""Query-type abstraction: k-NN, fixed-radius range, and aggregate k-NN.

The paper's machinery — influence regions, expansion trees, incremental
repair — is not k-NN-specific.  This module introduces :class:`QuerySpec`,
the value that tells every monitor *what* a continuous query asks for:

* ``knn(k)`` — the classic continuous k nearest neighbors (the default;
  a plain ``int`` anywhere a spec is accepted means exactly this);
* ``range_query(radius)`` — continuous *range* monitoring: every data
  object within network distance ``radius``.  The influence region is the
  fixed-radius ball around the query, so the same edge-interval
  bookkeeping, tree pruning and expansion resumption apply verbatim with
  the termination bound pinned to ``radius`` instead of ``kNN_dist``;
* ``aggregate_knn(k, points, agg)`` — the k objects minimising an
  aggregate (``"sum"`` or ``"max"``) of the network distances from the
  query's own (movable) location plus a tuple of fixed extra points.
  Evaluated by per-point expansions merged under the aggregate function.

Specs travel everywhere a ``k`` used to: through
:class:`~repro.core.events.QueryUpdate`, the server ingestion surface, the
Section 4.5 batch normalization (a same-tick remove+add of one id
collapses into a movement carrying the new spec, and is split back into
terminate+install whenever the spec — including its *kind* — changed), and
the sharded server's worker protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import isfinite
from typing import Iterable, List, Optional, Tuple, Union

from repro.core.results import Neighbor
from repro.core.search import ExpansionRequest, expand_knn, expand_knn_batch
from repro.exceptions import InvalidQueryError
from repro.network.kernels import DEFAULT_KERNEL, KERNEL_CSR, resolve_kernel
from repro.network.graph import NetworkLocation

#: Recognised query kinds, in the order they were introduced.
QUERY_KINDS = ("knn", "range", "aggregate_knn")

#: Recognised aggregate distance functions of ``aggregate_knn``.
AGGREGATES = ("sum", "max")


@dataclass(frozen=True)
class QuerySpec:
    """What one continuous query asks for: kind plus its parameters.

    Instances are immutable and hashable, compare by value (which is what
    the Section 4.5 split-back relies on to detect a changed query), and
    pickle cleanly across the sharded server's worker boundary.  Use the
    factories — :func:`knn`, :func:`range_query`, :func:`aggregate_knn`,
    or the equivalent classmethods — rather than the raw constructor.

    Attributes:
        kind: ``"knn"``, ``"range"`` or ``"aggregate_knn"``.
        k: result size for ``knn`` / ``aggregate_knn`` (ignored by
            ``range``, where the result is every in-range object).
        radius: the fixed network-distance radius of a ``range`` query.
        points: additional *fixed* query points of an ``aggregate_knn``
            query; the query's own (movable) location is always the first
            aggregation point and is not part of the spec.
        agg: aggregate distance function, ``"sum"`` or ``"max"``.

    Example::

        spec = QuerySpec.range(25.0)
        server.add_query_at(100, x=10.0, y=20.0, k=spec)
    """

    kind: str = "knn"
    k: int = 1
    radius: float = 0.0
    points: Tuple[NetworkLocation, ...] = field(default=())
    agg: str = "sum"

    def __post_init__(self) -> None:
        if self.kind not in QUERY_KINDS:
            raise InvalidQueryError(
                f"unknown query kind {self.kind!r}; choose one of {QUERY_KINDS}"
            )
        if not isinstance(self.points, tuple):
            object.__setattr__(self, "points", tuple(self.points))
        if self.kind == "range":
            if not (isfinite(self.radius) and self.radius > 0):
                raise InvalidQueryError(
                    f"range query needs a positive finite radius, got {self.radius!r}"
                )
        elif self.k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {self.k}")
        if self.kind == "aggregate_knn":
            if self.agg not in AGGREGATES:
                raise InvalidQueryError(
                    f"unknown aggregate {self.agg!r}; choose one of {AGGREGATES}"
                )
        elif self.points:
            raise InvalidQueryError(
                f"{self.kind!r} queries take no extra points"
            )

    # ------------------------------------------------------------------
    # factories
    # ------------------------------------------------------------------
    @classmethod
    def knn(cls, k: int) -> "QuerySpec":
        """A continuous k-nearest-neighbor spec (same as passing ``k``).

        Example::

            assert QuerySpec.knn(4) == as_query_spec(4)
        """
        return cls(kind="knn", k=k)

    @classmethod
    def range(cls, radius: float) -> "QuerySpec":
        """A continuous fixed-radius range spec.

        Example::

            spec = QuerySpec.range(30.0)
        """
        return cls(kind="range", radius=radius)

    @classmethod
    def aggregate_knn(
        cls,
        k: int,
        points: Iterable[NetworkLocation] = (),
        agg: str = "sum",
    ) -> "QuerySpec":
        """A continuous aggregate k-NN spec over the location plus *points*.

        Example::

            spec = QuerySpec.aggregate_knn(2, points=(depot,), agg="max")
        """
        return cls(kind="aggregate_knn", k=k, points=tuple(points), agg=agg)

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def result_k(self) -> int:
        """The ``k`` recorded on produced results (0 for unbounded range)."""
        return 0 if self.kind == "range" else self.k

    @property
    def is_knn(self) -> bool:
        """True for the classic k-NN kind (the monitors' fully incremental path)."""
        return self.kind == "knn"

    def aggregation_points(
        self, location: NetworkLocation
    ) -> Tuple[NetworkLocation, ...]:
        """Every aggregation point: the movable *location* plus the fixed ones.

        Example::

            points = spec.aggregation_points(server_location)
        """
        return (location,) + self.points


def knn(k: int) -> QuerySpec:
    """Build a k-NN :class:`QuerySpec` (module-level factory).

    Example::

        server.add_query(100, location, k=knn(4))   # same as k=4
    """
    return QuerySpec.knn(k)


def range_query(radius: float) -> QuerySpec:
    """Build a fixed-radius range :class:`QuerySpec`.

    Example::

        server.add_query(100, location, k=range_query(25.0))
    """
    return QuerySpec.range(radius)


def aggregate_knn(
    k: int, points: Iterable[NetworkLocation] = (), agg: str = "sum"
) -> QuerySpec:
    """Build an aggregate k-NN :class:`QuerySpec`.

    Example::

        server.add_query(100, location, k=aggregate_knn(3, (depot,), "sum"))
    """
    return QuerySpec.aggregate_knn(k, points, agg)


def as_query_spec(value: Union[int, QuerySpec, None]) -> Optional[QuerySpec]:
    """Normalize a user-facing ``k`` value into a :class:`QuerySpec`.

    Plain integers mean classic k-NN (the historical API); ``None`` passes
    through (a query movement that carries no spec).  Anything else must
    already be a spec.

    Example::

        assert as_query_spec(4) == QuerySpec.knn(4)
        assert as_query_spec(None) is None
    """
    if value is None or isinstance(value, QuerySpec):
        return value
    if isinstance(value, bool) or not isinstance(value, int):
        raise InvalidQueryError(
            f"expected an int k or a QuerySpec, got {value!r}"
        )
    return QuerySpec.knn(value)


def merge_aggregate(
    per_point: List[List[Neighbor]], spec: QuerySpec
) -> Tuple[List[Neighbor], float]:
    """Merge per-point distance lists under the spec's aggregate function.

    *per_point* holds, for every aggregation point in order, the exact
    ``(object_id, distance)`` pairs of every object reachable from that
    point.  An object aggregates only when reachable from **all** points
    (an infinite leg makes both ``sum`` and ``max`` infinite); the result
    is the top-``spec.k`` under ``(aggregate distance, object id)`` and the
    k-th aggregate distance (``inf`` when fewer than k objects qualify).

    Example::

        neighbors, radius = merge_aggregate([[(1, 2.0)], [(1, 3.0)]], spec)
    """
    if not per_point:
        return [], float("inf")
    maps = [dict(pairs) for pairs in per_point]
    first = maps[0]
    use_sum = spec.agg == "sum"
    merged: List[Tuple[float, int]] = []
    for object_id, total in first.items():
        for other in maps[1:]:
            distance = other.get(object_id)
            if distance is None:
                break
            if use_sum:
                total += distance
            elif distance > total:
                total = distance
        else:
            merged.append((total, object_id))
    merged.sort()
    top = merged[: spec.k]
    radius = top[spec.k - 1][0] if len(top) >= spec.k else float("inf")
    return [(object_id, distance) for distance, object_id in top], radius


def evaluate_aggregate(
    network,
    edge_table,
    location: NetworkLocation,
    spec: QuerySpec,
    kernel: str = DEFAULT_KERNEL,
    csr=None,
    counters=None,
) -> Tuple[List[Neighbor], float]:
    """Evaluate an aggregate k-NN query via per-point expansions.

    One network expansion per aggregation point, each asked for *every*
    live object (``k =`` object count, so the expansion terminates at the
    farthest reachable object and returns exact distances for all of
    them), merged under the spec's aggregate function by
    :func:`merge_aggregate`.  ``kernel`` names any registered kernel from
    :mod:`repro.network.kernels`: batch kernels (``"dial"``, ``"native"``)
    funnel all points through one
    :func:`~repro.core.search.expand_knn_batch` call, ``"csr"`` runs the
    flat-array heap kernel per point, ``"legacy"`` the dict-walking
    reference — all produce identical results.

    Example::

        neighbors, radius = evaluate_aggregate(network, edge_table, loc, spec)
    """
    engine = resolve_kernel(kernel)
    object_count = edge_table.object_count
    if object_count == 0:
        return [], float("inf")
    points = spec.aggregation_points(location)
    if engine.batch:
        outcomes = expand_knn_batch(
            network,
            edge_table,
            [
                ExpansionRequest(k=object_count, query_location=point)
                for point in points
            ],
            counters=counters,
            csr=csr,
            kernel=engine.name,
        )
    elif engine.name == KERNEL_CSR:
        outcomes = [
            expand_knn(
                network,
                edge_table,
                object_count,
                query_location=point,
                counters=counters,
                csr=csr,
            )
            for point in points
        ]
    else:
        from repro.core.search_legacy import expand_knn_legacy

        outcomes = [
            expand_knn_legacy(
                network,
                edge_table,
                object_count,
                query_location=point,
                counters=counters,
            )
            for point in points
        ]
    return merge_aggregate([outcome.neighbors for outcome in outcomes], spec)


def evaluate_aggregates(
    network,
    edge_table,
    items: List[Tuple[NetworkLocation, QuerySpec]],
    kernel: str = DEFAULT_KERNEL,
    csr=None,
    counters=None,
) -> List[Tuple[List[Neighbor], float]]:
    """Evaluate many aggregate queries through one shared expansion batch.

    *items* is a list of ``(location, spec)`` pairs; the return value holds
    one ``(neighbors, radius)`` pair per item, in order, each identical to
    what :func:`evaluate_aggregate` returns for that item alone.  All
    aggregation points of all items are flattened into a single
    :func:`~repro.core.search.expand_knn_batch` call with ``share=True``:
    every point asks for the same ``k`` (the live object count), so points
    that coincide — the query locations of co-located tenants, or popular
    aggregation anchors repeated across queries — collapse into **one**
    physical expansion whose outcome is reused verbatim.  This extends the
    per-tick sharing the dial kernel already does (shared snapshot and
    scratch) across the csr path too, and skips redundant expansions
    entirely on both.

    Kernels that neither batch nor run the flat-array heap (i.e. the
    legacy dict engine) fall back to per-item :func:`evaluate_aggregate`
    calls.

    Example::

        evaluations = evaluate_aggregates(network, edge_table, [(loc, spec)])
        neighbors, radius = evaluations[0]
    """
    engine = resolve_kernel(kernel)
    if not items:
        return []
    object_count = edge_table.object_count
    if object_count == 0:
        return [([], float("inf")) for _ in items]
    if not engine.batch and engine.name != KERNEL_CSR:
        return [
            evaluate_aggregate(
                network,
                edge_table,
                location,
                spec,
                kernel=engine.name,
                csr=csr,
                counters=counters,
            )
            for location, spec in items
        ]
    requests: List[ExpansionRequest] = []
    spans: List[Tuple[int, int]] = []
    for location, spec in items:
        points = spec.aggregation_points(location)
        spans.append((len(requests), len(points)))
        requests.extend(
            ExpansionRequest(k=object_count, query_location=point) for point in points
        )
    outcomes = expand_knn_batch(
        network,
        edge_table,
        requests,
        counters=counters,
        csr=csr,
        kernel=engine.name,
        share=True,
    )
    return [
        merge_aggregate(
            [outcomes[start + offset].neighbors for offset in range(size)], spec
        )
        for (start, size), (_, spec) in zip(spans, items)
    ]
