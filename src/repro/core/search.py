"""Network expansion engine: the Figure-2 k-NN search, resumable.

This module implements one algorithm used everywhere in the library:

* the **initial result computation** of IMA (Figure 2 of the paper) — an
  expansion of the network around the query until the k nearest data
  objects are found, producing the expansion tree as a side effect;
* every **resumed search** of IMA's incremental maintenance — the valid
  part of an expansion tree is passed in as *pre-verified* node distances
  and the expansion continues from its frontier;
* the **candidate-seeded evaluation** of GMA — upper-bound candidates
  obtained from the active-node results of the query's sequence give a
  tight initial radius so that the expansion terminates almost immediately;
* the per-timestamp recomputation of the OVH baseline.

Correctness sketch.  The search is a multi-source Dijkstra whose sources
are the query position (seeding its edge's endpoints) and the pre-verified
nodes (whose distances the caller guarantees to be exact).  Nodes are
settled in non-decreasing distance order, so when the loop stops — the
smallest frontier key is at least the current radius — every node with
distance strictly below the final radius has been settled.  Any data object
with true distance below the final radius therefore had the last node of
its shortest path settled, at which point the object was offered its exact
distance (objects on every edge incident to a settled node are scanned).
Candidates passed in as upper bounds can only shrink the radius, never hide
a closer object, so the returned top-k is exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.expansion import ExpansionState
from repro.core.results import Neighbor, NeighborList
from repro.exceptions import InvalidQueryError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.utils.heap import IndexedMinHeap


@dataclass
class SearchCounters:
    """Abstract work counters accumulated across searches.

    Wall-clock time in Python is dominated by interpreter overhead; the
    benchmark harness therefore also reports these counters, which track the
    algorithmic work the paper's CPU-time figures measure.
    """

    searches: int = 0
    nodes_expanded: int = 0
    edges_scanned: int = 0
    objects_considered: int = 0
    heap_pushes: int = 0

    def merge(self, other: "SearchCounters") -> None:
        """Accumulate *other* into this instance."""
        self.searches += other.searches
        self.nodes_expanded += other.nodes_expanded
        self.edges_scanned += other.edges_scanned
        self.objects_considered += other.objects_considered
        self.heap_pushes += other.heap_pushes

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy (for metrics reporting)."""
        return {
            "searches": self.searches,
            "nodes_expanded": self.nodes_expanded,
            "edges_scanned": self.edges_scanned,
            "objects_considered": self.objects_considered,
            "heap_pushes": self.heap_pushes,
        }

    def reset(self) -> None:
        self.searches = 0
        self.nodes_expanded = 0
        self.edges_scanned = 0
        self.objects_considered = 0
        self.heap_pushes = 0


@dataclass
class SearchOutcome:
    """Result of one network expansion.

    Attributes:
        neighbors: the top-k ``(object_id, distance)`` pairs, sorted.
        radius: distance of the k-th neighbor (``inf`` when fewer than k).
        state: the expansion tree produced / extended by the search; the
            verified node distances are exact network distances.
    """

    neighbors: List[Neighbor]
    radius: float
    state: ExpansionState

    @property
    def object_ids(self) -> Tuple[int, ...]:
        return tuple(object_id for object_id, _ in self.neighbors)


def expand_knn(
    network: RoadNetwork,
    edge_table: EdgeTable,
    k: int,
    query_location: Optional[NetworkLocation] = None,
    source_node: Optional[int] = None,
    preverified: Optional[Mapping[int, float]] = None,
    preverified_parent: Optional[Mapping[int, Optional[int]]] = None,
    candidates: Iterable[Neighbor] = (),
    barrier_candidates: Optional[Mapping[int, Iterable[Neighbor]]] = None,
    coverage_radius: Optional[float] = None,
    excluded_objects: Optional[Set[int]] = None,
    counters: Optional[SearchCounters] = None,
) -> SearchOutcome:
    """Expand the network around a query until its k NNs are known.

    Args:
        network: the road network (current weights are used).
        edge_table: current data-object positions.
        k: number of neighbors requested (>= 1).
        query_location: the query's position on an edge.  Exactly one of
            *query_location* and *source_node* must be provided.
        source_node: alternatively, a network node acting as the query
            (used for GMA's active nodes).
        preverified: node -> exact network distance for nodes whose shortest
            paths are already known (the valid part of an expansion tree).
            The search treats them as settled and resumes from their frontier.
        preverified_parent: optional shortest-path-tree parents of the
            pre-verified nodes (kept in the returned state).
        candidates: ``(object_id, distance)`` pairs whose distances are
            upper bounds on the true network distance; they tighten the
            initial radius (GMA seeding) but can never exclude a closer
            object.
        barrier_candidates: node -> ``(object_id, distance_from_node)`` pairs
            of that node's *monitored* k-NN set (GMA's active nodes), sorted
            by distance.  When a barrier node is settled at distance ``d``,
            the candidates are offered at ``d + distance_from_node`` and the
            expansion does NOT continue past the node.  This is exact
            provided every barrier is monitored with at least ``k``
            neighbors: any object in the true top-k whose shortest path
            crosses a barrier is, by the triangle argument of Section 5,
            also in that barrier's top-k, and the first barrier on the path
            is settled at its exact distance.
        coverage_radius: IMA's resume optimisation.  The caller asserts that
            every object whose distance is at most this value is already in
            *candidates* with an exact distance; edges between two
            pre-verified nodes that lie entirely within the coverage radius
            are then not re-scanned (their objects cannot contribute
            anything new).  Edges that are only partially covered — the
            paper's *marks* — and edges of newly settled nodes are always
            scanned.
        excluded_objects: object ids to ignore entirely (used by tests and
            by what-if analyses).
        counters: optional work counters to update in place.

    Returns:
        A :class:`SearchOutcome` with the exact top-k result.

    Raises:
        InvalidQueryError: if k < 1 or no query source was provided.
    """
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    if query_location is None and source_node is None:
        raise InvalidQueryError("expand_knn needs a query_location or a source_node")
    if counters is None:
        counters = SearchCounters()
    counters.searches += 1

    excluded = excluded_objects or set()
    barriers = barrier_candidates or {}
    neighbors = NeighborList(k)
    for object_id, distance in candidates:
        if object_id not in excluded:
            neighbors.offer(object_id, distance)

    node_dist: Dict[int, float] = dict(preverified or {})
    parent: Dict[int, Optional[int]] = {
        node_id: (preverified_parent or {}).get(node_id) for node_id in node_dist
    }
    heap = IndexedMinHeap()
    tentative_parent: Dict[int, Optional[int]] = {}

    def scan_edge_objects(from_node: int, edge_id: int, from_distance: float) -> None:
        """Offer every object on *edge_id* its distance through *from_node*."""
        edge = network.edge(edge_id)
        counters.edges_scanned += 1
        for object_id, fraction in edge_table.objects_with_fractions_on(edge_id):
            if object_id in excluded:
                continue
            if from_node == edge.start:
                offset = fraction * edge.weight
            else:
                offset = (1.0 - fraction) * edge.weight
            counters.objects_considered += 1
            neighbors.offer(object_id, from_distance + offset)

    def relax(to_node: int, distance: float, via: Optional[int]) -> None:
        """Dijkstra relaxation of a frontier node."""
        if to_node in node_dist:
            return
        counters.heap_pushes += 1
        if heap.push(to_node, distance):
            tentative_parent[to_node] = via

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    if query_location is not None:
        query_edge = network.edge(query_location.edge_id)
        weight = query_edge.weight
        query_offset = query_location.offset(weight)
        # Objects on the query's own edge are reached directly along it.
        for object_id, fraction in edge_table.objects_with_fractions_on(query_edge.edge_id):
            if object_id in excluded:
                continue
            if query_edge.oneway and fraction < query_location.fraction:
                continue
            counters.objects_considered += 1
            neighbors.offer(object_id, abs(fraction - query_location.fraction) * weight)
        if query_edge.oneway:
            relax(query_edge.end, weight - query_offset, None)
        else:
            relax(query_edge.start, query_offset, None)
            relax(query_edge.end, weight - query_offset, None)

    if source_node is not None and source_node not in node_dist:
        relax(source_node, 0.0, None)

    # Resume from the pre-verified frontier: relax the settled nodes'
    # unverified neighbors and re-scan the objects of their incident edges.
    # When the caller guarantees (via coverage_radius) that every object
    # closer than that radius is already among the candidates, edges lying
    # entirely inside the covered region are skipped — only the partially
    # covered boundary edges (the paper's marks) are re-scanned.
    for settled_node, settled_distance in list(node_dist.items()):
        for edge_id, neighbor_node, weight in network.neighbors(settled_node):
            fully_covered = False
            if coverage_radius is not None:
                other_distance = node_dist.get(neighbor_node)
                if other_distance is not None:
                    farthest_point = (settled_distance + other_distance + weight) / 2.0
                    fully_covered = farthest_point <= coverage_radius + 1e-9
            if not fully_covered:
                scan_edge_objects(settled_node, edge_id, settled_distance)
            relax(neighbor_node, settled_distance + weight, settled_node)

    # ------------------------------------------------------------------
    # main Dijkstra loop (Figure 2, lines 7-23)
    # ------------------------------------------------------------------
    while heap and heap.min_key() < neighbors.radius:
        current_node, current_distance = heap.pop()
        if current_node in node_dist:
            continue
        node_dist[current_node] = current_distance
        parent[current_node] = tentative_parent.get(current_node)
        counters.nodes_expanded += 1
        if current_node in barriers:
            # Active-node barrier: merge its monitored neighbors and stop the
            # expansion here (the shared-execution core of GMA).  The list is
            # sorted by distance, so once a candidate cannot beat the current
            # radius none of the following ones can either.
            for object_id, from_node_distance in barriers[current_node]:
                total = current_distance + from_node_distance
                if total >= neighbors.radius:
                    break
                if object_id not in excluded:
                    counters.objects_considered += 1
                    neighbors.offer(object_id, total)
            continue
        for edge_id, neighbor_node, weight in network.neighbors(current_node):
            scan_edge_objects(current_node, edge_id, current_distance)
            relax(neighbor_node, current_distance + weight, current_node)

    state = ExpansionState(node_dist=node_dist, parent=parent)
    return SearchOutcome(
        neighbors=neighbors.top_k(),
        radius=neighbors.radius,
        state=state,
    )
