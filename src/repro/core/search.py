"""Network expansion engine: the Figure-2 k-NN search, resumable.

This module implements one algorithm used everywhere in the library:

* the **initial result computation** of IMA (Figure 2 of the paper) — an
  expansion of the network around the query until the k nearest data
  objects are found, producing the expansion tree as a side effect;
* every **resumed search** of IMA's incremental maintenance — the valid
  part of an expansion tree is passed in as *pre-verified* node distances
  and the expansion continues from its frontier;
* the **candidate-seeded evaluation** of GMA — upper-bound candidates
  obtained from the active-node results of the query's sequence give a
  tight initial radius so that the expansion terminates almost immediately;
* the per-timestamp recomputation of the OVH baseline.

The hot loop runs over the flat-array CSR snapshot of the network
(:mod:`repro.network.csr`): adjacency is three parallel columns indexed by
dense node ids, the frontier is a plain :mod:`heapq` binary heap of
``(distance, node_index)`` pairs with lazy deletion, and per-search state
lives in reusable flat buffers instead of dictionaries.  The original
dict-based implementation is preserved in
:mod:`repro.core.search_legacy` for differential testing and benchmarking.

Correctness sketch.  The search is a multi-source Dijkstra whose sources
are the query position (seeding its edge's endpoints) and the pre-verified
nodes (whose distances the caller guarantees to be exact).  Nodes are
settled in non-decreasing distance order, so when the loop stops — the
smallest frontier key is at least the current radius — every node with
distance strictly below the final radius has been settled.  Any data object
with true distance below the final radius therefore had the last node of
its shortest path settled, at which point the object was offered its exact
distance (objects on every edge incident to a settled node are scanned).
Candidates passed in as upper bounds can only shrink the radius, never hide
a closer object, so the returned top-k is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappop, heappush
from typing import Dict, Iterable, List, Mapping, Optional, Set, Tuple

from repro.core.expansion import ExpansionState
from repro.core.results import Neighbor
from repro.exceptions import InvalidQueryError, NodeNotFoundError
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.kernels import (
    DEFAULT_BATCH_KERNEL,
    KERNEL_CSR,
    KERNEL_DIAL,
    KERNEL_NATIVE,
)

_INF = float("inf")

#: Shared empty exclusion set — avoids allocating one per search.
_NO_EXCLUDED: frozenset = frozenset()


@dataclass
class SearchCounters:
    """Abstract work counters accumulated across searches.

    Wall-clock time in Python is dominated by interpreter overhead; the
    benchmark harness therefore also reports these counters, which track the
    algorithmic work the paper's CPU-time figures measure.

    Example::

        counters = SearchCounters()
        expand_knn(network, edge_table, k=4, query_location=loc, counters=counters)
        print(counters.snapshot())
    """

    searches: int = 0
    nodes_expanded: int = 0
    edges_scanned: int = 0
    objects_considered: int = 0
    heap_pushes: int = 0

    def merge(self, other: "SearchCounters") -> None:
        """Accumulate *other* into this instance."""
        self.searches += other.searches
        self.nodes_expanded += other.nodes_expanded
        self.edges_scanned += other.edges_scanned
        self.objects_considered += other.objects_considered
        self.heap_pushes += other.heap_pushes

    def snapshot(self) -> Dict[str, int]:
        """Return a plain-dict copy (for metrics reporting)."""
        return {
            "searches": self.searches,
            "nodes_expanded": self.nodes_expanded,
            "edges_scanned": self.edges_scanned,
            "objects_considered": self.objects_considered,
            "heap_pushes": self.heap_pushes,
        }

    def reset(self) -> None:
        self.searches = 0
        self.nodes_expanded = 0
        self.edges_scanned = 0
        self.objects_considered = 0
        self.heap_pushes = 0


@dataclass
class SearchOutcome:
    """Result of one network expansion.

    Attributes:
        neighbors: the top-k ``(object_id, distance)`` pairs, sorted.
        radius: distance of the k-th neighbor (``inf`` when fewer than k).
        state: the expansion tree produced / extended by the search; the
            verified node distances are exact network distances.
    """

    neighbors: List[Neighbor]
    radius: float
    state: ExpansionState

    @property
    def object_ids(self) -> Tuple[int, ...]:
        return tuple(object_id for object_id, _ in self.neighbors)


@dataclass
class ExpansionRequest:
    """One expansion of a batched :func:`expand_knn_batch` call.

    Fields mirror the keyword arguments of :func:`expand_knn` one-to-one;
    see its docstring for the semantics of each.  Monitors collect one
    request per query they need to (re)compute in a tick and flush the
    whole batch through a single kernel call.

    Example::

        request = ExpansionRequest(k=4, query_location=location)
        outcome = expand_knn_batch(network, edge_table, [request])[0]
    """

    k: int
    query_location: Optional[NetworkLocation] = None
    source_node: Optional[int] = None
    preverified: Optional[Mapping[int, float]] = None
    preverified_parent: Optional[Mapping[int, Optional[int]]] = None
    candidates: Iterable[Neighbor] = ()
    barrier_candidates: Optional[Mapping[int, Iterable[Neighbor]]] = None
    coverage_radius: Optional[float] = None
    excluded_objects: Optional[Set[int]] = None
    fixed_radius: Optional[float] = None
    seed_nodes: Optional[Iterable[Tuple[int, float]]] = None


def _share_key(request: ExpansionRequest) -> Optional[tuple]:
    """Key under which *request* may share another request's expansion.

    Only *fresh* location-rooted expansions are shareable: a request that
    resumes a tree (``preverified``), seeds candidates, uses barriers or a
    coverage radius, or is rooted at a node carries per-query state that a
    shared run cannot reproduce, so those return ``None`` (run privately).
    Two shareable requests share when they sit at the **same** snapped
    location, run the same search kind (k-NN vs fixed-radius range) and
    exclude the same objects — the settled-distance prefix of the larger
    search then contains the smaller search's entire answer.
    """
    if (
        request.query_location is None
        or request.source_node is not None
        or request.preverified
        or request.preverified_parent
        or request.barrier_candidates
        or request.coverage_radius is not None
        or request.seed_nodes
        or bool(request.candidates)
    ):
        return None
    excluded = (
        frozenset(request.excluded_objects)
        if request.excluded_objects
        else _NO_EXCLUDED
    )
    return (
        request.query_location.edge_id,
        request.query_location.fraction,
        request.fixed_radius is not None,
        excluded,
    )


def _share_bound(request: ExpansionRequest) -> float:
    """Ordering bound of a shareable request: radius for range, k for k-NN."""
    if request.fixed_radius is not None:
        return request.fixed_radius
    return float(request.k)


def _derive_outcome(source: SearchOutcome, request: ExpansionRequest) -> SearchOutcome:
    """Derive *request*'s outcome from a representative's wider expansion.

    The representative ran the same search from the same location with a
    bound at least as large (more neighbors for k-NN, a larger radius for
    range), so its sorted neighbor list is a superset prefix of the derived
    answer: truncating to ``k`` (or filtering to the smaller radius) yields
    exactly what a private expansion would have returned, value for value.
    The expansion state is a *copy* of the representative's tree — a
    superset of the private tree with identical (exact) distances, safe for
    any caller that treats verified distances as upper-bounded truth, and
    copied because IMA mutates outcome states in place.
    """
    state = ExpansionState(
        node_dist=dict(source.state.node_dist), parent=dict(source.state.parent)
    )
    if request.fixed_radius is not None:
        neighbors = [
            neighbor for neighbor in source.neighbors if neighbor[1] <= request.fixed_radius
        ]
        return SearchOutcome(
            neighbors=neighbors, radius=request.fixed_radius, state=state
        )
    neighbors = list(source.neighbors[: request.k])
    radius = neighbors[request.k - 1][1] if len(neighbors) == request.k else _INF
    return SearchOutcome(neighbors=neighbors, radius=radius, state=state)


def expand_knn_batch(
    network: RoadNetwork,
    edge_table: EdgeTable,
    requests: List[ExpansionRequest],
    counters: Optional[SearchCounters] = None,
    csr: Optional[CSRGraph] = None,
    kernel: str = DEFAULT_BATCH_KERNEL,
    share: bool = False,
) -> List[SearchOutcome]:
    """Run a batch of expansions through one shared-scratch kernel call.

    With ``kernel="dial"`` (default) the batch runs on the bucket-queue
    engine of :mod:`repro.network.dial` — one snapshot refresh and one
    scratch acquisition for the whole batch, Dial bucket frontiers instead
    of binary heaps, and an exact per-search fallback to the heap path
    whenever quantization cannot reproduce its settle order.
    ``kernel="native"`` serves the batch through the compiled settle loop
    of :mod:`repro.network.native` (transparently falling back to the dial
    engine when no compiled backend is available).  With ``kernel="csr"``
    each request is served by a plain :func:`expand_knn` call over the
    shared snapshot (the reference used by the differential tests).
    Outcomes are byte-identical across the kernels and are returned in
    request order; see :mod:`repro.network.kernels` for the registry.

    With ``share=True`` the batch first groups *fresh* location-rooted
    requests (no resume state, candidates, barriers or coverage radius) by
    snapped location, search kind and exclusion set; each group runs **one**
    physical expansion — the member with the largest bound (max ``k`` for
    k-NN, max ``fixed_radius`` for range) — and the other members' outcomes
    are derived from its settled-distance prefix by truncation/filtering
    (see :func:`_derive_outcome` for why this is exact).  Work counters
    reflect only the physical expansions, which is how the shared-expansion
    savings are measured.  Defaults to ``False`` so existing callers keep
    per-request counters byte-identical.

    Example::

        requests = [ExpansionRequest(k=4, query_location=loc) for loc in locations]
        outcomes = expand_knn_batch(network, edge_table, requests, share=True)
    """
    if csr is None:
        csr = csr_snapshot(network)
    if share and len(requests) > 1:
        groups: Dict[tuple, List[int]] = {}
        for index, request in enumerate(requests):
            key = _share_key(request)
            if key is not None:
                groups.setdefault(key, []).append(index)
        derived_from: Dict[int, int] = {}
        for members in groups.values():
            if len(members) < 2:
                continue
            representative = members[0]
            for index in members[1:]:
                if _share_bound(requests[index]) > _share_bound(
                    requests[representative]
                ):
                    representative = index
            for index in members:
                if index != representative:
                    derived_from[index] = representative
        if derived_from:
            physical = [
                index for index in range(len(requests)) if index not in derived_from
            ]
            outcomes = expand_knn_batch(
                network,
                edge_table,
                [requests[index] for index in physical],
                counters=counters,
                csr=csr,
                kernel=kernel,
            )
            by_index = dict(zip(physical, outcomes))
            return [
                _derive_outcome(by_index[derived_from[index]], request)
                if index in derived_from
                else by_index[index]
                for index, request in enumerate(requests)
            ]
    if kernel in (KERNEL_NATIVE, KERNEL_DIAL):
        # Frontier-continuation requests (seed_nodes) are a coordinator-side
        # shape the bucket/compiled engines do not serve; route them through
        # the reference heap path and the rest through the kernel, keeping
        # request order.
        seeded = [i for i, request in enumerate(requests) if request.seed_nodes]
        plain = [i for i in range(len(requests)) if i not in set(seeded)]
        if seeded and plain:
            by_index: Dict[int, SearchOutcome] = {}
            kernel_outcomes = expand_knn_batch(
                network,
                edge_table,
                [requests[i] for i in plain],
                counters=counters,
                csr=csr,
                kernel=kernel,
            )
            by_index.update(zip(plain, kernel_outcomes))
            for i in seeded:
                by_index[i] = expand_knn_batch(
                    network,
                    edge_table,
                    [requests[i]],
                    counters=counters,
                    csr=csr,
                    kernel=KERNEL_CSR,
                )[0]
            return [by_index[i] for i in range(len(requests))]
        if seeded:
            pass  # all seeded: fall through to the reference path below
        elif kernel == KERNEL_NATIVE:
            from repro.network.native import native_expand_batch

            return native_expand_batch(
                network, edge_table, requests, csr=csr, counters=counters
            )
        else:
            from repro.network.dial import dial_expand_batch

            return dial_expand_batch(
                network, edge_table, requests, csr=csr, counters=counters
            )
    return [
        expand_knn(
            network,
            edge_table,
            request.k,
            query_location=request.query_location,
            source_node=request.source_node,
            preverified=request.preverified,
            preverified_parent=request.preverified_parent,
            candidates=request.candidates,
            barrier_candidates=request.barrier_candidates,
            coverage_radius=request.coverage_radius,
            excluded_objects=request.excluded_objects,
            counters=counters,
            fixed_radius=request.fixed_radius,
            csr=csr,
            seed_nodes=request.seed_nodes,
        )
        for request in requests
    ]


def expand_knn(
    network: RoadNetwork,
    edge_table: EdgeTable,
    k: int,
    query_location: Optional[NetworkLocation] = None,
    source_node: Optional[int] = None,
    preverified: Optional[Mapping[int, float]] = None,
    preverified_parent: Optional[Mapping[int, Optional[int]]] = None,
    candidates: Iterable[Neighbor] = (),
    barrier_candidates: Optional[Mapping[int, Iterable[Neighbor]]] = None,
    coverage_radius: Optional[float] = None,
    excluded_objects: Optional[Set[int]] = None,
    counters: Optional[SearchCounters] = None,
    csr: Optional[CSRGraph] = None,
    fixed_radius: Optional[float] = None,
    seed_nodes: Optional[Iterable[Tuple[int, float]]] = None,
) -> SearchOutcome:
    """Expand the network around a query until its k NNs are known.

    Args:
        network: the road network (current weights are used).
        edge_table: current data-object positions.
        k: number of neighbors requested (>= 1).
        query_location: the query's position on an edge.  Exactly one of
            *query_location* and *source_node* must be provided.
        source_node: alternatively, a network node acting as the query
            (used for GMA's active nodes).
        preverified: node -> exact network distance for nodes whose shortest
            paths are already known (the valid part of an expansion tree).
            The search treats them as settled and resumes from their frontier.
        preverified_parent: optional shortest-path-tree parents of the
            pre-verified nodes (kept in the returned state).
        candidates: ``(object_id, distance)`` pairs whose distances are
            upper bounds on the true network distance; they tighten the
            initial radius (GMA seeding) but can never exclude a closer
            object.
        barrier_candidates: node -> ``(object_id, distance_from_node)`` pairs
            of that node's *monitored* k-NN set (GMA's active nodes), sorted
            by distance.  When a barrier node is settled at distance ``d``,
            the candidates are offered at ``d + distance_from_node`` and the
            expansion does NOT continue past the node.  This is exact
            provided every barrier is monitored with at least ``k``
            neighbors: any object in the true top-k whose shortest path
            crosses a barrier is, by the triangle argument of Section 5,
            also in that barrier's top-k, and the first barrier on the path
            is settled at its exact distance.
        coverage_radius: IMA's resume optimisation.  The caller asserts that
            every object whose distance is at most this value is already in
            *candidates* with an exact distance; edges between two
            pre-verified nodes that lie entirely within the coverage radius
            are then not re-scanned (their objects cannot contribute
            anything new).  Edges that are only partially covered — the
            paper's *marks* — and edges of newly settled nodes are always
            scanned.
        excluded_objects: object ids to ignore entirely (used by tests and
            by what-if analyses).
        counters: optional work counters to update in place.
        csr: an already-refreshed CSR snapshot of *network*.  Batch
            processors pass the snapshot they acquired once per timestamp so
            that the per-search staleness check is skipped; when omitted the
            cached snapshot is looked up (and refreshed) per call.
        fixed_radius: run a fixed-radius *range* search instead of a k-NN
            one: the termination bound is pinned to this value (it never
            shrinks with the candidates), nodes at distance exactly the
            radius are still settled, and the outcome holds **every** object
            within the radius sorted by ``(distance, object id)`` with
            ``radius`` set to this value.  ``k`` is ignored (pass 1).  All
            resume machinery (``preverified``, ``candidates``,
            ``coverage_radius``) composes unchanged, which is what lets IMA
            maintain range queries with the same tree repair it uses for
            k-NN.
        seed_nodes: ``(node_id, distance)`` pairs pushed as additional root
            seeds — a *frontier continuation*.  Each pair asserts that the
            node is reachable from the (possibly remote) query at the given
            distance; the expansion relaxes them exactly like the query
            edge's endpoints.  This is the cross-shard resume shape of the
            graph-partitioned server: a search that spilled over a partition
            boundary restarts in the neighboring shard from its halo
            frontier.  May be the only source (no ``query_location`` /
            ``source_node``), in which case no on-edge query offers happen.

    Returns:
        A :class:`SearchOutcome` with the exact top-k result.

    Raises:
        InvalidQueryError: if k < 1 or no query source was provided.

    Example::

        outcome = expand_knn(network, edge_table, k=4, query_location=loc)
        print(outcome.neighbors, outcome.radius)
    """
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    if query_location is None and source_node is None and not seed_nodes:
        raise InvalidQueryError(
            "expand_knn needs a query_location, a source_node or seed_nodes"
        )
    if counters is None:
        counters = SearchCounters()
    counters.searches += 1

    excluded = excluded_objects or _NO_EXCLUDED
    barriers = barrier_candidates or {}
    # Candidate bookkeeping is inlined as plain dict operations: ``cand``
    # maps object id -> best offered distance, ``radius`` caches the k-th
    # smallest distance (the paper's ``q.kNN_dist``) and is recomputed —
    # a keyless C-level sort over the values — only when an offer lands
    # strictly below it.
    cand: Dict[int, float] = {}
    cand_get = cand.get
    for object_id, distance in candidates:
        if object_id not in excluded:
            previous = cand_get(object_id)
            if previous is None or distance < previous:
                cand[object_id] = distance
    if fixed_radius is not None:
        # Range search: the bound is pinned — seeded candidates cannot
        # shrink it and offers never dirty it (the recompute sites below are
        # all guarded), so the loop settles everything within the radius.
        radius = fixed_radius
    else:
        radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF

    if csr is None:
        csr = csr_snapshot(network)
    indptr = csr.indptr
    adj_node = csr.adj_node
    adj_eid = csr.adj_eid
    adj_weight = csr.adj_weight
    adj_forward = csr.adj_forward
    node_index = csr.node_index
    node_ids = csr.node_ids
    fractions_of = edge_table.edge_object_fractions
    fraction_cache_get = edge_table.fraction_cache.get

    scratch = csr.acquire_scratch()
    best = scratch.best
    tentative = scratch.tentative
    settled = scratch.settled
    tparent = scratch.tentative_parent
    touched: List[int] = []
    heap: List[Tuple[float, int]] = []
    settled_new: List[int] = []

    # Barrier node ids -> dense indices (barriers outside the network never
    # settle, exactly as in the legacy implementation).
    barrier_by_idx: Dict[int, Iterable[Neighbor]] = {}
    if barriers:
        for node_id, barrier_list in barriers.items():
            idx = node_index.get(node_id)
            if idx is not None:
                barrier_by_idx[idx] = barrier_list

    edges_scanned = 0
    objects_considered = 0
    heap_pushes = 0
    nodes_expanded = 0
    radius_dirty = False
    # Root seeds relaxed with no parent: the query edge's endpoints and/or
    # the source node, collected first and pushed in one inlined loop.
    seeds: List[Tuple[int, float]] = []

    try:
        # --------------------------------------------------------------
        # seeding
        # --------------------------------------------------------------
        pre_entries: List[Tuple[int, float]] = []
        if preverified:
            for node_id, distance in preverified.items():
                idx = node_index.get(node_id)
                if idx is None:
                    raise NodeNotFoundError(node_id)
                settled[idx] = 1
                best[idx] = distance
                touched.append(idx)
                pre_entries.append((idx, distance))

        if query_location is not None:
            edge_pos = csr.index_of_edge(query_location.edge_id)
            weight = csr.edge_weight[edge_pos]
            query_fraction = query_location.fraction
            query_offset = query_fraction * weight
            oneway = csr.edge_oneway[edge_pos]
            # Objects on the query's own edge are reached directly along it.
            pairs = fractions_of(query_location.edge_id)
            if pairs:
                if excluded:
                    pairs = [pair for pair in pairs if pair[0] not in excluded]
                if oneway:
                    pairs = [pair for pair in pairs if pair[1] >= query_fraction]
                objects_considered += len(pairs)
                for object_id, fraction in pairs:
                    total = (fraction - query_fraction) * weight
                    if total < 0.0:
                        total = -total
                    # An offer strictly above the current radius can never
                    # reach the final top-k (the radius only shrinks and the
                    # k candidates below it never worsen), so skip it.
                    if total > radius:
                        continue
                    previous = cand_get(object_id)
                    if previous is None or total < previous:
                        cand[object_id] = total
                        if total < radius:
                            radius_dirty = True
            if oneway:
                seeds.append((csr.edge_end[edge_pos], weight - query_offset))
            else:
                seeds.append((csr.edge_start[edge_pos], query_offset))
                seeds.append((csr.edge_end[edge_pos], weight - query_offset))

        if source_node is not None:
            seeds.append((csr.index_of_node(source_node), 0.0))

        if seed_nodes:
            for node_id, distance in seed_nodes:
                idx = node_index.get(node_id)
                if idx is None:
                    raise NodeNotFoundError(node_id)
                seeds.append((idx, distance))

        for v, nd in seeds:
            if not settled[v]:
                heap_pushes += 1
                if nd < tentative[v]:
                    if tentative[v] == _INF:
                        touched.append(v)
                    tentative[v] = nd
                    tparent[v] = -1
                    heappush(heap, (nd, v))

        # Resume from the pre-verified frontier: relax the settled nodes'
        # unverified neighbors and re-scan the objects of their incident
        # edges.  When the caller guarantees (via coverage_radius) that every
        # object closer than that radius is already among the candidates,
        # edges lying entirely inside the covered region are skipped — only
        # the partially covered boundary edges (the paper's marks) are
        # re-scanned.
        if pre_entries:
            for u, settled_distance in pre_entries:
                for slot in range(indptr[u], indptr[u + 1]):
                    w = adj_weight[slot]
                    v = adj_node[slot]
                    fully_covered = False
                    if coverage_radius is not None and settled[v]:
                        farthest = (settled_distance + best[v] + w) / 2.0
                        fully_covered = farthest <= coverage_radius + 1e-9
                    if not fully_covered:
                        edges_scanned += 1
                        eid = adj_eid[slot]
                        pairs = fraction_cache_get(eid)
                        if pairs is None:
                            pairs = fractions_of(eid)
                        if pairs:
                            if excluded:
                                pairs = [
                                    pair for pair in pairs if pair[0] not in excluded
                                ]
                            objects_considered += len(pairs)
                            if adj_forward[slot]:
                                for object_id, fraction in pairs:
                                    total = settled_distance + fraction * w
                                    if total > radius:
                                        continue  # can never reach the top-k
                                    previous = cand_get(object_id)
                                    if previous is None or total < previous:
                                        cand[object_id] = total
                                        if total < radius:
                                            radius_dirty = True
                            else:
                                for object_id, fraction in pairs:
                                    total = settled_distance + (1.0 - fraction) * w
                                    if total > radius:
                                        continue  # can never reach the top-k
                                    previous = cand_get(object_id)
                                    if previous is None or total < previous:
                                        cand[object_id] = total
                                        if total < radius:
                                            radius_dirty = True
                    if not settled[v]:
                        heap_pushes += 1
                        nd = settled_distance + w
                        if nd < tentative[v]:
                            if tentative[v] == _INF:
                                touched.append(v)
                            tentative[v] = nd
                            tparent[v] = u
                            heappush(heap, (nd, v))

        # --------------------------------------------------------------
        # main Dijkstra loop (Figure 2, lines 7-23)
        # --------------------------------------------------------------
        while heap:
            d, u = heappop(heap)
            if settled[u] or d > tentative[u]:
                continue
            if radius_dirty:
                if fixed_radius is None:
                    radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF
                radius_dirty = False
            if d >= radius and (fixed_radius is None or d > radius):
                # k-NN stops at the radius; a range search is inclusive, so
                # nodes at distance exactly the radius still settle.
                break
            settled[u] = 1
            best[u] = d
            settled_new.append(u)
            nodes_expanded += 1
            barrier = barrier_by_idx.get(u)
            if barrier is not None:
                # Active-node barrier: merge its monitored neighbors and stop
                # the expansion here (the shared-execution core of GMA).  The
                # list is sorted by distance, so once a candidate cannot beat
                # the current radius none of the following ones can either.
                for object_id, from_node_distance in barrier:
                    if radius_dirty:
                        if fixed_radius is None:
                            radius = (
                                sorted(cand.values())[k - 1]
                                if len(cand) >= k
                                else _INF
                            )
                        radius_dirty = False
                    total = d + from_node_distance
                    if total >= radius and (fixed_radius is None or total > radius):
                        break
                    if object_id not in excluded:
                        objects_considered += 1
                        previous = cand_get(object_id)
                        if previous is None or total < previous:
                            cand[object_id] = total
                            radius_dirty = True
                continue
            for slot in range(indptr[u], indptr[u + 1]):
                w = adj_weight[slot]
                edges_scanned += 1
                eid = adj_eid[slot]
                pairs = fraction_cache_get(eid)
                if pairs is None:
                    pairs = fractions_of(eid)
                if pairs:
                    if excluded:
                        pairs = [pair for pair in pairs if pair[0] not in excluded]
                    objects_considered += len(pairs)
                    if adj_forward[slot]:
                        for object_id, fraction in pairs:
                            total = d + fraction * w
                            if total > radius:
                                continue  # can never reach the top-k
                            previous = cand_get(object_id)
                            if previous is None or total < previous:
                                cand[object_id] = total
                                if total < radius:
                                    radius_dirty = True
                    else:
                        for object_id, fraction in pairs:
                            total = d + (1.0 - fraction) * w
                            if total > radius:
                                continue  # can never reach the top-k
                            previous = cand_get(object_id)
                            if previous is None or total < previous:
                                cand[object_id] = total
                                if total < radius:
                                    radius_dirty = True
                v = adj_node[slot]
                if not settled[v]:
                    heap_pushes += 1
                    nd = d + w
                    if nd < tentative[v]:
                        if tentative[v] == _INF:
                            touched.append(v)
                        tentative[v] = nd
                        tparent[v] = u
                        heappush(heap, (nd, v))

        # --------------------------------------------------------------
        # result assembly
        # --------------------------------------------------------------
        node_dist: Dict[int, float] = dict(preverified) if preverified else {}
        if preverified_parent:
            parent: Dict[int, Optional[int]] = {
                node_id: preverified_parent.get(node_id) for node_id in node_dist
            }
        else:
            parent = dict.fromkeys(node_dist)
        for u in settled_new:
            node_id = node_ids[u]
            node_dist[node_id] = best[u]
            via = tparent[u]
            parent[node_id] = node_ids[via] if via >= 0 else None
    finally:
        scratch.release(touched)

    counters.nodes_expanded += nodes_expanded
    counters.edges_scanned += edges_scanned
    counters.objects_considered += objects_considered
    counters.heap_pushes += heap_pushes

    if fixed_radius is None:
        if radius_dirty:
            radius = sorted(cand.values())[k - 1] if len(cand) >= k else _INF
        # Sort (distance, id) tuples so ties break by object id, matching
        # NeighborList.top_k().
        top = sorted(zip(cand.values(), cand.keys()))[:k]
    else:
        # Range result: every in-radius candidate, sorted like top_k().
        # Seeded candidates that stayed upper bounds beyond the radius are
        # dropped (their exact distances, if in range, were re-offered).
        radius = fixed_radius
        top = sorted(
            (distance, object_id)
            for object_id, distance in cand.items()
            if distance <= fixed_radius
        )
    state = ExpansionState(node_dist=node_dist, parent=parent)
    return SearchOutcome(
        neighbors=[(oid, d) for d, oid in top],
        radius=radius,
        state=state,
    )
