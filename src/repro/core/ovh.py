"""OVH — the overhaul baseline: recompute every query at every timestamp.

The paper's benchmark competitor (Section 6): at every timestamp each
registered query is re-evaluated from scratch, regardless of whether any
update could have affected it — the Figure-2 expansion for k-NN queries, a
fixed-radius expansion for range queries, and per-point expansions merged
under the aggregate distance function for aggregate k-NN queries.  OVH is
trivially correct, which also makes it the reference the differential tests
compare IMA and GMA against.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.core.base import MonitorBase
from repro.core.events import UpdateBatch
from repro.core.queries import QuerySpec, evaluate_aggregate
from repro.core.results import KnnResult, Neighbor
from repro.core.search import (
    ExpansionRequest,
    SearchCounters,
    expand_knn,
    expand_knn_batch,
)
from repro.core.search_legacy import expand_knn_legacy
from repro.network.kernels import DEFAULT_KERNEL, KERNEL_LEGACY, resolve_kernel
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


class OvhMonitor(MonitorBase):
    """Recompute-from-scratch continuous monitoring (all query types).

    Example::

        monitor = OvhMonitor(network, edge_table)
        monitor.register_query(1, location, k=4)
        monitor.process_batch(batch)      # recomputes every query
    """

    name = "OVH"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters: Optional[SearchCounters] = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        super().__init__(network, edge_table, counters)
        spec = resolve_kernel(kernel)
        self._kernel = spec.name
        self._use_csr = spec.name != KERNEL_LEGACY
        self._use_batch = spec.batch

    @property
    def kernel(self) -> str:
        """This monitor's registry kernel name (see :mod:`repro.network.kernels`)."""
        return self._kernel

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        neighbors, radius = self._evaluate(location, spec)
        return KnnResult(
            query_id=query_id,
            k=spec.result_k,
            neighbors=tuple(neighbors),
            radius=radius,
        )

    def _remove_query(self, query_id: int) -> None:
        # OVH keeps no per-query state beyond the result handled by the base.
        return None

    def _process(self, batch: UpdateBatch) -> Set[int]:
        changed: Set[int] = set()
        csr = csr_snapshot(self._network) if self._use_csr else None
        if self._use_batch:
            # The whole timestamp's expansions as one batched kernel call
            # (aggregate queries batch their per-point expansions inside
            # _evaluate, over the same snapshot).
            expansion_ids = [
                query_id
                for query_id, spec in self._query_spec.items()
                if spec.kind != "aggregate_knn"
            ]
            outcomes = expand_knn_batch(
                self._network,
                self._edge_table,
                [self._request_for(query_id) for query_id in expansion_ids],
                counters=self._counters,
                csr=csr,
                kernel=self._kernel,
            )
            for query_id, outcome in zip(expansion_ids, outcomes):
                if self._store_result(query_id, outcome.neighbors, outcome.radius):
                    changed.add(query_id)
            for query_id, spec in self._query_spec.items():
                if spec.kind != "aggregate_knn":
                    continue
                neighbors, radius = self._evaluate(
                    self._query_location[query_id], spec, csr=csr
                )
                if self._store_result(query_id, neighbors, radius):
                    changed.add(query_id)
            return changed
        for query_id in list(self._query_spec):
            neighbors, radius = self._evaluate(
                self._query_location[query_id], self._query_spec[query_id], csr=csr
            )
            if self._store_result(query_id, neighbors, radius):
                changed.add(query_id)
        return changed

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _request_for(self, query_id: int) -> ExpansionRequest:
        """The batched-kernel request of one k-NN or range query."""
        spec = self._query_spec[query_id]
        return ExpansionRequest(
            k=spec.k,
            query_location=self._query_location[query_id],
            fixed_radius=spec.radius if spec.kind == "range" else None,
        )

    def _evaluate(
        self, location: NetworkLocation, spec: QuerySpec, csr: Optional[CSRGraph] = None
    ) -> Tuple[List[Neighbor], float]:
        """One from-scratch evaluation, dispatched on query kind and kernel."""
        if spec.kind == "aggregate_knn":
            return evaluate_aggregate(
                self._network,
                self._edge_table,
                location,
                spec,
                kernel=self._kernel,
                csr=csr,
                counters=self._counters,
            )
        fixed_radius = spec.radius if spec.kind == "range" else None
        if self._use_batch:
            [outcome] = expand_knn_batch(
                self._network,
                self._edge_table,
                [
                    ExpansionRequest(
                        k=spec.k, query_location=location, fixed_radius=fixed_radius
                    )
                ],
                counters=self._counters,
                csr=csr,
                kernel=self._kernel,
            )
        elif self._use_csr:
            outcome = expand_knn(
                self._network,
                self._edge_table,
                spec.k,
                query_location=location,
                counters=self._counters,
                csr=csr,
                fixed_radius=fixed_radius,
            )
        else:
            outcome = expand_knn_legacy(
                self._network,
                self._edge_table,
                spec.k,
                query_location=location,
                counters=self._counters,
                fixed_radius=fixed_radius,
            )
        return outcome.neighbors, outcome.radius
