"""OVH — the overhaul baseline: recompute every query at every timestamp.

The paper's benchmark competitor (Section 6): at every timestamp each
registered query is re-evaluated from scratch with the Figure-2 expansion,
regardless of whether any update could have affected it.  OVH is trivially
correct, which also makes it the reference the differential tests compare
IMA and GMA against.
"""

from __future__ import annotations

from functools import partial
from typing import Optional, Set

from repro.core.base import MonitorBase
from repro.core.events import UpdateBatch
from repro.core.ima import KERNELS
from repro.core.results import KnnResult
from repro.core.search import (
    ExpansionRequest,
    SearchCounters,
    expand_knn,
    expand_knn_batch,
)
from repro.core.search_legacy import expand_knn_legacy
from repro.exceptions import MonitoringError
from repro.network.csr import csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


class OvhMonitor(MonitorBase):
    """Recompute-from-scratch continuous k-NN monitoring.

    Example::

        monitor = OvhMonitor(network, edge_table)
        monitor.register_query(1, location, k=4)
        monitor.process_batch(batch)      # recomputes every query
    """

    name = "OVH"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters: Optional[SearchCounters] = None,
        kernel: str = "csr",
    ) -> None:
        super().__init__(network, edge_table, counters)
        if kernel not in KERNELS:
            raise MonitoringError(
                f"unknown kernel {kernel!r}; choose one of {KERNELS}"
            )
        self._kernel = kernel
        self._use_csr = kernel != "legacy"
        self._use_dial = kernel == "dial"

    @property
    def kernel(self) -> str:
        """The search kernel this monitor runs on ("csr", "dial" or "legacy")."""
        return self._kernel

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(self, query_id: int, location: NetworkLocation, k: int) -> KnnResult:
        if self._use_dial:
            [outcome] = expand_knn_batch(
                self._network,
                self._edge_table,
                [ExpansionRequest(k=k, query_location=location)],
                counters=self._counters,
            )
        else:
            search = expand_knn if self._use_csr else expand_knn_legacy
            outcome = search(
                self._network,
                self._edge_table,
                k,
                query_location=location,
                counters=self._counters,
            )
        return KnnResult(
            query_id=query_id,
            k=k,
            neighbors=tuple(outcome.neighbors),
            radius=outcome.radius,
        )

    def _remove_query(self, query_id: int) -> None:
        # OVH keeps no per-query state beyond the result handled by the base.
        return None

    def _process(self, batch: UpdateBatch) -> Set[int]:
        changed: Set[int] = set()
        if self._use_dial:
            # The whole timestamp's recomputation as one batched kernel call.
            query_ids = list(self._query_k)
            outcomes = expand_knn_batch(
                self._network,
                self._edge_table,
                [
                    ExpansionRequest(
                        k=self._query_k[query_id],
                        query_location=self._query_location[query_id],
                    )
                    for query_id in query_ids
                ],
                counters=self._counters,
                csr=csr_snapshot(self._network),
            )
            for query_id, outcome in zip(query_ids, outcomes):
                if self._store_result(query_id, outcome.neighbors, outcome.radius):
                    changed.add(query_id)
            return changed
        if self._use_csr:
            # One snapshot refresh for the whole timestamp's recomputation.
            search = partial(expand_knn, csr=csr_snapshot(self._network))
        else:
            search = expand_knn_legacy
        for query_id in list(self._query_k):
            outcome = search(
                self._network,
                self._edge_table,
                self._query_k[query_id],
                query_location=self._query_location[query_id],
                counters=self._counters,
            )
            if self._store_result(query_id, outcome.neighbors, outcome.radius):
                changed.add(query_id)
        return changed
