"""OVH — the overhaul baseline: recompute every query at every timestamp.

The paper's benchmark competitor (Section 6): at every timestamp each
registered query is re-evaluated from scratch with the Figure-2 expansion,
regardless of whether any update could have affected it.  OVH is trivially
correct, which also makes it the reference the differential tests compare
IMA and GMA against.
"""

from __future__ import annotations

from typing import Set

from repro.core.base import MonitorBase
from repro.core.events import UpdateBatch
from repro.core.results import KnnResult
from repro.core.search import expand_knn
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


class OvhMonitor(MonitorBase):
    """Recompute-from-scratch continuous k-NN monitoring."""

    name = "OVH"

    def __init__(self, network: RoadNetwork, edge_table: EdgeTable) -> None:
        super().__init__(network, edge_table)

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(self, query_id: int, location: NetworkLocation, k: int) -> KnnResult:
        outcome = expand_knn(
            self._network,
            self._edge_table,
            k,
            query_location=location,
            counters=self._counters,
        )
        return KnnResult(
            query_id=query_id,
            k=k,
            neighbors=tuple(outcome.neighbors),
            radius=outcome.radius,
        )

    def _remove_query(self, query_id: int) -> None:
        # OVH keeps no per-query state beyond the result handled by the base.
        return None

    def _process(self, batch: UpdateBatch) -> Set[int]:
        changed: Set[int] = set()
        for query_id in list(self._query_k):
            location = self._query_location[query_id]
            k = self._query_k[query_id]
            outcome = expand_knn(
                self._network,
                self._edge_table,
                k,
                query_location=location,
                counters=self._counters,
            )
            if self._store_result(query_id, outcome.neighbors, outcome.radius):
                changed.add(query_id)
        return changed
