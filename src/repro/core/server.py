"""Monitoring-server facade: the user-facing API of the library.

The :class:`MonitoringServer` plays the role of the central server of the
paper: it owns the road network, the edge table and one monitoring algorithm
(OVH, IMA, or GMA), accepts the three kinds of updates — by network location
or by raw workspace coordinates, which are snapped to the nearest edge
through the PMR quadtree — buffers them, and processes one *timestamp* per
call to :meth:`tick`.

Example::

    from repro import MonitoringServer, city_network

    network = city_network(400, seed=7)
    server = MonitoringServer(network, algorithm="gma")
    server.add_object_at(1, x=120.0, y=80.0)
    server.add_query_at(100, x=100.0, y=100.0, k=2)
    server.move_object_at(1, x=140.0, y=90.0)
    report = server.tick()
    print(server.result_of(100).neighbors)
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Union

from repro.core.base import MonitorBase, TimestepReport
from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.results import KnnResult
from repro.exceptions import (
    DuplicateObjectError,
    DuplicateQueryError,
    MonitoringError,
    UnknownObjectError,
    UnknownQueryError,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.spatial.geometry import Point

#: Monitor implementations selectable by name.
ALGORITHMS = {
    "ovh": OvhMonitor,
    "ima": ImaMonitor,
    "gma": GmaMonitor,
}


class MonitoringServer:
    """Central continuous k-NN monitoring server over one road network."""

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Union[str, MonitorBase] = "ima",
        edge_table: Optional[EdgeTable] = None,
    ) -> None:
        """Create a server over *network* running *algorithm*.

        Args:
            network: the road network.
            algorithm: ``"ovh"``, ``"ima"``, ``"gma"`` (case-insensitive), or
                an already constructed monitor instance bound to the same
                network and edge table.
            edge_table: optionally a pre-populated edge table to share.
        """
        self._network = network
        self._edge_table = edge_table if edge_table is not None else EdgeTable(network)
        if isinstance(algorithm, MonitorBase):
            self._monitor = algorithm
        else:
            key = algorithm.lower()
            if key not in ALGORITHMS:
                raise MonitoringError(
                    f"unknown algorithm {algorithm!r}; choose one of {sorted(ALGORITHMS)}"
                )
            self._monitor = ALGORITHMS[key](self._network, self._edge_table)
        self._pending = UpdateBatch(timestamp=0)
        self._timestamp = 0
        self._object_locations: Dict[int, NetworkLocation] = {
            object_id: location for object_id, location in self._edge_table.all_objects()
        }
        self._query_locations: Dict[int, NetworkLocation] = {}
        self._query_k: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        return self._network

    @property
    def edge_table(self) -> EdgeTable:
        return self._edge_table

    @property
    def monitor(self) -> MonitorBase:
        return self._monitor

    @property
    def algorithm_name(self) -> str:
        return self._monitor.name

    @property
    def current_timestamp(self) -> int:
        return self._timestamp

    # ------------------------------------------------------------------
    # location helpers
    # ------------------------------------------------------------------
    def snap(self, x: float, y: float) -> NetworkLocation:
        """Snap workspace coordinates to the nearest network edge."""
        return self._edge_table.snap_point(Point(x, y))

    # ------------------------------------------------------------------
    # data objects
    # ------------------------------------------------------------------
    def add_object(self, object_id: int, location: NetworkLocation) -> None:
        """Register a new data object (takes effect at the next tick)."""
        if object_id in self._object_locations:
            raise DuplicateObjectError(object_id)
        self._network.validate_location(location)
        self._object_locations[object_id] = location
        self._pending.object_updates.append(ObjectUpdate(object_id, None, location))

    def add_object_at(self, object_id: int, x: float, y: float) -> NetworkLocation:
        """Register a new data object by coordinates; returns the snapped location."""
        location = self.snap(x, y)
        self.add_object(object_id, location)
        return location

    def move_object(self, object_id: int, new_location: NetworkLocation) -> None:
        """Report a data-object movement (takes effect at the next tick)."""
        old_location = self._object_locations.get(object_id)
        if old_location is None:
            raise UnknownObjectError(object_id)
        self._network.validate_location(new_location)
        self._object_locations[object_id] = new_location
        self._pending.object_updates.append(
            ObjectUpdate(object_id, old_location, new_location)
        )

    def move_object_at(self, object_id: int, x: float, y: float) -> NetworkLocation:
        """Report a data-object movement by coordinates."""
        location = self.snap(x, y)
        self.move_object(object_id, location)
        return location

    def remove_object(self, object_id: int) -> None:
        """Report that a data object disappeared."""
        old_location = self._object_locations.pop(object_id, None)
        if old_location is None:
            raise UnknownObjectError(object_id)
        self._pending.object_updates.append(ObjectUpdate(object_id, old_location, None))

    def object_ids(self) -> Set[int]:
        return set(self._object_locations)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def add_query(self, query_id: int, location: NetworkLocation, k: int) -> None:
        """Install a continuous k-NN query (takes effect at the next tick)."""
        if query_id in self._query_locations:
            raise DuplicateQueryError(query_id)
        self._network.validate_location(location)
        self._query_locations[query_id] = location
        self._query_k[query_id] = k
        self._pending.query_updates.append(QueryUpdate(query_id, None, location, k))

    def add_query_at(self, query_id: int, x: float, y: float, k: int) -> NetworkLocation:
        """Install a continuous k-NN query by coordinates."""
        location = self.snap(x, y)
        self.add_query(query_id, location, k)
        return location

    def move_query(self, query_id: int, new_location: NetworkLocation) -> None:
        """Report a query movement (takes effect at the next tick)."""
        old_location = self._query_locations.get(query_id)
        if old_location is None:
            raise UnknownQueryError(query_id)
        self._network.validate_location(new_location)
        self._query_locations[query_id] = new_location
        self._pending.query_updates.append(
            QueryUpdate(query_id, old_location, new_location)
        )

    def move_query_at(self, query_id: int, x: float, y: float) -> NetworkLocation:
        """Report a query movement by coordinates."""
        location = self.snap(x, y)
        self.move_query(query_id, location)
        return location

    def remove_query(self, query_id: int) -> None:
        """Terminate a continuous query."""
        old_location = self._query_locations.pop(query_id, None)
        if old_location is None:
            raise UnknownQueryError(query_id)
        self._query_k.pop(query_id, None)
        self._pending.query_updates.append(QueryUpdate(query_id, old_location, None))

    def query_ids(self) -> Set[int]:
        return set(self._query_locations)

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def update_edge_weight(self, edge_id: int, new_weight: float) -> None:
        """Report an edge-weight change, e.g. from a traffic sensor."""
        old_weight = self._network.edge(edge_id).weight
        self._pending.edge_updates.append(
            EdgeWeightUpdate(edge_id, old_weight, new_weight)
        )

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def tick(self) -> TimestepReport:
        """Process every buffered update as one timestamp."""
        batch = self._pending
        batch.timestamp = self._timestamp
        self._pending = UpdateBatch(timestamp=self._timestamp + 1)
        self._timestamp += 1
        apply_batch(self._network, self._edge_table, batch.normalized())
        return self._monitor.process_batch(batch)

    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query (after the last tick)."""
        return self._monitor.result_of(query_id)

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every query (after the last tick)."""
        return self._monitor.results()
