"""Monitoring-server facade: the user-facing API of the library.

The :class:`MonitoringServer` plays the role of the central server of the
paper: it owns the road network, the edge table and one monitoring algorithm
(OVH, IMA, or GMA), accepts the three kinds of updates — by network location
or by raw workspace coordinates, which are snapped to the nearest edge
through the PMR quadtree — buffers them, and processes one *timestamp* per
call to :meth:`tick`.

Example::

    from repro import MonitoringServer, city_network

    network = city_network(400, seed=7)
    server = MonitoringServer(network, algorithm="gma")
    server.add_object_at(1, x=120.0, y=80.0)
    server.add_query_at(100, x=100.0, y=100.0, k=2)
    server.move_object_at(1, x=140.0, y=90.0)
    report = server.tick()
    print(server.result_of(100).neighbors)
"""

from __future__ import annotations

import pickle
from typing import Dict, Iterable, List, Optional, Set, Tuple, Union

from repro.core.base import MonitorBase, TimestepReport
from repro.core.events import (
    EdgeWeightUpdate,
    ObjectUpdate,
    QueryUpdate,
    UpdateBatch,
    apply_batch,
)
from repro.core.gma import GmaMonitor
from repro.core.ima import ImaMonitor
from repro.core.ovh import OvhMonitor
from repro.core.queries import QuerySpec, as_query_spec
from repro.core.results import KnnResult
from repro.exceptions import (
    DuplicateObjectError,
    DuplicateQueryError,
    MonitoringError,
    RecoveryError,
    UnknownObjectError,
    UnknownQueryError,
)
from repro.network.edge_table import EdgeTable
from repro.network.kernels import DEFAULT_KERNEL, resolve_kernel
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.spatial.geometry import Point

#: Monitor implementations selectable by name.
ALGORITHMS = {
    "ovh": OvhMonitor,
    "ima": ImaMonitor,
    "gma": GmaMonitor,
}


class MonitoringServer:
    """Central continuous k-NN monitoring server over one road network.

    Example::

        network = city_network(400, seed=7)
        server = MonitoringServer(network, algorithm="gma")
        server.add_object_at(1, x=120.0, y=80.0)
        server.add_query_at(100, x=100.0, y=100.0, k=2)
        report = server.tick()
        print(server.result_of(100).neighbors)
    """

    def __new__(cls, *args, **kwargs):
        """Dispatch multi-process configurations to the sharded server.

        ``MonitoringServer(network, workers=4)`` — or any
        ``partitioning=`` other than the replica default, e.g.
        ``MonitoringServer(network, partitioning="graph")`` — returns a
        :class:`~repro.core.sharding.ShardedMonitoringServer`, which keeps
        the exact same public API but fans every tick out to worker
        processes.  Explicitly constructed subclasses are left alone.
        Both arguments are keyword-only, so reading them from *kwargs* is
        safe.
        """
        workers = kwargs.get("workers", 1)
        partitioning = kwargs.get("partitioning", "replica")
        if cls is MonitoringServer and (
            (workers is not None and workers > 1) or partitioning != "replica"
        ):
            from repro.core.sharding import ShardedMonitoringServer

            return super().__new__(ShardedMonitoringServer)
        return super().__new__(cls)

    def __init__(
        self,
        network: RoadNetwork,
        algorithm: Union[str, MonitorBase] = "ima",
        edge_table: Optional[EdgeTable] = None,
        kernel: str = DEFAULT_KERNEL,
        *,
        workers: int = 1,
        partitioning: str = "replica",
    ) -> None:
        """Create a server over *network* running *algorithm*.

        Args:
            network: the road network.
            algorithm: ``"ovh"``, ``"ima"``, ``"gma"`` (case-insensitive), or
                an already constructed monitor instance bound to the same
                network and edge table.
            edge_table: optionally a pre-populated edge table to share.
            kernel: search kernel for by-name algorithms — any name in
                the :mod:`repro.network.kernels` registry: ``"csr"``
                (default), ``"dial"`` (the batched bucket-queue engine of
                :mod:`repro.network.dial`), ``"native"`` (the compiled C
                settle loop of :mod:`repro.network.native`; identical
                results, fastest on update-heavy deep-tree workloads) or
                ``"legacy"`` (the dict-walking reference paths, used for
                differential testing).  Validated here at construction —
                an unknown name raises
                :class:`~repro.exceptions.UnknownKernelError` — then
                ignored when *algorithm* is an already constructed
                monitor.
            workers: number of query-execution processes (keyword-only).
                ``1`` (default) runs everything in-process; larger values
                hand construction over to
                :class:`~repro.core.sharding.ShardedMonitoringServer`
                (see :meth:`__new__`), which partitions the queries across
                that many workers.
            partitioning: ``"replica"`` (default) or ``"graph"``
                (keyword-only).  Any non-default value hands construction
                over to the sharded server (see :meth:`__new__`), which
                documents the modes; a single-process server is always
                effectively a full replica.
        """
        if workers is not None and workers < 1:
            # Surfaced here (not just in the sharded subclass) so a config
            # that computed workers=0 fails loudly instead of silently
            # building a single-process server.
            raise MonitoringError(f"workers must be >= 1, got {workers}")
        if partitioning != "replica":
            # Only reachable through a subclass that bypassed __new__'s
            # dispatch; the sharded subclass overrides __init__ entirely.
            raise MonitoringError(
                f"a single-process server supports only partitioning="
                f"'replica', got {partitioning!r}"
            )
        # Fail construction on a bad kernel name even when the monitors are
        # built elsewhere (sharded subclass) or the name will be ignored
        # (pre-built monitor instance): a typo should never survive to the
        # first tick.
        kernel = resolve_kernel(kernel).name
        self._network = network
        self._edge_table = edge_table if edge_table is not None else EdgeTable(network)
        self._monitor = self._make_monitor(algorithm, kernel)
        self._pending = UpdateBatch(timestamp=0)
        self._timestamp = 0
        self._object_locations: Dict[int, NetworkLocation] = {
            object_id: location for object_id, location in self._edge_table.all_objects()
        }
        self._query_locations: Dict[int, NetworkLocation] = {}
        self._query_specs: Dict[int, QuerySpec] = {}
        if workers is not None and workers > 1 and self._monitor is not None:
            # Only ShardedMonitoringServer (whose _make_monitor returns
            # None) honours workers > 1; a direct subclass reaching this
            # point would silently run single-process otherwise.
            raise MonitoringError(
                f"{type(self).__name__} runs in-process and ignores "
                f"workers={workers}; construct ShardedMonitoringServer for "
                "multi-process execution"
            )

    @staticmethod
    def _resolve_algorithm_key(algorithm: str) -> str:
        """Validate an algorithm name and return its ALGORITHMS key."""
        key = algorithm.lower()
        if key not in ALGORITHMS:
            raise MonitoringError(
                f"unknown algorithm {algorithm!r}; choose one of {sorted(ALGORITHMS)}"
            )
        return key

    def _make_monitor(
        self, algorithm: Union[str, MonitorBase], kernel: str
    ) -> Optional[MonitorBase]:
        """Resolve *algorithm* to the in-process monitor instance.

        The sharded subclass overrides this to validate the name and return
        None — its monitors live in the worker processes.
        """
        if isinstance(algorithm, MonitorBase):
            return algorithm
        key = self._resolve_algorithm_key(algorithm)
        return ALGORITHMS[key](self._network, self._edge_table, kernel=kernel)

    # ------------------------------------------------------------------
    # properties
    # ------------------------------------------------------------------
    @property
    def network(self) -> RoadNetwork:
        """The road network this server monitors."""
        return self._network

    @property
    def edge_table(self) -> EdgeTable:
        """The edge table tracking the data objects (shared state)."""
        return self._edge_table

    @property
    def monitor(self) -> MonitorBase:
        """The in-process monitoring algorithm instance."""
        return self._monitor

    @property
    def algorithm_name(self) -> str:
        """Short name of the running algorithm ("OVH", "IMA", "GMA")."""
        return self._monitor.name

    @property
    def current_timestamp(self) -> int:
        """The timestamp the next :meth:`tick` will process."""
        return self._timestamp

    def _ensure_accepting_updates(self) -> None:
        """Hook called before any update is buffered (no-op in-process).

        The sharded subclass overrides this to reject ingestion after
        :meth:`close`, where buffered updates could never be processed.
        """

    # ------------------------------------------------------------------
    # location helpers
    # ------------------------------------------------------------------
    def snap(self, x: float, y: float) -> NetworkLocation:
        """Snap workspace coordinates to the nearest network edge."""
        return self._edge_table.snap_point(Point(x, y))

    def snap_many(self, coordinates: Iterable[Tuple[float, float]]) -> List[NetworkLocation]:
        """Snap a batch of ``(x, y)`` pairs in one vectorized quadtree pass."""
        points = [Point(x, y) for x, y in coordinates]
        return self._edge_table.snap_points(points)

    # ------------------------------------------------------------------
    # data objects
    # ------------------------------------------------------------------
    def add_object(self, object_id: int, location: NetworkLocation) -> None:
        """Register a new data object (takes effect at the next tick)."""
        self._ensure_accepting_updates()
        if object_id in self._object_locations:
            raise DuplicateObjectError(object_id)
        self._network.validate_location(location)
        self._object_locations[object_id] = location
        self._pending.object_updates.append(ObjectUpdate(object_id, None, location))

    def add_object_at(self, object_id: int, x: float, y: float) -> NetworkLocation:
        """Register a new data object by coordinates; returns the snapped location."""
        location = self.snap(x, y)
        self.add_object(object_id, location)
        return location

    def move_object(self, object_id: int, new_location: NetworkLocation) -> None:
        """Report a data-object movement (takes effect at the next tick)."""
        self._ensure_accepting_updates()
        old_location = self._object_locations.get(object_id)
        if old_location is None:
            raise UnknownObjectError(object_id)
        self._network.validate_location(new_location)
        self._object_locations[object_id] = new_location
        self._pending.object_updates.append(
            ObjectUpdate(object_id, old_location, new_location)
        )

    def move_object_at(self, object_id: int, x: float, y: float) -> NetworkLocation:
        """Report a data-object movement by coordinates."""
        location = self.snap(x, y)
        self.move_object(object_id, location)
        return location

    def remove_object(self, object_id: int) -> None:
        """Report that a data object disappeared."""
        self._ensure_accepting_updates()
        old_location = self._object_locations.pop(object_id, None)
        if old_location is None:
            raise UnknownObjectError(object_id)
        self._pending.object_updates.append(ObjectUpdate(object_id, old_location, None))

    # ------------------------------------------------------------------
    # batched ingestion
    # ------------------------------------------------------------------
    def add_objects_at(
        self, items: Iterable[Tuple[int, float, float]]
    ) -> Dict[int, NetworkLocation]:
        """Register many data objects by ``(object_id, x, y)`` in one pass.

        All coordinates are snapped through one vectorized quadtree batch and
        the whole group is validated before anything is buffered, so a
        duplicate id leaves the server unchanged.

        Returns:
            object id -> snapped location.

        Raises:
            DuplicateObjectError: if any id is already registered (or appears
                twice in the batch).
        """
        self._ensure_accepting_updates()
        batch = list(items)
        seen: Set[int] = set()
        for object_id, _, _ in batch:
            if object_id in self._object_locations or object_id in seen:
                raise DuplicateObjectError(object_id)
            seen.add(object_id)
        locations = self.snap_many((x, y) for _, x, y in batch)
        snapped: Dict[int, NetworkLocation] = {}
        for (object_id, _, _), location in zip(batch, locations):
            self._object_locations[object_id] = location
            self._pending.object_updates.append(ObjectUpdate(object_id, None, location))
            snapped[object_id] = location
        return snapped

    def move_objects_at(
        self, items: Iterable[Tuple[int, float, float]]
    ) -> Dict[int, NetworkLocation]:
        """Report many data-object movements by ``(object_id, x, y)``.

        The batch counterpart of :meth:`move_object_at`; ids never added to
        the server are rejected up front, before any update is buffered.

        Returns:
            object id -> snapped location.

        Raises:
            UnknownObjectError: if any id has never been added.
        """
        self._ensure_accepting_updates()
        batch = list(items)
        for object_id, _, _ in batch:
            if object_id not in self._object_locations:
                raise UnknownObjectError(object_id)
        locations = self.snap_many((x, y) for _, x, y in batch)
        snapped: Dict[int, NetworkLocation] = {}
        for (object_id, _, _), location in zip(batch, locations):
            old_location = self._object_locations[object_id]
            self._object_locations[object_id] = location
            self._pending.object_updates.append(
                ObjectUpdate(object_id, old_location, location)
            )
            snapped[object_id] = location
        return snapped

    def apply_updates(self, batch: UpdateBatch) -> None:
        """Buffer a pre-built :class:`UpdateBatch` in one call.

        The bulk ingestion path for callers that already know network
        locations (simulators, feed adapters): equivalent to issuing every
        contained update through the per-entity methods, minus the
        per-update method-call and snapping overhead.  Old locations /
        weights are re-derived from the server's own view, so the caller
        only needs ids and new values; the batch object itself is not
        retained.  Updates take effect at the next :meth:`tick`.

        Raises:
            DuplicateObjectError / UnknownObjectError / DuplicateQueryError /
            UnknownQueryError: on id misuse, before anything is buffered.
        """
        self._ensure_accepting_updates()
        object_locations = self._object_locations
        query_locations = self._query_locations
        # Validate the whole batch first so a bad update leaves the pending
        # buffer untouched (insertions may be referenced by later moves of
        # the same batch, hence the running `added` / `removed` sets).
        added: Set[int] = set()
        removed: Set[int] = set()
        for update in batch.object_updates:
            known = (
                update.object_id in object_locations or update.object_id in added
            ) and update.object_id not in removed
            if update.is_insertion:
                if known:
                    raise DuplicateObjectError(update.object_id)
                added.add(update.object_id)
                removed.discard(update.object_id)
            else:
                if not known:
                    raise UnknownObjectError(update.object_id)
                if update.is_deletion:
                    removed.add(update.object_id)
                    added.discard(update.object_id)
            if update.new_location is not None:
                self._network.validate_location(update.new_location)
        added.clear()
        removed.clear()
        for update in batch.query_updates:
            known = (
                update.query_id in query_locations or update.query_id in added
            ) and update.query_id not in removed
            if update.is_installation:
                if known:
                    raise DuplicateQueryError(update.query_id)
                added.add(update.query_id)
                removed.discard(update.query_id)
            else:
                if not known:
                    raise UnknownQueryError(update.query_id)
                if update.is_termination:
                    removed.add(update.query_id)
                    added.discard(update.query_id)
            if update.new_location is not None:
                self._network.validate_location(update.new_location)
            if update.is_installation:
                for point in update.spec.points:
                    self._network.validate_location(point)
        for edge_update in batch.edge_updates:
            self._network.edge(edge_update.edge_id)  # raises if unknown

        pending = self._pending
        for update in batch.object_updates:
            if update.is_insertion:
                object_locations[update.object_id] = update.new_location
                pending.object_updates.append(update)
            elif update.is_deletion:
                old_location = object_locations.pop(update.object_id)
                pending.object_updates.append(
                    ObjectUpdate(update.object_id, old_location, None)
                )
            else:
                old_location = object_locations[update.object_id]
                object_locations[update.object_id] = update.new_location
                pending.object_updates.append(
                    ObjectUpdate(update.object_id, old_location, update.new_location)
                )
        for update in batch.query_updates:
            if update.is_installation:
                query_locations[update.query_id] = update.new_location
                self._query_specs[update.query_id] = update.spec
                pending.query_updates.append(update)
            elif update.is_termination:
                old_location = query_locations.pop(update.query_id)
                self._query_specs.pop(update.query_id, None)
                pending.query_updates.append(
                    QueryUpdate(update.query_id, old_location, None)
                )
            else:
                old_location = query_locations[update.query_id]
                query_locations[update.query_id] = update.new_location
                spec = update.spec
                if spec is not None:
                    # A normalized same-tick terminate+reinstall arrives as a
                    # movement carrying the new spec; adopt it and forward it
                    # so monitors split it back into terminate + install
                    # whenever the spec (k, radius, points, or kind) changed.
                    self._query_specs[update.query_id] = spec
                pending.query_updates.append(
                    QueryUpdate(
                        update.query_id, old_location, update.new_location, spec
                    )
                )
        for edge_update in batch.edge_updates:
            old_weight = self._network.edge(edge_update.edge_id).weight
            pending.edge_updates.append(
                EdgeWeightUpdate(
                    edge_update.edge_id, old_weight, edge_update.new_weight
                )
            )

    def object_ids(self) -> Set[int]:
        """Ids of every registered data object (including pending adds)."""
        return set(self._object_locations)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def add_query(
        self, query_id: int, location: NetworkLocation, k: Union[int, QuerySpec]
    ) -> None:
        """Install a continuous query (takes effect at the next tick).

        *k* is a plain integer — the classic continuous k-NN query — or any
        :class:`~repro.core.queries.QuerySpec`: ``QuerySpec.range(radius)``
        for fixed-radius range monitoring, ``QuerySpec.aggregate_knn(k,
        points, agg)`` for aggregate nearest neighbors over the query's
        location plus fixed extra points.
        """
        self._ensure_accepting_updates()
        if query_id in self._query_locations:
            raise DuplicateQueryError(query_id)
        spec = as_query_spec(k)
        self._network.validate_location(location)
        if spec is not None:
            for point in spec.points:
                self._network.validate_location(point)
        # Construct the update before touching any state: its validation
        # (a missing spec, most notably) must leave the server unchanged so
        # the id stays usable.
        update = QueryUpdate(query_id, None, location, spec)
        self._query_locations[query_id] = location
        self._query_specs[query_id] = spec
        self._pending.query_updates.append(update)

    def add_query_at(
        self, query_id: int, x: float, y: float, k: Union[int, QuerySpec]
    ) -> NetworkLocation:
        """Install a continuous query by coordinates (int k or a QuerySpec)."""
        location = self.snap(x, y)
        self.add_query(query_id, location, k)
        return location

    def move_query(self, query_id: int, new_location: NetworkLocation) -> None:
        """Report a query movement (takes effect at the next tick)."""
        self._ensure_accepting_updates()
        old_location = self._query_locations.get(query_id)
        if old_location is None:
            raise UnknownQueryError(query_id)
        self._network.validate_location(new_location)
        self._query_locations[query_id] = new_location
        self._pending.query_updates.append(
            QueryUpdate(query_id, old_location, new_location)
        )

    def move_query_at(self, query_id: int, x: float, y: float) -> NetworkLocation:
        """Report a query movement by coordinates."""
        location = self.snap(x, y)
        self.move_query(query_id, location)
        return location

    def remove_query(self, query_id: int) -> None:
        """Terminate a continuous query."""
        self._ensure_accepting_updates()
        old_location = self._query_locations.pop(query_id, None)
        if old_location is None:
            raise UnknownQueryError(query_id)
        self._query_specs.pop(query_id, None)
        self._pending.query_updates.append(QueryUpdate(query_id, old_location, None))

    def query_ids(self) -> Set[int]:
        """Ids of every installed query (including pending installations)."""
        return set(self._query_locations)

    def query_spec_of(self, query_id: int) -> QuerySpec:
        """The :class:`QuerySpec` of an installed query (typed error on miss).

        Raises:
            UnknownQueryError: if the query was never added (or was removed).
        """
        try:
            return self._query_specs[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    # ------------------------------------------------------------------
    # edges
    # ------------------------------------------------------------------
    def update_edge_weight(self, edge_id: int, new_weight: float) -> None:
        """Report an edge-weight change, e.g. from a traffic sensor."""
        self._ensure_accepting_updates()
        old_weight = self._network.edge(edge_id).weight
        self._pending.edge_updates.append(
            EdgeWeightUpdate(edge_id, old_weight, new_weight)
        )

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def take_pending_batch(self) -> UpdateBatch:
        """Detach the pending buffer as the next tick's batch and advance time.

        The first half of :meth:`tick`, exposed so write-ahead callers (the
        durable service) can persist the batch *between* taking and applying
        it: ``take_pending_batch()`` stamps the batch with the current
        timestamp and advances the clock, :meth:`apply_taken_batch` then
        processes it.  Shared by the in-process and sharded tick paths so
        batch/timestamp semantics cannot diverge between them.
        """
        batch = self._pending
        batch.timestamp = self._timestamp
        self._pending = UpdateBatch(timestamp=self._timestamp + 1)
        self._timestamp += 1
        return batch

    def apply_taken_batch(self, batch: UpdateBatch) -> TimestepReport:
        """Process a batch previously detached by :meth:`take_pending_batch`.

        The second half of :meth:`tick`: applies the batch to the shared
        network/edge table and runs the monitor.  The batch must carry the
        timestamp :meth:`take_pending_batch` stamped on it; feeding anything
        else desynchronizes the server clock from the monitor reports.
        """
        apply_batch(self._network, self._edge_table, batch.normalized())
        return self._monitor.process_batch(batch)

    def discard_pending(self) -> UpdateBatch:
        """Drop (and return) every buffered-but-unprocessed update.

        Used by crash recovery: updates that were ingested but never ticked
        are not durable by design, so a recovered server starts its next
        tick from an empty buffer.  The internal entity maps are rolled back
        to the last ticked state by replaying the dropped installations /
        removals in reverse effect.
        """
        dropped = self._pending
        self._pending = UpdateBatch(timestamp=self._timestamp)
        for update in reversed(dropped.object_updates):
            if update.is_insertion:
                self._object_locations.pop(update.object_id, None)
            elif update.is_deletion:
                self._object_locations[update.object_id] = update.old_location
            else:
                self._object_locations[update.object_id] = update.old_location
        for update in reversed(dropped.query_updates):
            if update.is_installation:
                self._query_locations.pop(update.query_id, None)
                self._query_specs.pop(update.query_id, None)
            elif update.is_termination:
                self._query_locations[update.query_id] = update.old_location
            else:
                self._query_locations[update.query_id] = update.old_location
        return dropped

    def tick(self) -> TimestepReport:
        """Process every buffered update as one timestamp."""
        return self.apply_taken_batch(self.take_pending_batch())

    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query (after the last tick)."""
        return self._monitor.result_of(query_id)

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every query (after the last tick)."""
        return self._monitor.results()

    # ------------------------------------------------------------------
    # snapshot / restore
    # ------------------------------------------------------------------
    def snapshot_state(self) -> bytes:
        """Serialize the complete server state to one opaque blob.

        The blob captures everything a byte-identical resume needs — the
        network, edge table, monitor (including its per-query float
        history), pending buffer, and timestamp — and is restored with
        :func:`restore_server`.  Kernel snapshots (the CSR columns, dial
        support) are deliberately *not* captured; they are rebuilt
        deterministically from the restored weights on first use.
        """
        return pickle.dumps(
            {"kind": "in-process", "server": self},
            protocol=pickle.HIGHEST_PROTOCOL,
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Release external resources (idempotent).

        A no-op for the in-process server; the sharded subclass shuts its
        worker processes down and unlinks the shared-memory snapshot here.
        Provided on the base class so ``with MonitoringServer(...) as s:``
        works uniformly regardless of ``workers``.
        """

    def __enter__(self) -> "MonitoringServer":
        """Enter a context that guarantees :meth:`close` on exit."""
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Close the server when the ``with`` block ends."""
        self.close()


def restore_server(blob: bytes) -> MonitoringServer:
    """Rebuild a server from a :meth:`MonitoringServer.snapshot_state` blob.

    Dispatches on the blob's kind: an in-process snapshot unpickles to the
    original :class:`MonitoringServer` (same monitor state, same pending
    buffer, same timestamp); a sharded snapshot rebuilds a
    :class:`~repro.core.sharding.ShardedMonitoringServer`, respawning one
    worker per shard from its pickled monitor so every expansion tree
    resumes with its exact float history.  Continuing the restored server
    with the same updates yields results byte-identical to the original.

    Raises:
        RecoveryError: if the blob does not decode to a supported snapshot.

    Example::

        blob = server.snapshot_state()
        clone = restore_server(blob)
        assert clone.results() == server.results()
    """
    try:
        state = pickle.loads(blob)
        kind = state["kind"]
    except Exception as exc:
        raise RecoveryError(f"cannot decode server snapshot: {exc}") from exc
    if kind == "in-process":
        server = state["server"]
        if not isinstance(server, MonitoringServer):
            raise RecoveryError(
                f"in-process snapshot holds {type(server).__name__}, "
                "not a MonitoringServer"
            )
        return server
    if kind == "sharded":
        from repro.core.sharding import ShardedMonitoringServer

        return ShardedMonitoringServer._restore(state)
    raise RecoveryError(f"unsupported server snapshot kind {kind!r}")
