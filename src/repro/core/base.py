"""Common interface of the three monitoring algorithms (OVH, IMA, GMA).

A *monitor* owns the continuous queries registered with it and keeps their
k-NN results up to date as update batches arrive.  It reads — but never
mutates — the shared :class:`~repro.network.graph.RoadNetwork` and
:class:`~repro.network.edge_table.EdgeTable`; the owner of the shared state
applies each batch exactly once (see :func:`repro.core.events.apply_batch`)
and then calls :meth:`MonitorBase.process_batch` on every monitor, which is
how the experiment harness compares algorithms in lock-step.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Union

from repro.core.events import QueryUpdate, UpdateBatch
from repro.core.queries import (
    QuerySpec,
    as_query_spec,
    evaluate_aggregate,
    evaluate_aggregates,
)
from repro.core.results import KnnResult, Neighbor
from repro.core.search import SearchCounters
from repro.exceptions import (
    DuplicateQueryError,
    InvalidQueryError,
    UnknownQueryError,
)
from repro.network.edge_table import EdgeTable
from repro.network.kernels import DEFAULT_KERNEL
from repro.network.graph import NetworkLocation, RoadNetwork


@dataclass
class TimestepReport:
    """What happened while processing one update batch.

    Example::

        report = server.tick()
        print(report.timestamp, sorted(report.changed_queries))
    """

    timestamp: int
    elapsed_seconds: float
    changed_queries: Set[int] = field(default_factory=set)
    counters: Dict[str, int] = field(default_factory=dict)


class MonitorBase(abc.ABC):
    """Abstract base class of the monitoring algorithms.

    Example::

        monitor = ImaMonitor(network, edge_table)   # any MonitorBase subclass
        monitor.register_query(1, location, k=4)
        report = monitor.process_batch(batch)
        print(monitor.result_of(1).neighbors)
    """

    #: Short algorithm name used in reports ("OVH", "IMA", "GMA").
    name: str = "base"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters: Optional[SearchCounters] = None,
    ) -> None:
        self._network = network
        self._edge_table = edge_table
        self._results: Dict[int, KnnResult] = {}
        self._query_spec: Dict[int, QuerySpec] = {}
        self._query_location: Dict[int, NetworkLocation] = {}
        self._counters = counters if counters is not None else SearchCounters()
        self._timestep_reports: List[TimestepReport] = []
        #: Aggregate k-NN queries of monitors that serve them through the
        #: shared :meth:`_refresh_aggregates` policy (IMA and GMA register
        #: ids here; OVH and the oracle recompute everything anyway).
        self._aggregates: Set[int] = set()

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_query(
        self, query_id: int, location: NetworkLocation, k: Union[int, QuerySpec]
    ) -> KnnResult:
        """Install a new continuous query and compute its initial result.

        *k* is a plain integer (classic k-NN) or a
        :class:`~repro.core.queries.QuerySpec` selecting any query type.
        """
        if query_id in self._query_spec:
            raise DuplicateQueryError(query_id)
        spec = as_query_spec(k)
        if spec is None:
            raise InvalidQueryError(f"query {query_id} needs a k or QuerySpec")
        self._network.validate_location(location)
        for point in spec.points:
            self._network.validate_location(point)
        self._query_spec[query_id] = spec
        self._query_location[query_id] = location
        result = self._install_query(query_id, location, spec)
        self._results[query_id] = result
        return result

    def unregister_query(self, query_id: int) -> None:
        """Terminate a continuous query."""
        if query_id not in self._query_spec:
            raise UnknownQueryError(query_id)
        self._remove_query(query_id)
        del self._query_spec[query_id]
        del self._query_location[query_id]
        self._results.pop(query_id, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query.

        Raises:
            UnknownQueryError: if the query is not registered.
        """
        try:
            return self._results[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every registered query (a copy)."""
        return dict(self._results)

    def query_ids(self) -> Set[int]:
        """Ids of every registered continuous query."""
        return set(self._query_spec)

    def query_location(self, query_id: int) -> NetworkLocation:
        """Current position of a query (raises :class:`UnknownQueryError`)."""
        try:
            return self._query_location[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def query_spec(self, query_id: int) -> QuerySpec:
        """The :class:`QuerySpec` of a query (raises :class:`UnknownQueryError`)."""
        try:
            return self._query_spec[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def query_k(self, query_id: int) -> int:
        """The ``k`` of a query (raises :class:`UnknownQueryError`).

        For range queries this is the placeholder 1 — their result size is
        unbounded; see :meth:`query_spec` for the full query type.
        """
        return self.query_spec(query_id).k

    @property
    def query_count(self) -> int:
        """Number of registered continuous queries."""
        return len(self._query_spec)

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def process_batch(self, batch: UpdateBatch) -> TimestepReport:
        """Process one timestamp's updates and refresh the affected results.

        The shared network / edge table must already reflect the batch (see
        :func:`repro.core.events.apply_batch`).  Query terminations are
        handled before the algorithm-specific processing and installations
        after it (Section 4.5 of the paper); movements are part of the
        algorithm-specific processing.  Returns a report with the wall-clock
        time spent and the queries whose result changed.
        """
        normalized = batch.normalized()
        before = self._counters.snapshot()
        start = time.perf_counter()

        installations = [u for u in normalized.query_updates if u.is_installation]
        terminations = [u for u in normalized.query_updates if u.is_termination]
        movements = []
        for update in normalized.query_updates:
            if update.is_installation or update.is_termination:
                continue
            spec = update.spec
            if (
                spec is not None
                and update.query_id in self._query_spec
                and spec != self._query_spec[update.query_id]
            ):
                # A same-tick terminate+install collapses (Section 4.5) into
                # a movement carrying the new spec.  A changed spec — a new
                # k, radius, aggregate points, or a different query *kind* —
                # cannot be applied as a movement (algorithm state is sized
                # to the spec), so split it back into its termination +
                # installation.  A type-preserving remove+add with the same
                # spec stays a movement and keeps the incremental path.
                terminations.append(QueryUpdate(update.query_id, update.old_location, None))
                installations.append(
                    QueryUpdate(update.query_id, None, update.new_location, spec)
                )
            else:
                movements.append(update)

        for update in terminations:
            if update.query_id in self._query_spec:
                self.unregister_query(update.query_id)

        for update in movements:
            if update.query_id in self._query_location:
                assert update.new_location is not None
                self._query_location[update.query_id] = update.new_location

        core_batch = UpdateBatch(
            timestamp=normalized.timestamp,
            object_updates=normalized.object_updates,
            query_updates=movements,
            edge_updates=normalized.edge_updates,
        )
        changed = self._process(core_batch)

        for update in installations:
            assert update.new_location is not None and update.k is not None
            self.register_query(update.query_id, update.new_location, update.k)
            changed.add(update.query_id)

        elapsed = time.perf_counter() - start
        after = self._counters.snapshot()
        report = TimestepReport(
            timestamp=normalized.timestamp,
            elapsed_seconds=elapsed,
            changed_queries=changed,
            counters={key: after[key] - before[key] for key in after},
        )
        self._timestep_reports.append(report)
        return report

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def counters(self) -> SearchCounters:
        """Cumulative work counters across all processing so far."""
        return self._counters

    @property
    def timestep_reports(self) -> List[TimestepReport]:
        """Reports of every processed batch, in order."""
        return list(self._timestep_reports)

    def memory_footprint_bytes(self) -> int:
        """Rough size of the algorithm-specific state (Figure 18).

        Subclasses extend this with their own structures; the base method
        accounts for the per-query result lists (k entries of 16 bytes each).
        """
        return sum(16 * len(result.neighbors) for result in self._results.values())

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _install_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        """Compute the initial result of a newly registered query."""

    @abc.abstractmethod
    def _remove_query(self, query_id: int) -> None:
        """Drop the algorithm-specific state of a terminated query."""

    @abc.abstractmethod
    def _process(self, batch: UpdateBatch) -> Set[int]:
        """Handle a normalized batch; return the ids of changed queries."""

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _refresh_aggregates(self, batch: UpdateBatch) -> Set[int]:
        """Re-evaluate registered aggregate queries that could have changed.

        Shared policy of the incremental monitors (IMA and GMA register
        their aggregate ids in ``self._aggregates``): any object or edge
        update can move an aggregate distance, so a tick carrying either
        re-evaluates every aggregate query; a tick carrying only query
        movements re-evaluates just the moved ones.  (An empty tick is a
        no-op — nothing the aggregate depends on changed.)

        All stale queries of one tick are evaluated through a single
        :func:`~repro.core.queries.evaluate_aggregates` call, so expansions
        rooted at coinciding points — co-located tenants, shared aggregation
        anchors — run once and are reused (the per-tick shared-expansion
        cache).  Result values are identical to per-query evaluation.
        """
        if batch.object_updates or batch.edge_updates:
            stale = self._aggregates
        else:
            stale = {
                update.query_id
                for update in batch.query_updates
                if update.query_id in self._aggregates
            }
        stale_ids = sorted(stale)
        changed: Set[int] = set()
        if not stale_ids:
            return changed
        evaluations = evaluate_aggregates(
            self._network,
            self._edge_table,
            [
                (self._query_location[query_id], self._query_spec[query_id])
                for query_id in stale_ids
            ],
            kernel=getattr(self, "_kernel", DEFAULT_KERNEL),
            csr=getattr(self, "_batch_csr", None),
            counters=self._counters,
        )
        for query_id, (neighbors, radius) in zip(stale_ids, evaluations):
            if self._store_result(query_id, neighbors, radius):
                changed.add(query_id)
        return changed

    def _evaluate_aggregate(self, location: NetworkLocation, spec: QuerySpec):
        """Per-point expansions merged under the spec's aggregate function.

        Reads the subclass's ``_kernel`` / per-batch ``_batch_csr`` when
        present (IMA and GMA define both) and falls back to the default
        kernel with a per-call snapshot lookup otherwise.
        """
        return evaluate_aggregate(
            self._network,
            self._edge_table,
            location,
            spec,
            kernel=getattr(self, "_kernel", DEFAULT_KERNEL),
            csr=getattr(self, "_batch_csr", None),
            counters=self._counters,
        )

    def _store_result(self, query_id: int, neighbors: List[Neighbor], radius: float) -> bool:
        """Store a new result; return True when it differs from the old one."""
        new_result = KnnResult(
            query_id=query_id,
            k=self._query_spec[query_id].result_k,
            neighbors=tuple(neighbors),
            radius=radius,
        )
        old_result = self._results.get(query_id)
        self._results[query_id] = new_result
        if old_result is None:
            return True
        return old_result.neighbors != new_result.neighbors
