"""Common interface of the three monitoring algorithms (OVH, IMA, GMA).

A *monitor* owns the continuous queries registered with it and keeps their
k-NN results up to date as update batches arrive.  It reads — but never
mutates — the shared :class:`~repro.network.graph.RoadNetwork` and
:class:`~repro.network.edge_table.EdgeTable`; the owner of the shared state
applies each batch exactly once (see :func:`repro.core.events.apply_batch`)
and then calls :meth:`MonitorBase.process_batch` on every monitor, which is
how the experiment harness compares algorithms in lock-step.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.core.events import QueryUpdate, UpdateBatch
from repro.core.results import KnnResult, Neighbor
from repro.core.search import SearchCounters
from repro.exceptions import (
    DuplicateQueryError,
    InvalidQueryError,
    UnknownQueryError,
)
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork


@dataclass
class TimestepReport:
    """What happened while processing one update batch.

    Example::

        report = server.tick()
        print(report.timestamp, sorted(report.changed_queries))
    """

    timestamp: int
    elapsed_seconds: float
    changed_queries: Set[int] = field(default_factory=set)
    counters: Dict[str, int] = field(default_factory=dict)


class MonitorBase(abc.ABC):
    """Abstract base class of the monitoring algorithms.

    Example::

        monitor = ImaMonitor(network, edge_table)   # any MonitorBase subclass
        monitor.register_query(1, location, k=4)
        report = monitor.process_batch(batch)
        print(monitor.result_of(1).neighbors)
    """

    #: Short algorithm name used in reports ("OVH", "IMA", "GMA").
    name: str = "base"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters: Optional[SearchCounters] = None,
    ) -> None:
        self._network = network
        self._edge_table = edge_table
        self._results: Dict[int, KnnResult] = {}
        self._query_k: Dict[int, int] = {}
        self._query_location: Dict[int, NetworkLocation] = {}
        self._counters = counters if counters is not None else SearchCounters()
        self._timestep_reports: List[TimestepReport] = []

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_query(self, query_id: int, location: NetworkLocation, k: int) -> KnnResult:
        """Install a new continuous query and compute its initial result."""
        if query_id in self._query_k:
            raise DuplicateQueryError(query_id)
        if k < 1:
            raise InvalidQueryError(f"k must be >= 1, got {k}")
        self._network.validate_location(location)
        self._query_k[query_id] = k
        self._query_location[query_id] = location
        result = self._install_query(query_id, location, k)
        self._results[query_id] = result
        return result

    def unregister_query(self, query_id: int) -> None:
        """Terminate a continuous query."""
        if query_id not in self._query_k:
            raise UnknownQueryError(query_id)
        self._remove_query(query_id)
        del self._query_k[query_id]
        del self._query_location[query_id]
        self._results.pop(query_id, None)

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def result_of(self, query_id: int) -> KnnResult:
        """Current k-NN result of a query.

        Raises:
            UnknownQueryError: if the query is not registered.
        """
        try:
            return self._results[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def results(self) -> Dict[int, KnnResult]:
        """Current results of every registered query (a copy)."""
        return dict(self._results)

    def query_ids(self) -> Set[int]:
        """Ids of every registered continuous query."""
        return set(self._query_k)

    def query_location(self, query_id: int) -> NetworkLocation:
        """Current position of a query (raises :class:`UnknownQueryError`)."""
        try:
            return self._query_location[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    def query_k(self, query_id: int) -> int:
        """The ``k`` of a query (raises :class:`UnknownQueryError`)."""
        try:
            return self._query_k[query_id]
        except KeyError as exc:
            raise UnknownQueryError(query_id) from exc

    @property
    def query_count(self) -> int:
        """Number of registered continuous queries."""
        return len(self._query_k)

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def process_batch(self, batch: UpdateBatch) -> TimestepReport:
        """Process one timestamp's updates and refresh the affected results.

        The shared network / edge table must already reflect the batch (see
        :func:`repro.core.events.apply_batch`).  Query terminations are
        handled before the algorithm-specific processing and installations
        after it (Section 4.5 of the paper); movements are part of the
        algorithm-specific processing.  Returns a report with the wall-clock
        time spent and the queries whose result changed.
        """
        normalized = batch.normalized()
        before = self._counters.snapshot()
        start = time.perf_counter()

        installations = [u for u in normalized.query_updates if u.is_installation]
        terminations = [u for u in normalized.query_updates if u.is_termination]
        movements = []
        for update in normalized.query_updates:
            if update.is_installation or update.is_termination:
                continue
            if (
                update.k is not None
                and update.query_id in self._query_k
                and update.k != self._query_k[update.query_id]
            ):
                # A same-tick terminate+install collapses (Section 4.5) into
                # a movement carrying the new k.  A changed k cannot be
                # applied as a movement — algorithm state is sized to k —
                # so split it back into its termination + installation.
                terminations.append(QueryUpdate(update.query_id, update.old_location, None))
                installations.append(
                    QueryUpdate(update.query_id, None, update.new_location, update.k)
                )
            else:
                movements.append(update)

        for update in terminations:
            if update.query_id in self._query_k:
                self.unregister_query(update.query_id)

        for update in movements:
            if update.query_id in self._query_location:
                assert update.new_location is not None
                self._query_location[update.query_id] = update.new_location

        core_batch = UpdateBatch(
            timestamp=normalized.timestamp,
            object_updates=normalized.object_updates,
            query_updates=movements,
            edge_updates=normalized.edge_updates,
        )
        changed = self._process(core_batch)

        for update in installations:
            assert update.new_location is not None and update.k is not None
            self.register_query(update.query_id, update.new_location, update.k)
            changed.add(update.query_id)

        elapsed = time.perf_counter() - start
        after = self._counters.snapshot()
        report = TimestepReport(
            timestamp=normalized.timestamp,
            elapsed_seconds=elapsed,
            changed_queries=changed,
            counters={key: after[key] - before[key] for key in after},
        )
        self._timestep_reports.append(report)
        return report

    # ------------------------------------------------------------------
    # metrics
    # ------------------------------------------------------------------
    @property
    def counters(self) -> SearchCounters:
        """Cumulative work counters across all processing so far."""
        return self._counters

    @property
    def timestep_reports(self) -> List[TimestepReport]:
        """Reports of every processed batch, in order."""
        return list(self._timestep_reports)

    def memory_footprint_bytes(self) -> int:
        """Rough size of the algorithm-specific state (Figure 18).

        Subclasses extend this with their own structures; the base method
        accounts for the per-query result lists (k entries of 16 bytes each).
        """
        return sum(16 * len(result.neighbors) for result in self._results.values())

    # ------------------------------------------------------------------
    # subclass hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _install_query(self, query_id: int, location: NetworkLocation, k: int) -> KnnResult:
        """Compute the initial result of a newly registered query."""

    @abc.abstractmethod
    def _remove_query(self, query_id: int) -> None:
        """Drop the algorithm-specific state of a terminated query."""

    @abc.abstractmethod
    def _process(self, batch: UpdateBatch) -> Set[int]:
        """Handle a normalized batch; return the ids of changed queries."""

    # ------------------------------------------------------------------
    # shared helpers for subclasses
    # ------------------------------------------------------------------
    def _store_result(self, query_id: int, neighbors: List[Neighbor], radius: float) -> bool:
        """Store a new result; return True when it differs from the old one."""
        new_result = KnnResult(
            query_id=query_id,
            k=self._query_k[query_id],
            neighbors=tuple(neighbors),
            radius=radius,
        )
        old_result = self._results.get(query_id)
        self._results[query_id] = new_result
        if old_result is None:
            return True
        return old_result.neighbors != new_result.neighbors
