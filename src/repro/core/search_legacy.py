"""Reference implementation of the Figure-2 expansion over the object graph.

This is the original dict-and-dataclass implementation of
:func:`repro.core.search.expand_knn`, kept verbatim when the hot path was
rewritten over the flat-array CSR kernel (:mod:`repro.network.csr`).  It
serves two purposes:

* the **differential tests** assert that the kernel returns identical k-NN
  results on seeded random networks, which is the correctness argument for
  the refactor;
* the **benchmarks** report the kernel-vs-legacy speedup on the expansion
  hot path.

It must behave exactly like the kernel; see :mod:`repro.core.search` for the
full parameter documentation and the correctness sketch.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Set

from repro.core.expansion import ExpansionState
from repro.core.results import Neighbor, NeighborList
from repro.core.search import SearchCounters, SearchOutcome
from repro.exceptions import InvalidQueryError
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.utils.heap import IndexedMinHeap


def expand_knn_legacy(
    network: RoadNetwork,
    edge_table: EdgeTable,
    k: int,
    query_location: Optional[NetworkLocation] = None,
    source_node: Optional[int] = None,
    preverified: Optional[Mapping[int, float]] = None,
    preverified_parent: Optional[Mapping[int, Optional[int]]] = None,
    candidates: Iterable[Neighbor] = (),
    barrier_candidates: Optional[Mapping[int, Iterable[Neighbor]]] = None,
    coverage_radius: Optional[float] = None,
    excluded_objects: Optional[Set[int]] = None,
    counters: Optional[SearchCounters] = None,
    fixed_radius: Optional[float] = None,
) -> SearchOutcome:
    """Dict-based reference expansion; same contract as ``expand_knn``.

    Example::

        legacy = expand_knn_legacy(network, edge_table, k=4, query_location=loc)
        fast = expand_knn(network, edge_table, k=4, query_location=loc)
        assert legacy.neighbors == fast.neighbors
    """
    if k < 1:
        raise InvalidQueryError(f"k must be >= 1, got {k}")
    if query_location is None and source_node is None:
        raise InvalidQueryError("expand_knn needs a query_location or a source_node")
    if counters is None:
        counters = SearchCounters()
    counters.searches += 1

    excluded = excluded_objects or set()
    barriers = barrier_candidates or {}
    neighbors = NeighborList(k)
    for object_id, distance in candidates:
        if object_id not in excluded:
            neighbors.offer(object_id, distance)

    node_dist: Dict[int, float] = dict(preverified or {})
    parent: Dict[int, Optional[int]] = {
        node_id: (preverified_parent or {}).get(node_id) for node_id in node_dist
    }
    heap = IndexedMinHeap()
    tentative_parent: Dict[int, Optional[int]] = {}

    def scan_edge_objects(from_node: int, edge_id: int, from_distance: float) -> None:
        """Offer every object on *edge_id* its distance through *from_node*."""
        edge = network.edge(edge_id)
        counters.edges_scanned += 1
        for object_id, fraction in edge_table.objects_with_fractions_on(edge_id):
            if object_id in excluded:
                continue
            if from_node == edge.start:
                offset = fraction * edge.weight
            else:
                offset = (1.0 - fraction) * edge.weight
            counters.objects_considered += 1
            neighbors.offer(object_id, from_distance + offset)

    def relax(to_node: int, distance: float, via: Optional[int]) -> None:
        """Dijkstra relaxation of a frontier node."""
        if to_node in node_dist:
            return
        counters.heap_pushes += 1
        if heap.push(to_node, distance):
            tentative_parent[to_node] = via

    # ------------------------------------------------------------------
    # seeding
    # ------------------------------------------------------------------
    if query_location is not None:
        query_edge = network.edge(query_location.edge_id)
        weight = query_edge.weight
        query_offset = query_location.offset(weight)
        # Objects on the query's own edge are reached directly along it.
        for object_id, fraction in edge_table.objects_with_fractions_on(query_edge.edge_id):
            if object_id in excluded:
                continue
            if query_edge.oneway and fraction < query_location.fraction:
                continue
            counters.objects_considered += 1
            neighbors.offer(object_id, abs(fraction - query_location.fraction) * weight)
        if query_edge.oneway:
            relax(query_edge.end, weight - query_offset, None)
        else:
            relax(query_edge.start, query_offset, None)
            relax(query_edge.end, weight - query_offset, None)

    if source_node is not None and source_node not in node_dist:
        relax(source_node, 0.0, None)

    # Resume from the pre-verified frontier: relax the settled nodes'
    # unverified neighbors and re-scan the objects of their incident edges.
    for settled_node, settled_distance in list(node_dist.items()):
        for edge_id, neighbor_node, weight in network.neighbors(settled_node):
            fully_covered = False
            if coverage_radius is not None:
                other_distance = node_dist.get(neighbor_node)
                if other_distance is not None:
                    farthest_point = (settled_distance + other_distance + weight) / 2.0
                    fully_covered = farthest_point <= coverage_radius + 1e-9
            if not fully_covered:
                scan_edge_objects(settled_node, edge_id, settled_distance)
            relax(neighbor_node, settled_distance + weight, settled_node)

    # ------------------------------------------------------------------
    # main Dijkstra loop (Figure 2, lines 7-23)
    # ------------------------------------------------------------------
    def frontier_open() -> bool:
        """Termination bound: the k-th candidate, or the pinned range radius."""
        if not heap:
            return False
        if fixed_radius is not None:
            # Range searches are inclusive: settle nodes at exactly the radius.
            return heap.min_key() <= fixed_radius
        return heap.min_key() < neighbors.radius

    while frontier_open():
        current_node, current_distance = heap.pop()
        if current_node in node_dist:
            continue
        node_dist[current_node] = current_distance
        parent[current_node] = tentative_parent.get(current_node)
        counters.nodes_expanded += 1
        if current_node in barriers:
            # Active-node barrier: merge its monitored neighbors and stop the
            # expansion here (the shared-execution core of GMA).
            for object_id, from_node_distance in barriers[current_node]:
                total = current_distance + from_node_distance
                if fixed_radius is not None:
                    if total > fixed_radius:
                        break
                elif total >= neighbors.radius:
                    break
                if object_id not in excluded:
                    counters.objects_considered += 1
                    neighbors.offer(object_id, total)
            continue
        for edge_id, neighbor_node, weight in network.neighbors(current_node):
            scan_edge_objects(current_node, edge_id, current_distance)
            relax(neighbor_node, current_distance + weight, current_node)

    state = ExpansionState(node_dist=node_dist, parent=parent)
    if fixed_radius is not None:
        # Range result: every in-radius candidate, sorted like top_k().
        in_range = [
            (object_id, distance)
            for object_id, distance in neighbors.all_candidates()
            if distance <= fixed_radius
        ]
        return SearchOutcome(neighbors=in_range, radius=fixed_radius, state=state)
    return SearchOutcome(
        neighbors=neighbors.top_k(),
        radius=neighbors.radius,
        state=state,
    )
