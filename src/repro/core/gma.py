"""GMA — the Group Monitoring Algorithm (Section 5 of the paper).

GMA exploits *shared execution*: the network is partitioned into sequences
(maximal paths between intersection / terminal nodes), the queries falling
in the same sequence are grouped together, and instead of monitoring each
moving query individually the server monitors the k-NN sets of the
sequence's intersection endpoints — the *active nodes* — which are static.
The active nodes are maintained with the IMA machinery (object and edge
updates only; lines 1–3 and 14–15 of Figure 10 never apply because active
nodes do not move).

Per-query evaluation.  Lemma 1 of the paper states that the k-NN set of a
query inside a sequence is contained in the union of the objects in the
sequence and the k-NN sets of its two endpoints.  Our evaluation runs the
expansion of :func:`repro.core.search.expand_knn` with the monitored
endpoints acting as *barriers*: when the expansion reaches an endpoint it
merges that endpoint's monitored k-NN set (shifted by the endpoint's
distance) and does not explore past it.  Per query, only the portion of the
sequence within ``kNN_dist`` is traversed — the shared-execution saving of
the paper — and the result is provably exact: any true neighbor whose
shortest path crosses a barrier is also among that barrier's k nearest
(triangle argument of Section 5), and the first barrier on the path is
settled at its exact distance.

Update handling (Figure 12).  A query's result can change only if (i) the
query moves, (ii) the k-NN set of an active node inside its influence region
changes, (iii) an object update falls inside its influence region, or (iv)
an edge inside its influence region changes weight.  GMA keeps influence
intervals for the user queries exactly like IMA does (but discards the
expansion trees, which is what makes it cheaper in memory), detects affected
queries through these four triggers, and recomputes each of them from
scratch with the barrier-bounded expansion.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.base import MonitorBase
from repro.core.events import UpdateBatch
from repro.core.expansion import (
    compute_influence_map,
    compute_influence_map_legacy,
    compute_influence_maps,
    edge_offset,
)
from repro.core.ima import ImaMonitor
from repro.core.influence import InfluenceIndex
from repro.core.queries import QuerySpec
from repro.core.results import KnnResult, Neighbor
from repro.core.search import ExpansionRequest, SearchCounters, expand_knn, expand_knn_batch
from repro.core.search_legacy import expand_knn_legacy
from repro.exceptions import UnknownQueryError
from repro.network.kernels import DEFAULT_KERNEL, KERNEL_LEGACY, resolve_kernel
from repro.network.csr import CSRGraph, csr_snapshot
from repro.network.edge_table import EdgeTable
from repro.network.graph import NetworkLocation, RoadNetwork
from repro.network.sequences import SequenceTable
from repro.utils.intervals import point_in_spans

#: Minimum node degree for a sequence endpoint to be monitored: terminal
#: nodes (degree 1) have nothing beyond them, so their k-NN sets add no
#: candidates that the in-sequence expansion would not find anyway.
_ACTIVE_NODE_MIN_DEGREE = 3


class GmaMonitor(MonitorBase):
    """Shared-execution continuous k-NN monitoring via sequence active nodes.

    Example::

        monitor = GmaMonitor(network, edge_table)
        monitor.register_query(1, location, k=4)
        monitor.process_batch(batch)      # grouped shared execution
    """

    name = "GMA"

    def __init__(
        self,
        network: RoadNetwork,
        edge_table: EdgeTable,
        counters: Optional[SearchCounters] = None,
        kernel: str = DEFAULT_KERNEL,
    ) -> None:
        """Create the monitor.

        Args:
            network: the shared road network.
            edge_table: the shared data-object table.
            counters: optional work counters shared with a caller.
            kernel: ``"csr"`` (default) evaluates queries and refreshes
                influence regions over the flat-array snapshot (refreshed
                once per batch); the batch kernels (``"dial"`` and the
                compiled ``"native"``) gather all affected queries of a tick
                into one batched kernel call on the selected engine followed
                by a bulk influence flush (identical results); ``"legacy"``
                keeps the dict-walking paths for differential testing.  The
                inner active-node monitor runs on the same kernel.  An
                unknown name raises
                :class:`~repro.exceptions.UnknownKernelError`.
        """
        super().__init__(network, edge_table, counters)
        spec = resolve_kernel(kernel)
        self._kernel = spec.name
        self._use_csr = spec.name != KERNEL_LEGACY
        self._use_batch = spec.batch
        self._batch_csr: Optional[CSRGraph] = None
        self._batch_support = None
        self._sequences = SequenceTable(network)
        # Active-node k-NN sets are maintained with the IMA machinery; the
        # inner monitor shares our counters so that the reported work is the
        # total work GMA performs.
        self._node_monitor = ImaMonitor(
            network, edge_table, counters=self._counters, kernel=kernel
        )
        self._influence = InfluenceIndex()
        self._query_sequence: Dict[int, int] = {}
        self._node_queries: Dict[int, Set[int]] = {}
        self._node_k: Dict[int, int] = {}
        # Aggregate k-NN queries (not grouped under sequences) register in
        # the inherited self._aggregates and are re-evaluated through
        # MonitorBase._refresh_aggregates.

    # ------------------------------------------------------------------
    # introspection helpers
    # ------------------------------------------------------------------
    @property
    def kernel(self) -> str:
        """This monitor's registry kernel name (see :mod:`repro.network.kernels`)."""
        return self._kernel

    @property
    def sequence_table(self) -> SequenceTable:
        """The sequence decomposition used for grouping (read-only use)."""
        return self._sequences

    @property
    def active_node_monitor(self) -> ImaMonitor:
        """The inner IMA monitor maintaining the active nodes (read-only)."""
        return self._node_monitor

    def active_nodes(self) -> Set[int]:
        """Ids of the currently active (monitored) intersection nodes."""
        return set(self._node_k)

    def queries_of_node(self, node_id: int) -> Set[int]:
        """The paper's ``n.Q``: user queries grouped under *node_id*."""
        return set(self._node_queries.get(node_id, ()))

    def memory_footprint_bytes(self) -> int:
        """Results + active-node trees + influence entries + sequence table."""
        base = super().memory_footprint_bytes()
        node_state = self._node_monitor.memory_footprint_bytes()
        influence = 12 * len(self._influence) + 20 * self._influence.interval_count()
        sequence_table = 8 * self._network.edge_count
        return base + node_state + influence + sequence_table

    # ------------------------------------------------------------------
    # MonitorBase hooks
    # ------------------------------------------------------------------
    def _install_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> KnnResult:
        if spec.kind == "aggregate_knn":
            self._aggregates.add(query_id)
            neighbors, radius = self._evaluate_aggregate(location, spec)
        else:
            if spec.is_knn:
                sequence_id = self._sequences.sequence_id_of_edge(location.edge_id)
                self._attach_to_sequence(query_id, sequence_id, spec.k)
            neighbors, radius = self._evaluate_query(query_id, location, spec)
        return KnnResult(
            query_id=query_id,
            k=spec.result_k,
            neighbors=tuple(neighbors),
            radius=radius,
        )

    def _remove_query(self, query_id: int) -> None:
        self._influence.clear_subscriber(query_id)
        self._aggregates.discard(query_id)
        sequence_id = self._query_sequence.pop(query_id, None)
        if sequence_id is not None:
            self._detach_from_sequence(query_id, sequence_id)

    def _process(self, batch: UpdateBatch) -> Set[int]:
        if self._use_csr:
            # One snapshot lookup/refresh per batch, shared by every
            # barrier-bounded evaluation and influence refresh below (the
            # inner active-node monitor acquires the same cached snapshot).
            self._batch_csr = csr_snapshot(self._network)
            if self._use_batch:
                self._batch_support = self._batch_csr.dial_support()
        try:
            changed = self._process_updates(batch)
            if self._aggregates:
                changed |= self._refresh_aggregates(batch)
            return changed
        finally:
            self._batch_csr = None
            self._batch_support = None

    def _process_updates(self, batch: UpdateBatch) -> Set[int]:
        changed: Set[int] = set()

        # Step 1 — maintain the active-node k-NN sets (IMA over static
        # queries; only object and edge updates apply).  This runs *before*
        # the re-grouping of moved queries so that nodes activated later in
        # this timestamp — whose initial results are computed against the
        # already-updated network state — are not fed the same batch twice.
        node_batch = UpdateBatch(
            timestamp=batch.timestamp,
            object_updates=batch.object_updates,
            query_updates=[],
            edge_updates=batch.edge_updates,
        )
        node_report = self._node_monitor.process_batch(node_batch)

        # Step 2 — user query movements: re-group k-NN queries whose
        # sequence changed (activating / deactivating endpoints); moved
        # range queries simply join the affected set — their fixed-radius
        # evaluation is sequence-free.  (Moved aggregate queries are
        # re-evaluated by the :meth:`_refresh_aggregates` postlude.)
        moved_queries: Set[int] = set()
        for update in batch.query_updates:
            query_id = update.query_id
            if update.new_location is None:
                continue
            spec = self._query_spec.get(query_id)
            if spec is None:
                continue
            if spec.kind == "range":
                moved_queries.add(query_id)
                continue
            if query_id not in self._query_sequence:
                continue
            old_sequence = self._query_sequence[query_id]
            new_sequence = self._sequences.sequence_id_of_edge(
                update.new_location.edge_id
            )
            if new_sequence != old_sequence:
                self._detach_from_sequence(query_id, old_sequence)
                self._attach_to_sequence(query_id, new_sequence, spec.k)
            moved_queries.add(query_id)

        # Step 3 — determine the affected user queries: queries that moved,
        # queries whose influence region (the in-sequence part of their
        # expansion) saw an object or edge update, and queries grouped under
        # an active node whose monitored k-NN set changed and that lies
        # inside their influence region (Figure 12, lines 6-15).
        affected: Set[int] = set(moved_queries)
        for update in batch.object_updates:
            for location in (update.old_location, update.new_location):
                if location is None:
                    continue
                affected |= self._influence.subscribers_at_point(
                    location.edge_id,
                    edge_offset(self._network, location, self._batch_csr),
                )
        for update in batch.edge_updates:
            # Zero-copy view: this collection loop only reads the index.
            affected |= self._influence.subscribers_on_edge_view(
                update.edge_id
            ).keys()
        for node_id in node_report.changed_queries:
            members = self._node_queries.get(node_id)
            if not members:
                continue
            for query_id in members:
                if query_id in affected:
                    continue
                if self._node_in_query_influence(query_id, node_id):
                    affected.add(query_id)

        # Step 4 — recompute every affected query from scratch, seeded with
        # the active-node results of its sequence.  The dial kernel flushes
        # all of them through one batched kernel call plus one bulk
        # influence refresh; per-query kernels evaluate in place.
        if self._use_batch:
            query_ids: List[int] = []
            requests: List[ExpansionRequest] = []
            for query_id in affected:
                spec = self._live_expansion_spec(query_id)
                if spec is None:
                    continue
                location = self._query_location[query_id]
                query_ids.append(query_id)
                if spec.kind == "range":
                    requests.append(
                        ExpansionRequest(
                            k=1, query_location=location, fixed_radius=spec.radius
                        )
                    )
                else:
                    requests.append(
                        ExpansionRequest(
                            k=spec.k,
                            query_location=location,
                            barrier_candidates=self._barrier_candidates_for(
                                location, spec.k
                            ),
                        )
                    )
            if not requests:
                return changed
            outcomes = expand_knn_batch(
                self._network,
                self._edge_table,
                requests,
                counters=self._counters,
                csr=self._batch_csr,
                kernel=self._kernel,
            )
            maps = compute_influence_maps(
                self._network,
                [
                    (query_id, outcome.state, outcome.radius, request.query_location)
                    for query_id, request, outcome in zip(query_ids, requests, outcomes)
                ],
                csr=self._batch_csr,
                support=self._batch_support,
            )
            self._influence.replace_subscribers(maps)
            for query_id, outcome in zip(query_ids, outcomes):
                if self._store_result(query_id, outcome.neighbors, outcome.radius):
                    changed.add(query_id)
            return changed

        for query_id in affected:
            spec = self._live_expansion_spec(query_id)
            if spec is None:
                continue
            location = self._query_location[query_id]
            neighbors, radius = self._evaluate_query(query_id, location, spec)
            if self._store_result(query_id, neighbors, radius):
                changed.add(query_id)
        return changed

    def _live_expansion_spec(self, query_id: int) -> Optional[QuerySpec]:
        """The spec of an affected query served by an expansion, or None.

        Filters terminated ids (they may linger in the affected set) and
        aggregate queries (re-evaluated by :meth:`_refresh_aggregates`); a
        live k-NN query is always grouped under a sequence.
        """
        spec = self._query_spec.get(query_id)
        if spec is None or spec.kind == "aggregate_knn":
            return None
        if spec.is_knn and query_id not in self._query_sequence:
            return None
        return spec

    # ------------------------------------------------------------------
    # grouping / active-node management
    # ------------------------------------------------------------------
    def _attach_to_sequence(self, query_id: int, sequence_id: int, k: int) -> None:
        """Add a query to a sequence's group and activate its endpoints."""
        self._query_sequence[query_id] = sequence_id
        info = self._sequences.sequence(sequence_id)
        for node_id in set(info.endpoints()):
            if self._network.degree(node_id) < _ACTIVE_NODE_MIN_DEGREE:
                continue
            members = self._node_queries.setdefault(node_id, set())
            members.add(query_id)
            self._ensure_active(node_id, k)

    def _detach_from_sequence(self, query_id: int, sequence_id: int) -> None:
        """Remove a query from a sequence's group, deactivating empty nodes."""
        info = self._sequences.sequence(sequence_id)
        for node_id in set(info.endpoints()):
            members = self._node_queries.get(node_id)
            if members is None:
                continue
            members.discard(query_id)
            if not members:
                del self._node_queries[node_id]
                if node_id in self._node_k:
                    self._node_monitor.unregister_query(node_id)
                    del self._node_k[node_id]

    def _ensure_active(self, node_id: int, k: int) -> None:
        """Monitor *node_id* with at least *k* neighbors (``n.k`` maintenance).

        The monitored k only grows while the node stays active; it resets
        when the node is deactivated.  Monitoring a few more neighbors than
        the current maximum requires is harmless (their distances are still
        exact upper-bound candidates), and avoiding the shrink saves a full
        recomputation whenever a high-k query leaves the group.
        """
        current = self._node_k.get(node_id)
        if current is None:
            self._node_monitor.register_query(
                node_id, self._network.location_at_node(node_id), k
            )
            self._node_k[node_id] = k
        elif k > current:
            self._node_monitor.unregister_query(node_id)
            self._node_monitor.register_query(
                node_id, self._network.location_at_node(node_id), k
            )
            self._node_k[node_id] = k

    # ------------------------------------------------------------------
    # per-query evaluation
    # ------------------------------------------------------------------
    def _evaluate_query(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> Tuple[List[Neighbor], float]:
        """Evaluate one query: in-sequence expansion bounded by active nodes.

        For a k-NN query the expansion stops at the sequence's monitored
        endpoints (the *barriers*), merging their k-NN sets instead of
        exploring beyond them — the paper's shared execution: per query only
        the part of the sequence within ``kNN_dist`` is traversed.  A range
        query runs a barrier-free fixed-radius expansion instead (an
        endpoint's monitored k-NN set cannot cover an arbitrary radius);
        GMA's contribution for it is the influence-interval *detection* of
        which ticks require re-evaluation at all.

        Runs over the batch's CSR snapshot; :meth:`_evaluate_query_legacy`
        preserves the dict path for differential testing.
        """
        if not self._use_csr:
            return self._evaluate_query_legacy(query_id, location, spec)
        is_range = spec.kind == "range"
        barriers = None if is_range else self._barrier_candidates_for(location, spec.k)
        fixed_radius = spec.radius if is_range else None
        if self._use_batch:
            [outcome] = expand_knn_batch(
                self._network,
                self._edge_table,
                [
                    ExpansionRequest(
                        k=spec.k,
                        query_location=location,
                        barrier_candidates=barriers,
                        fixed_radius=fixed_radius,
                    )
                ],
                counters=self._counters,
                csr=self._batch_csr,
                kernel=self._kernel,
            )
        else:
            outcome = expand_knn(
                self._network,
                self._edge_table,
                spec.k,
                query_location=location,
                barrier_candidates=barriers,
                counters=self._counters,
                csr=self._batch_csr,
                fixed_radius=fixed_radius,
            )
        influences = compute_influence_map(
            self._network,
            outcome.state,
            outcome.radius,
            location,
            csr=self._batch_csr,
            support=self._batch_support,
        )
        self._influence.replace_subscriber(query_id, influences)
        return outcome.neighbors, outcome.radius

    def _evaluate_query_legacy(
        self, query_id: int, location: NetworkLocation, spec: QuerySpec
    ) -> Tuple[List[Neighbor], float]:
        """Dict-walking barrier-bounded evaluation, kept for differential tests."""
        is_range = spec.kind == "range"
        barriers = None if is_range else self._barrier_candidates_for(location, spec.k)
        outcome = expand_knn_legacy(
            self._network,
            self._edge_table,
            spec.k,
            query_location=location,
            barrier_candidates=barriers,
            counters=self._counters,
            fixed_radius=spec.radius if is_range else None,
        )
        influences = compute_influence_map_legacy(
            self._network, outcome.state, outcome.radius, location
        )
        self._influence.replace_subscriber(query_id, influences)
        return outcome.neighbors, outcome.radius

    def _barrier_candidates_for(
        self, location: NetworkLocation, k: int
    ) -> Dict[int, List[Neighbor]]:
        """Monitored k-NN sets of the sequence endpoints, keyed by node id."""
        info = self._sequences.sequence_of_edge(location.edge_id)
        barriers: Dict[int, List[Neighbor]] = {}
        for node_id in set(info.endpoints()):
            if node_id not in self._node_k:
                continue
            try:
                node_result = self._node_monitor.result_of(node_id)
            except UnknownQueryError:  # pragma: no cover - defensive
                continue
            barriers[node_id] = list(node_result.neighbors[:k])
        return barriers

    def _node_in_query_influence(self, query_id: int, node_id: int) -> bool:
        """Is the active node inside the query's influence region?

        Checked via the stored influencing intervals of the edges incident to
        the node (the paper's line-8 test: the interval must include n).
        """
        for edge_id in self._network.incident_edges(node_id):
            spans = self._influence.interval_of(query_id, edge_id)
            if spans is None:
                continue
            edge = self._network.edge(edge_id)
            offset = 0.0 if edge.start == node_id else edge.weight
            if point_in_spans(spans, offset):
                return True
        return False
